//! Quickstart: size a doped-MWCNT interconnect and compare it to copper
//! in a dozen lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cnt_beol::interconnect::benchmark::delay_ratio;
use cnt_beol::interconnect::compact::{CuWire, DopedMwcnt};
use cnt_beol::units::si::Length;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = Length::from_nanometers(10.0);
    let l = Length::from_micrometers(500.0);

    // The paper's Eq. 4/5 compact model: pristine vs heavily doped.
    let pristine = DopedMwcnt::paper_model(d, 2)?;
    let doped = DopedMwcnt::paper_model(d, 10)?;
    println!("MWCNT D = 10 nm, L = 500 µm");
    println!("  pristine R = {}", pristine.resistance(l));
    println!("  doped    R = {}", doped.resistance(l));
    println!(
        "  line capacitance ≈ C_E = {} (doping-independent, Eq. 5)",
        pristine.capacitance(l)?
    );

    // A copper wire of comparable footprint for context.
    let cu = CuWire::damascene(Length::from_nanometers(10.0), Length::from_nanometers(20.0))?;
    println!("  copper (10×20 nm) R = {}", cu.resistance(l));

    // The Fig. 12 headline: delay ratio doped/pristine.
    let ratio = delay_ratio(d, 10, l)?;
    println!("  delay ratio doped/pristine = {ratio:.3} (paper: ≈ 0.90 at this point)");
    Ok(())
}
