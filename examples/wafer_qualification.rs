//! Lab-to-fab qualification (Figs. 4, 5, 13): tune the growth recipe into
//! the BEOL budget, check wafer uniformity, then run the virtual EM
//! qualification of Cu versus the Cu-CNT composite.
//!
//! ```text
//! cargo run --example wafer_qualification
//! ```

use cnt_beol::interconnect::calibrate::mfp_from_growth;
use cnt_beol::process::growth::{temperature_sweep, Catalyst};
use cnt_beol::process::wafer::WaferMap;
use cnt_beol::reliability::layout::{standard_em_layout, TestStructure};
use cnt_beol::reliability::wafer_char::{characterize_wafer, WaferCharSetup};
use cnt_beol::units::si::{Temperature, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Find the lowest viable Co growth temperature (Fig. 4).
    let temps: Vec<Temperature> = (0..14)
        .map(|k| Temperature::from_celsius(350.0 + 10.0 * k as f64))
        .collect();
    let sweep = temperature_sweep(Catalyst::Cobalt, &temps, false)?;
    let viable = sweep
        .iter()
        .find(|r| r.is_viable())
        .expect("Co recipe grows below 500 degC");
    println!(
        "lowest viable Co growth: {:.0} °C (rate {:.2} µm/min, D/G {:.2})",
        viable.recipe.temperature.celsius(),
        viable.growth_rate_um_per_min,
        viable.dg_ratio
    );
    let mfp = mfp_from_growth(viable, 11)?;
    println!("defect-limited mean free path from NEGF: {mfp}");

    // 2. Wafer-scale growth uniformity (Fig. 5).
    let map = WaferMap::generate(0.3, 121, 1.0, 0.05, 0.015, 5)?;
    let u = map.uniformity()?;
    println!(
        "\n300 mm wafer growth: CV {:.2} % over {} sites",
        u.cv * 100.0,
        u.sites
    );
    println!("{}", map.ascii_map(10));

    // 3. EM qualification on the Fig. 13a layout's reference line.
    let layout = standard_em_layout();
    println!("EM test layout: {} structures", layout.len());
    let line = layout
        .iter()
        .find(|s| {
            matches!(s, TestStructure::SingleLine { length, .. }
                if (length.micrometers() - 800.0).abs() < 1.0)
        })
        .expect("layout carries the 800 µm stress line");
    let target = Time::from_hours(2000.0);
    let cu = characterize_wafer(&WaferCharSetup::copper_reference(), line, target, 1)?;
    let cc = characterize_wafer(&WaferCharSetup::composite(), line, target, 1)?;
    println!(
        "\nfull-wafer EM qualification (target {} h):",
        target.hours()
    );
    println!(
        "  Cu reference : median TTF {:.2e} h, yield {:.1} %",
        cu.median_ttf.hours(),
        cu.em_yield * 100.0
    );
    println!(
        "  Cu-CNT       : median TTF {:.2e} h, yield {:.1} %",
        cc.median_ttf.hours(),
        cc.em_yield * 100.0
    );

    Ok(())
}
