//! The global-interconnect scenario of Fig. 1: Cu–CNT composite wires.
//!
//! Sweeps CNT volume fraction to expose the §II.C trade-off ("an
//! efficient trade-off between resistivity and ampacity can be realized")
//! and benchmarks EM lifetime against the copper reference.
//!
//! ```text
//! cargo run --example global_cu_cnt_composite
//! ```

use cnt_beol::interconnect::compact::CompositeWire;
use cnt_beol::process::composite::{CarpetOrientation, CompositeRecipe, DepositionMethod};
use cnt_beol::reliability::em::BlackModel;
use cnt_beol::units::si::{CurrentDensity, Length, Temperature};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = Length::from_nanometers(100.0);
    let h = Length::from_nanometers(100.0);

    // 1. Fill the trench: the developed ECD process (Fig. 7).
    let fill = CompositeRecipe {
        method: DepositionMethod::Electrochemical,
        orientation: CarpetOrientation::Horizontal,
        aspect_ratio: 2.0,
        conductive_seed: true,
        cnt_volume_fraction: 0.45,
    }
    .simulate()?;
    println!(
        "ECD fill: {:.1} % dense, void-free: {}",
        fill.fill_fraction * 100.0,
        fill.is_void_free()
    );

    // 2. The resistivity-ampacity trade-off versus CNT loading.
    println!("\nV_CNT    σ/σ_Cu    ampacity/Cu");
    for vf in [0.0, 0.15, 0.30, 0.45] {
        let wire = CompositeWire::new(w, h, vf, fill.fill_fraction, 2.0e7)?;
        let (sigma_ratio, amp_ratio) = wire.trade_off_vs_copper()?;
        println!("{vf:>5.2}    {sigma_ratio:>6.3}    {amp_ratio:>10.1}");
    }

    // 3. Electromigration lifetime at global-wire stress.
    let j = CurrentDensity::from_amps_per_square_centimeter(2.0e6);
    let t = Temperature::from_celsius(105.0);
    let cu = BlackModel::copper();
    let cc = BlackModel::cu_cnt_composite();
    println!("\nEM median lifetime at 2 MA/cm², 105 °C:");
    println!("  Cu reference : {:.2e} h", cu.median_ttf(j, t).hours());
    println!("  Cu-CNT       : {:.2e} h", cc.median_ttf(j, t).hours());
    println!(
        "  Blech-immortal 100 µm line? Cu: {}, composite: {}",
        cu.is_blech_immortal(j, 100e-6),
        cc.is_blech_immortal(j, 100e-6)
    );
    Ok(())
}
