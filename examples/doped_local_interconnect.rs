//! The local-interconnect scenario of Fig. 1: a single doped CNT in a
//! 30 nm via hole replacing a copper local wire.
//!
//! Walks the full multi-scale chain: atomistic doping calibration →
//! compact model → variability Monte Carlo → I-V characterization.
//!
//! ```text
//! cargo run --example doped_local_interconnect
//! ```

use cnt_beol::atomistic::chirality::Chirality;
use cnt_beol::atomistic::doping::DopingSpec;
use cnt_beol::interconnect::calibrate;
use cnt_beol::interconnect::compact::DopedMwcnt;
use cnt_beol::measure::iv::{iv_sweep, CntDevice};
use cnt_beol::process::variability::{
    resistance_stats, sample_devices, DevicePopulation, DopingState,
};
use cnt_beol::units::si::{Current, Length, Resistance, Temperature, Voltage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t = Temperature::from_kelvin(300.0);

    // 1. Atomistic calibration: what does iodine doping buy on the
    //    reference (7,7) tube?
    let cal = calibrate::calibrate_reference_tube(t)?;
    println!("atomistic calibration (CNT(7,7) + iodine):");
    println!("  pristine channels  = {:.2}", cal.pristine);
    println!("  doped channels     = {:.2}", cal.doped);
    println!("  enhancement factor = {:.2}", cal.enhancement);

    // A doped semiconducting tube also turns on — the variability fix.
    let semi = Chirality::new(13, 0)?;
    let semi_doped = calibrate::channels_doped(semi, DopingSpec::iodine_internal(), t)?;
    println!("  semiconducting (13,0) after doping: {semi_doped:.2} channels");

    // 2. Compact model of the via device (d = 7.5 nm MWCNT, 1 µm channel).
    let device_len = Length::from_micrometers(1.0);
    let nc_doped = cal.doped.round() as usize;
    let pristine = DopedMwcnt::paper_model(Length::from_nanometers(7.5), 2)?;
    let doped = DopedMwcnt::paper_model(Length::from_nanometers(7.5), nc_doped)?;
    println!("\nvia-device compact model (L = 1 µm):");
    println!("  pristine R = {}", pristine.resistance(device_len));
    println!("  doped    R = {}", doped.resistance(device_len));

    // 3. Monte-Carlo population: doping tames the chirality lottery.
    let pop = DevicePopulation::mwcnt_via_default();
    let stats_p = resistance_stats(&sample_devices(&pop, DopingState::Pristine, 2000, 7)?)?;
    let stats_d = resistance_stats(&sample_devices(
        &pop,
        DopingState::Doped {
            channels_per_shell: nc_doped,
        },
        2000,
        7,
    )?)?;
    println!("\nvariability over 2000 as-grown devices:");
    println!(
        "  pristine: median {:.1} kΩ, CV {:.0} %",
        stats_p.median / 1e3,
        stats_p.cv * 100.0
    );
    println!(
        "  doped:    median {:.1} kΩ, CV {:.0} %",
        stats_d.median / 1e3,
        stats_d.cv * 100.0
    );

    // 4. Virtual I-V of the median devices (the Fig. 2d experiment).
    let sweep = |r_ohm: f64, seed: u64| -> Result<f64, Box<dyn std::error::Error>> {
        let dev = CntDevice {
            resistance: Resistance::from_ohms(r_ohm),
            saturation_current: Current::from_microamps(25.0),
        };
        let curve = iv_sweep(&dev, Voltage::from_millivolts(100.0), 81, 0.01, seed)?;
        Ok(curve.low_bias_resistance()?.ohms())
    };
    println!("\nvirtual I-V lab (low-bias extraction):");
    println!("  pristine: {:.1} kΩ", sweep(stats_p.median, 1)? / 1e3);
    println!("  doped:    {:.1} kΩ", sweep(stats_d.median, 2)? / 1e3);
    Ok(())
}
