//! The full TCAD → SPICE flow of Section III.B (Fig. 10): build a 14 nm
//! inverter cell, extract its parasitics with the field solver, write a
//! SPICE-like netlist, parse it back and simulate the crosstalk.
//!
//! ```text
//! cargo run --example rc_extraction_flow
//! ```

use cnt_beol::circuit::analysis::TranOptions;
use cnt_beol::circuit::parse::parse_netlist;
use cnt_beol::circuit::waveform::Waveform;
use cnt_beol::fields::extract::extract_capacitance;
use cnt_beol::fields::netlist::NetlistWriter;
use cnt_beol::fields::presets::{inverter_cell_14nm, InverterCellGeometry};
use cnt_beol::fields::solver::SolverOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Discretize the inverter cell and solve ∇ε∇ψ = 0 per conductor.
    let structure = inverter_cell_14nm(InverterCellGeometry::default()).build([17, 13, 15])?;
    let cap = extract_capacitance(&structure, &SolverOptions::default())?;
    println!("extracted capacitance couplings:");
    let labels = cap.labels();
    for i in 0..labels.len() {
        for j in i + 1..labels.len() {
            let c = cap.coupling(labels[i], labels[j])?;
            println!("  {:>6} – {:<6} : {}", labels[i], labels[j], c);
        }
    }
    println!("matrix asymmetry: {:.2e}", cap.asymmetry());

    // 2. Emit the SPICE-like netlist the paper describes.
    let mut writer = NetlistWriter::new("14 nm inverter cell parasitics");
    writer.add_capacitance_matrix(&cap, "0", 1e-20)?;
    let netlist = writer.render();
    println!(
        "\nnetlist ({} cards):\n{}",
        netlist.lines().count(),
        netlist
    );

    // 3. Parse it back and run a crosstalk transient: kick the aggressor
    //    (m1_in) and watch the coupled victim (m1_out) through a weak
    //    keeper.
    let mut circuit = parse_netlist(&netlist)?;
    let aggressor = circuit.find_node("m1_in")?;
    let victim = circuit.find_node("m1_out")?;
    circuit.add_vsource(
        "Vagg",
        aggressor,
        cnt_beol::circuit::circuit::Circuit::GND,
        Waveform::edge(0.0, 1.0, 5e-12, 5e-12),
    )?;
    circuit.add_resistor(
        "Rkeep",
        victim,
        cnt_beol::circuit::circuit::Circuit::GND,
        50e3,
    )?;
    // Capacitor-only nodes float at DC: start the transient from zeros.
    let mut opts = TranOptions::new(100e-12, 0.1e-12);
    opts.from_dc = false;
    let tran = circuit.transient(&opts)?;
    let peak = tran
        .voltage("m1_out")?
        .iter()
        .fold(0.0_f64, |a, &b| a.max(b));
    println!(
        "victim crosstalk peak: {:.1} mV on a 1 V aggressor edge",
        peak * 1e3
    );
    Ok(())
}
