//! Cu–CNT composite formation: ELD/ECD copper impregnation of CNT carpets.
//!
//! Regenerates the observable content of Figs. 6–7: electroless deposition
//! (ELD) fills vertically aligned carpets but leaves an overburden and a
//! depth-dependent void risk; the electrochemical (ECD) process developed
//! for horizontally aligned carpets achieves void-free filling when a
//! conductive seed is present. The effective-medium electrical model
//! combines the copper matrix with the CNT volume fraction (Section II.C:
//! "an efficient trade-off between resistivity and ampacity can be
//! realized").

use crate::{Error, Result};

/// Copper impregnation method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepositionMethod {
    /// Electroless deposition — "lower technical effort, but often involves
    /// a multitude of different chemicals" (Section II.C).
    Electroless,
    /// Electrochemical deposition — "more common, has a lot of control
    /// knobs but needs a conductive substrate".
    Electrochemical,
}

/// CNT carpet orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CarpetOrientation {
    /// Vertically aligned (used directly after growth).
    Vertical,
    /// Horizontally aligned (needs the CEA preparation technique).
    Horizontal,
}

/// A composite-formation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompositeRecipe {
    /// Impregnation method.
    pub method: DepositionMethod,
    /// Carpet orientation.
    pub orientation: CarpetOrientation,
    /// Feature aspect ratio (depth / width) being filled.
    pub aspect_ratio: f64,
    /// Whether a conductive seed layer is present (required for ECD).
    pub conductive_seed: bool,
    /// CNT volume fraction of the carpet (0–0.5 typical).
    pub cnt_volume_fraction: f64,
}

impl CompositeRecipe {
    /// Simulates the filling step.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] for a non-positive aspect ratio or a
    /// volume fraction outside `[0, 0.74]` (close packing).
    pub fn simulate(&self) -> Result<FillResult> {
        if self.aspect_ratio <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "aspect_ratio",
                value: self.aspect_ratio,
            });
        }
        if !(0.0..=0.74).contains(&self.cnt_volume_fraction) {
            return Err(Error::InvalidParameter {
                name: "cnt_volume_fraction",
                value: self.cnt_volume_fraction,
            });
        }
        let (fill, overburden_nm) = match self.method {
            DepositionMethod::Electroless => {
                // Autocatalytic ELD penetrates without a field but slows in
                // deep features; Fig. 6 shows extra Cu crystal growth on top.
                let fill = 0.97 * (-self.aspect_ratio / 12.0).exp();
                (fill, 180.0)
            }
            DepositionMethod::Electrochemical => {
                if !self.conductive_seed {
                    // ECD "needs a conductive substrate" — without one the
                    // feature barely plates.
                    (0.05, 0.0)
                } else {
                    // The developed HA-CNT ECD process achieves void-free
                    // filling (Fig. 7); VA carpets fill slightly worse from
                    // the side.
                    let orient = match self.orientation {
                        CarpetOrientation::Horizontal => 1.0,
                        CarpetOrientation::Vertical => 0.998,
                    };
                    (0.999 * orient * (-self.aspect_ratio / 1000.0).exp(), 40.0)
                }
            }
        };
        // Denser carpets leave less open volume between tubes for the Cu
        // to reach; neutral at the reference 30 % volume fraction so the
        // paper operating point is unchanged.
        let density_penalty = 1.0 - 0.3 * (self.cnt_volume_fraction - 0.3);
        let fill = (fill * density_penalty).clamp(0.0, 1.0);
        // Void probability: a steep sigmoid — cross-sections stay void-free
        // while the fill exceeds ~96 %, then voids appear rapidly.
        let void_probability = 1.0 / (1.0 + ((fill - 0.95) / 0.008).exp());
        Ok(FillResult {
            recipe: *self,
            fill_fraction: fill,
            void_probability,
            overburden_nm,
        })
    }
}

/// Outcome of a composite filling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FillResult {
    /// The recipe.
    pub recipe: CompositeRecipe,
    /// Copper fill fraction of the inter-tube space (1 = fully dense).
    pub fill_fraction: f64,
    /// Probability that a cross-section shows a void.
    pub void_probability: f64,
    /// Copper overburden thickness to remove by CMP, nanometres.
    pub overburden_nm: f64,
}

impl FillResult {
    /// `true` when the cross-section qualifies as void-free (< 2 % void
    /// probability — the Fig. 7 claim).
    pub fn is_void_free(&self) -> bool {
        self.void_probability < 0.02
    }
}

/// Effective composite conductivity by volume-weighted parallel mixing:
/// `σ = V_cnt·σ_cnt + (1 − V_cnt)·fill·σ_cu`.
///
/// `sigma_cu` should already include size effects (the `cnt-interconnect`
/// crate computes it); `sigma_cnt_axial` is the axial conductivity of the
/// tube fraction.
pub fn composite_conductivity(
    cnt_volume_fraction: f64,
    fill_fraction: f64,
    sigma_cu: f64,
    sigma_cnt_axial: f64,
) -> f64 {
    let v = cnt_volume_fraction.clamp(0.0, 1.0);
    v * sigma_cnt_axial + (1.0 - v) * fill_fraction.clamp(0.0, 1.0) * sigma_cu
}

/// Ampacity boost of the composite relative to bare copper. Calibrated to
/// the hundred-fold improvement of Subramaniam et al. (reference \[14\] of
/// the paper) at 45 % CNT volume fraction.
pub fn ampacity_boost(cnt_volume_fraction: f64) -> f64 {
    let v = cnt_volume_fraction.clamp(0.0, 1.0);
    // Exponential interpolation: 1× at v = 0, 100× at v = 0.45.
    (v * (100.0_f64).ln() / 0.45).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(method: DepositionMethod, orientation: CarpetOrientation) -> CompositeRecipe {
        CompositeRecipe {
            method,
            orientation,
            aspect_ratio: 2.0,
            conductive_seed: true,
            cnt_volume_fraction: 0.3,
        }
    }

    #[test]
    fn ecd_with_seed_is_void_free_fig7() {
        let r = base(
            DepositionMethod::Electrochemical,
            CarpetOrientation::Horizontal,
        )
        .simulate()
        .unwrap();
        assert!(r.is_void_free(), "{r:?}");
        assert!(r.fill_fraction > 0.93);
    }

    #[test]
    fn ecd_without_seed_fails() {
        let mut recipe = base(
            DepositionMethod::Electrochemical,
            CarpetOrientation::Horizontal,
        );
        recipe.conductive_seed = false;
        let r = recipe.simulate().unwrap();
        assert!(r.fill_fraction < 0.1);
        assert!(!r.is_void_free());
    }

    #[test]
    fn eld_leaves_overburden_fig6() {
        let r = base(DepositionMethod::Electroless, CarpetOrientation::Vertical)
            .simulate()
            .unwrap();
        assert!(
            r.overburden_nm > 100.0,
            "Fig. 6 shows Cu crystal overgrowth"
        );
        assert!(r.fill_fraction > 0.7);
    }

    #[test]
    fn deep_features_fill_worse() {
        let shallow = CompositeRecipe {
            aspect_ratio: 1.0,
            ..base(DepositionMethod::Electroless, CarpetOrientation::Vertical)
        }
        .simulate()
        .unwrap();
        let deep = CompositeRecipe {
            aspect_ratio: 10.0,
            ..base(DepositionMethod::Electroless, CarpetOrientation::Vertical)
        }
        .simulate()
        .unwrap();
        assert!(deep.fill_fraction < shallow.fill_fraction);
        assert!(deep.void_probability > shallow.void_probability);
    }

    #[test]
    fn validation() {
        let mut r = base(DepositionMethod::Electroless, CarpetOrientation::Vertical);
        r.aspect_ratio = 0.0;
        assert!(r.simulate().is_err());
        let mut r = base(DepositionMethod::Electroless, CarpetOrientation::Vertical);
        r.cnt_volume_fraction = 0.9;
        assert!(r.simulate().is_err());
    }

    #[test]
    fn conductivity_trades_against_ampacity() {
        let sigma_cu = 4.0e7;
        let sigma_cnt = 1.0e7; // axial CNT fraction conducts worse than Cu
        let lo = composite_conductivity(0.1, 1.0, sigma_cu, sigma_cnt);
        let hi = composite_conductivity(0.45, 1.0, sigma_cu, sigma_cnt);
        // More CNT ⇒ lower conductivity …
        assert!(hi < lo);
        // … but far higher ampacity: the Section II.C trade-off.
        assert!(ampacity_boost(0.45) / ampacity_boost(0.1) > 10.0);
    }

    #[test]
    fn ampacity_boost_matches_subramaniam_anchor() {
        assert!((ampacity_boost(0.0) - 1.0).abs() < 1e-12);
        assert!((ampacity_boost(0.45) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn unfilled_fraction_hurts_conductivity() {
        let full = composite_conductivity(0.3, 1.0, 4.0e7, 1.0e7);
        let voided = composite_conductivity(0.3, 0.7, 4.0e7, 1.0e7);
        assert!(voided < full);
    }
}
