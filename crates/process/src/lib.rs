//! CNT growth, wafer-scale uniformity, Cu–CNT composite formation and
//! process variability models.
//!
//! This crate is the synthetic-fab substrate of the `cnt-beol` platform.
//! The paper's Section II is experimental (CVD growth in via holes,
//! Co-catalyst growth below 400 °C, 300 mm wafers, ELD/ECD copper
//! impregnation); per the substitution policy in DESIGN.md we model the
//! *observables* those experiments report:
//!
//! * [`growth`] — Arrhenius growth kinetics, defectivity vs. temperature
//!   and catalyst (Fig. 4), CMOS temperature-budget checks;
//! * [`wafer`] — 300 mm wafer maps with radial + random variation and
//!   uniformity metrics (Fig. 5);
//! * [`composite`] — ELD vs. ECD copper impregnation of CNT carpets:
//!   fill fraction, void probability, overburden (Figs. 6–7), and
//!   effective composite conductivity;
//! * [`variability`] — Monte-Carlo device sampling (chirality, diameter,
//!   contacts, defects) showing how doping tames resistance variability
//!   (Section II.A).
//!
//! All stochastic paths take explicit seeds and are exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod composite;
pub mod growth;
pub mod variability;
pub mod wafer;

pub use growth::{Catalyst, GrowthRecipe, GrowthResult};
pub use wafer::WaferMap;

use core::fmt;

/// Errors produced by the process models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A parameter was outside its physical domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A sweep or sampler was asked for zero points.
    EmptyRequest(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter { name, value } => {
                write!(f, "parameter {name} out of physical domain: {value}")
            }
            Error::EmptyRequest(what) => write!(f, "empty request: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-level result alias.
pub type Result<T> = core::result::Result<T, Error>;
