//! CVD growth kinetics and defectivity versus temperature and catalyst.
//!
//! Regenerates the observable content of the paper's Fig. 4 ("SEM results
//! of CNTs grown with Co catalyst at different temperatures so that the
//! growth process can be shifted into the CMOS compatible temperature
//! range"): growth rate, areal density and Raman D/G defect ratio as
//! functions of temperature, for the classic Fe catalyst and the
//! CMOS-friendly Co catalyst the CONNECT project developed.
//!
//! Model: Arrhenius kinetics `rate = A·exp(−Ea/kT)` with catalyst-specific
//! prefactor and activation energy (thermal-CVD literature range
//! 0.9–1.5 eV); defect density rises exponentially as the growth
//! temperature drops below the catalyst's optimum — grown-in defects are
//! the paper's stated reason for CVD tubes underperforming arc-discharge
//! ones (Section II.A).

use crate::{Error, Result};
use cnt_units::consts::K_B_EV;
use cnt_units::si::{Length, Temperature};

/// Catalyst system for CVD growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Catalyst {
    /// Iron on aluminosilicate — the baseline single-CNT via process
    /// (Section II.A), not BEOL-compatible.
    Iron,
    /// Cobalt — "a material commonly used in CMOS BEOL flows"
    /// (Section II.B).
    Cobalt,
}

impl Catalyst {
    /// Arrhenius activation energy, eV.
    pub fn activation_energy_ev(self) -> f64 {
        match self {
            Catalyst::Iron => 1.35,
            // The Co recipe was tuned for low-temperature growth.
            Catalyst::Cobalt => 1.05,
        }
    }

    /// Arrhenius prefactor, µm/min.
    pub fn prefactor_um_per_min(self) -> f64 {
        match self {
            Catalyst::Iron => 2.0e9,
            Catalyst::Cobalt => 4.0e7,
        }
    }

    /// Temperature of best crystalline quality (minimum D/G), kelvin.
    pub fn optimal_temperature(self) -> Temperature {
        match self {
            Catalyst::Iron => Temperature::from_celsius(750.0),
            Catalyst::Cobalt => Temperature::from_celsius(550.0),
        }
    }

    /// Whether the catalyst material itself is accepted in CMOS BEOL flows.
    pub fn is_cmos_material(self) -> bool {
        matches!(self, Catalyst::Cobalt)
    }
}

/// BEOL temperature ceiling the paper repeats throughout: 400 °C.
pub fn beol_temperature_limit() -> Temperature {
    Temperature::from_celsius(400.0)
}

/// A growth run specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthRecipe {
    /// Catalyst system.
    pub catalyst: Catalyst,
    /// Growth temperature.
    pub temperature: Temperature,
    /// Plasma assistance lowers the effective activation energy (PECVD).
    pub plasma_assisted: bool,
}

impl GrowthRecipe {
    /// Thermal CVD with the given catalyst and temperature.
    pub fn thermal(catalyst: Catalyst, temperature: Temperature) -> Self {
        Self {
            catalyst,
            temperature,
            plasma_assisted: false,
        }
    }

    /// `true` if the recipe respects the 400 °C BEOL budget.
    pub fn is_cmos_compatible(&self) -> bool {
        self.catalyst.is_cmos_material()
            && self.temperature.kelvin() <= beol_temperature_limit().kelvin() + 1e-9
    }

    /// Simulates the growth run.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive temperatures.
    pub fn simulate(&self) -> Result<GrowthResult> {
        let t = self.temperature.kelvin();
        if t <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "temperature",
                value: t,
            });
        }
        let ea = if self.plasma_assisted {
            (self.catalyst.activation_energy_ev() - 0.3).max(0.3)
        } else {
            self.catalyst.activation_energy_ev()
        };
        let rate = self.catalyst.prefactor_um_per_min() * (-ea / (K_B_EV * t)).exp();

        // Raman D/G defect ratio: minimum at the catalyst optimum, rising
        // exponentially as the temperature drops (frozen-in defects) and
        // mildly above it (etching / amorphous carbon).
        let t_opt = self.catalyst.optimal_temperature().kelvin();
        let dg = if t < t_opt {
            0.08 + 0.7 * ((t_opt - t) / 220.0).exp_m1().max(0.0)
        } else {
            0.08 + 0.25 * ((t - t_opt) / 300.0)
        };

        // Areal density follows catalyst activity: the fraction of active
        // nanoparticles drops steeply below the optimum.
        let activity = (-((t_opt - t).max(0.0)) / 140.0).exp();
        let density_per_cm2 = 8.0e11 * activity;

        // Tube tortuosity (1 = straight) worsens at low temperature — one
        // of the open issues the conclusion lists.
        let tortuosity = 1.0 + 0.6 * (1.0 - activity);

        Ok(GrowthResult {
            recipe: *self,
            growth_rate_um_per_min: rate,
            areal_density_per_cm2: density_per_cm2,
            dg_ratio: dg,
            tortuosity,
        })
    }
}

/// Observables of a simulated growth run (what the paper's SEM/Raman
/// characterization reports).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthResult {
    /// The recipe that produced this result.
    pub recipe: GrowthRecipe,
    /// Vertical growth rate, µm/min.
    pub growth_rate_um_per_min: f64,
    /// Tube areal density, 1/cm².
    pub areal_density_per_cm2: f64,
    /// Raman D/G ratio (defectivity proxy; smaller = better).
    pub dg_ratio: f64,
    /// Tortuosity factor (1 = perfectly straight tubes).
    pub tortuosity: f64,
}

impl GrowthResult {
    /// `true` when a usable carpet grows: at least 10 nm/min and a D/G
    /// ratio below 1.1.
    pub fn is_viable(&self) -> bool {
        self.growth_rate_um_per_min > 0.01 && self.dg_ratio < 1.1
    }

    /// Maps the D/G defect proxy to an electron mean free path for the
    /// compact models: pristine arc-discharge quality (D/G ≈ 0.05) reaches
    /// ~1 µm; heavily defective material drops far below.
    pub fn defect_limited_mfp(&self) -> Length {
        Length::from_micrometers(1.0 * (0.05 / self.dg_ratio.max(0.05)).min(1.0))
    }
}

/// Sweeps growth temperature — the Fig. 4 experiment.
///
/// # Errors
///
/// Returns [`Error::EmptyRequest`] for an empty temperature list and
/// propagates per-run errors.
pub fn temperature_sweep(
    catalyst: Catalyst,
    temperatures: &[Temperature],
    plasma_assisted: bool,
) -> Result<Vec<GrowthResult>> {
    if temperatures.is_empty() {
        return Err(Error::EmptyRequest("temperature sweep"));
    }
    temperatures
        .iter()
        .map(|&t| {
            GrowthRecipe {
                catalyst,
                temperature: t,
                plasma_assisted,
            }
            .simulate()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn celsius(c: f64) -> Temperature {
        Temperature::from_celsius(c)
    }

    #[test]
    fn growth_rate_is_arrhenius() {
        // ln(rate) vs 1/T must be linear with slope −Ea/k.
        let temps = [500.0, 550.0, 600.0, 650.0];
        let rates: Vec<f64> = temps
            .iter()
            .map(|&c| {
                GrowthRecipe::thermal(Catalyst::Cobalt, celsius(c))
                    .simulate()
                    .unwrap()
                    .growth_rate_um_per_min
            })
            .collect();
        let x: Vec<f64> = temps.iter().map(|&c| 1.0 / (c + 273.15)).collect();
        let y: Vec<f64> = rates.iter().map(|r| r.ln()).collect();
        let fit = cnt_units::math::linear_fit(&x, &y).unwrap();
        let ea = -fit.slope * K_B_EV;
        assert!((ea - 1.05).abs() < 1e-6, "extracted Ea = {ea}");
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn cobalt_grows_at_beol_budget_iron_does_not() {
        // The Fig. 4 headline: Co catalyst pushes growth into the CMOS
        // temperature window.
        let t = celsius(395.0);
        let co = GrowthRecipe::thermal(Catalyst::Cobalt, t)
            .simulate()
            .unwrap();
        let fe = GrowthRecipe::thermal(Catalyst::Iron, t).simulate().unwrap();
        assert!(co.is_viable(), "Co at 395 °C: {co:?}");
        assert!(!fe.is_viable(), "Fe at 395 °C should be non-viable: {fe:?}");
        assert!(GrowthRecipe::thermal(Catalyst::Cobalt, t).is_cmos_compatible());
        assert!(!GrowthRecipe::thermal(Catalyst::Iron, t).is_cmos_compatible());
    }

    #[test]
    fn defectivity_rises_as_temperature_drops() {
        let sweep = temperature_sweep(
            Catalyst::Cobalt,
            &[
                celsius(350.0),
                celsius(400.0),
                celsius(450.0),
                celsius(550.0),
            ],
            false,
        )
        .unwrap();
        for w in sweep.windows(2) {
            assert!(
                w[0].dg_ratio > w[1].dg_ratio,
                "D/G should fall towards the optimum: {} vs {}",
                w[0].dg_ratio,
                w[1].dg_ratio
            );
        }
        // And the mean free path moves the other way.
        assert!(sweep[0].defect_limited_mfp() < sweep[3].defect_limited_mfp());
    }

    #[test]
    fn plasma_assistance_boosts_low_temperature_rate() {
        let t = celsius(380.0);
        let thermal = GrowthRecipe::thermal(Catalyst::Cobalt, t)
            .simulate()
            .unwrap();
        let pecvd = GrowthRecipe {
            plasma_assisted: true,
            ..GrowthRecipe::thermal(Catalyst::Cobalt, t)
        }
        .simulate()
        .unwrap();
        assert!(pecvd.growth_rate_um_per_min > 10.0 * thermal.growth_rate_um_per_min);
    }

    #[test]
    fn validation_and_empty_sweeps() {
        assert!(
            GrowthRecipe::thermal(Catalyst::Iron, Temperature::from_kelvin(-5.0))
                .simulate()
                .is_err()
        );
        assert!(temperature_sweep(Catalyst::Iron, &[], false).is_err());
    }

    #[test]
    fn quality_peaks_at_catalyst_optimum() {
        let opt = Catalyst::Cobalt.optimal_temperature();
        let at_opt = GrowthRecipe::thermal(Catalyst::Cobalt, opt)
            .simulate()
            .unwrap();
        let above = GrowthRecipe::thermal(
            Catalyst::Cobalt,
            Temperature::from_kelvin(opt.kelvin() + 150.0),
        )
        .simulate()
        .unwrap();
        let below = GrowthRecipe::thermal(
            Catalyst::Cobalt,
            Temperature::from_kelvin(opt.kelvin() - 150.0),
        )
        .simulate()
        .unwrap();
        assert!(at_opt.dg_ratio < above.dg_ratio);
        assert!(at_opt.dg_ratio < below.dg_ratio);
    }
}
