//! 300 mm wafer maps: spatial variation and uniformity metrics.
//!
//! Regenerates the observable content of Fig. 5 ("CNT growth with Co
//! catalyst on a 300 mm wafer" — "a good starting uniformity") and
//! provides the wafer-scale machinery reused by the Fig. 13b full-wafer
//! electrical characterization.
//!
//! The spatial model is the standard decomposition used in SPC:
//! `value(r, θ) = nominal · (1 + radial·(r/R)² + noise)` with seeded
//! Gaussian noise per site.

use crate::{Error, Result};
use cnt_units::math;
use cnt_units::rand_ext;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One measurement site on the wafer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaferSite {
    /// x coordinate, metres (wafer centre = origin).
    pub x: f64,
    /// y coordinate, metres.
    pub y: f64,
    /// Measured value at this site (unit defined by the quantity mapped).
    pub value: f64,
}

impl WaferSite {
    /// Radial position from wafer centre, metres.
    pub fn radius(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }
}

/// Uniformity summary of a wafer map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformityReport {
    /// Mean of all sites.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation σ/µ (fraction, not %).
    pub cv: f64,
    /// Half-range uniformity `(max − min) / (2·mean)`.
    pub half_range: f64,
    /// Number of sites.
    pub sites: usize,
}

/// A sampled wafer map.
///
/// # Example
///
/// ```
/// use cnt_process::wafer::WaferMap;
///
/// let map = WaferMap::generate(0.3, 49, 1.0, 0.04, 0.01, 42)?;
/// let rep = map.uniformity()?;
/// assert!(rep.cv < 0.05, "good starting uniformity");
/// # Ok::<(), cnt_process::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WaferMap {
    diameter: f64,
    sites: Vec<WaferSite>,
}

impl WaferMap {
    /// Generates a map with `n_sites` in a spiral (sunflower) layout over a
    /// wafer of `diameter` metres: `nominal` mean value, `radial`
    /// centre-to-edge fractional variation, `noise` per-site Gaussian
    /// fractional sigma, deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive diameter or
    /// nominal, negative noise, or [`Error::EmptyRequest`] for zero sites.
    pub fn generate(
        diameter: f64,
        n_sites: usize,
        nominal: f64,
        radial: f64,
        noise: f64,
        seed: u64,
    ) -> Result<Self> {
        if diameter <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "diameter",
                value: diameter,
            });
        }
        if nominal <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "nominal",
                value: nominal,
            });
        }
        if noise < 0.0 {
            return Err(Error::InvalidParameter {
                name: "noise",
                value: noise,
            });
        }
        if n_sites == 0 {
            return Err(Error::EmptyRequest("wafer sites"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let r_max = diameter / 2.0 * 0.95; // 5 % edge exclusion
        let golden = core::f64::consts::PI * (3.0 - 5.0_f64.sqrt());
        let sites = (0..n_sites)
            .map(|k| {
                // Sunflower layout covers the disc uniformly.
                let frac = (k as f64 + 0.5) / n_sites as f64;
                let r = r_max * frac.sqrt();
                let th = golden * k as f64;
                let rel = r / (diameter / 2.0);
                let value =
                    nominal * (1.0 + radial * rel * rel + rand_ext::normal(&mut rng, 0.0, noise));
                WaferSite {
                    x: r * th.cos(),
                    y: r * th.sin(),
                    value,
                }
            })
            .collect();
        Ok(Self { diameter, sites })
    }

    /// Wafer diameter, metres.
    pub fn diameter(&self) -> f64 {
        self.diameter
    }

    /// All sites.
    pub fn sites(&self) -> &[WaferSite] {
        &self.sites
    }

    /// Applies a function to every site value, returning a derived map
    /// (e.g. thickness → line resistance).
    pub fn map_values(&self, f: impl Fn(f64) -> f64) -> WaferMap {
        WaferMap {
            diameter: self.diameter,
            sites: self
                .sites
                .iter()
                .map(|s| WaferSite {
                    x: s.x,
                    y: s.y,
                    value: f(s.value),
                })
                .collect(),
        }
    }

    /// Computes the uniformity summary.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyRequest`] when the map has fewer than 2 sites.
    pub fn uniformity(&self) -> Result<UniformityReport> {
        let values: Vec<f64> = self.sites.iter().map(|s| s.value).collect();
        if values.len() < 2 {
            return Err(Error::EmptyRequest("uniformity needs ≥ 2 sites"));
        }
        let mean = math::mean(&values).expect("non-empty");
        let std_dev = math::std_dev(&values).expect("≥ 2 sites");
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        let min = values.iter().copied().fold(f64::MAX, f64::min);
        Ok(UniformityReport {
            mean,
            std_dev,
            cv: std_dev / mean,
            half_range: (max - min) / (2.0 * mean),
            sites: values.len(),
        })
    }

    /// Mean value of sites within the given radial band (fractions of the
    /// wafer radius) — used to expose centre-to-edge trends.
    pub fn radial_band_mean(&self, r_lo_frac: f64, r_hi_frac: f64) -> Option<f64> {
        let r_wafer = self.diameter / 2.0;
        let vals: Vec<f64> = self
            .sites
            .iter()
            .filter(|s| {
                let f = s.radius() / r_wafer;
                f >= r_lo_frac && f < r_hi_frac
            })
            .map(|s| s.value)
            .collect();
        math::mean(&vals)
    }

    /// Renders a coarse ASCII map (rows of mean values) for reports.
    pub fn ascii_map(&self, bins: usize) -> String {
        let mut s = String::new();
        let r = self.diameter / 2.0;
        for row in 0..bins {
            let y_lo = r - (row as f64 + 1.0) * self.diameter / bins as f64;
            let y_hi = r - row as f64 * self.diameter / bins as f64;
            for col in 0..bins {
                let x_lo = -r + col as f64 * self.diameter / bins as f64;
                let x_hi = -r + (col as f64 + 1.0) * self.diameter / bins as f64;
                let vals: Vec<f64> = self
                    .sites
                    .iter()
                    .filter(|p| p.x >= x_lo && p.x < x_hi && p.y >= y_lo && p.y < y_hi)
                    .map(|p| p.value)
                    .collect();
                let ch = match math::mean(&vals) {
                    None => ' ',
                    Some(v) => {
                        let rep = self.uniformity().expect("≥2 sites");
                        let z = (v - rep.mean) / rep.std_dev.max(1e-30);
                        match z {
                            z if z < -1.0 => '-',
                            z if z > 1.0 => '+',
                            _ => 'o',
                        }
                    }
                };
                s.push(ch);
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(WaferMap::generate(-0.3, 49, 1.0, 0.0, 0.0, 1).is_err());
        assert!(WaferMap::generate(0.3, 0, 1.0, 0.0, 0.0, 1).is_err());
        assert!(WaferMap::generate(0.3, 9, 0.0, 0.0, 0.0, 1).is_err());
        assert!(WaferMap::generate(0.3, 9, 1.0, 0.0, -0.1, 1).is_err());
    }

    #[test]
    fn noise_free_map_shows_pure_radial_trend() {
        let map = WaferMap::generate(0.3, 200, 100.0, 0.10, 0.0, 7).unwrap();
        let center = map.radial_band_mean(0.0, 0.3).unwrap();
        let edge = map.radial_band_mean(0.7, 1.0).unwrap();
        assert!(edge > center, "edge {edge} vs centre {center}");
        // 10 % centre-to-edge: edge band mean ≈ +7–10 %.
        assert!((edge / center - 1.0) > 0.04);
    }

    #[test]
    fn uniformity_metrics_scale_with_noise() {
        let quiet = WaferMap::generate(0.3, 300, 1.0, 0.0, 0.01, 3)
            .unwrap()
            .uniformity()
            .unwrap();
        let loud = WaferMap::generate(0.3, 300, 1.0, 0.0, 0.05, 3)
            .unwrap()
            .uniformity()
            .unwrap();
        assert!((quiet.cv - 0.01).abs() < 0.004, "cv = {}", quiet.cv);
        assert!((loud.cv - 0.05).abs() < 0.01, "cv = {}", loud.cv);
        assert!(loud.half_range > quiet.half_range);
        assert_eq!(quiet.sites, 300);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = WaferMap::generate(0.3, 49, 1.0, 0.05, 0.02, 99).unwrap();
        let b = WaferMap::generate(0.3, 49, 1.0, 0.05, 0.02, 99).unwrap();
        assert_eq!(a, b);
        let c = WaferMap::generate(0.3, 49, 1.0, 0.05, 0.02, 100).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn sites_stay_on_wafer() {
        let map = WaferMap::generate(0.3, 500, 1.0, 0.02, 0.01, 5).unwrap();
        for s in map.sites() {
            assert!(s.radius() <= 0.15, "site off-wafer at r = {}", s.radius());
        }
    }

    #[test]
    fn map_values_transforms_pointwise() {
        let map = WaferMap::generate(0.3, 49, 2.0, 0.0, 0.0, 1).unwrap();
        let doubled = map.map_values(|v| v * 2.0);
        for (a, b) in map.sites().iter().zip(doubled.sites()) {
            assert_eq!(b.value, a.value * 2.0);
            assert_eq!((a.x, a.y), (b.x, b.y));
        }
    }

    #[test]
    fn ascii_map_has_requested_shape() {
        let map = WaferMap::generate(0.3, 200, 1.0, 0.1, 0.01, 2).unwrap();
        let art = map.ascii_map(8);
        assert_eq!(art.lines().count(), 8);
        assert!(art.lines().all(|l| l.chars().count() == 8));
    }
}
