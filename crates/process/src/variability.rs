//! Monte-Carlo variability of single-CNT interconnects.
//!
//! Section II.A of the paper: CVD-grown tubes suffer from (i) the 2/3
//! semiconducting-chirality lottery, (ii) growth defects, and (iii)
//! variable contacts — "These problems lead to the variation of resistance
//! in the CNT interconnect device. One way to overcome the variability of
//! resistance is by doping." This module samples exactly that story and
//! quantifies how much doping tightens the resistance distribution.

use crate::{Error, Result};
use cnt_sweep::{Axis, Executor, SweepPlan};
use cnt_units::consts::{G0_SIEMENS, MFP_DIAMETER_RATIO};
use cnt_units::math;
use cnt_units::rand_ext;
use cnt_units::si::Length;
use rand::rngs::StdRng;
use rand::Rng;

/// Statistical description of the as-grown tube population and contacts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DevicePopulation {
    /// Mean tube diameter.
    pub diameter_mean: Length,
    /// Diameter sigma (lognormal-ish handled as truncated normal).
    pub diameter_sigma: Length,
    /// Interconnect length.
    pub length: Length,
    /// Median single-contact resistance, ohms.
    pub contact_median: f64,
    /// Lognormal shape of the contact resistance.
    pub contact_sigma: f64,
    /// Fraction of metallic chiralities (1/3 for random CVD growth).
    pub metallic_fraction: f64,
    /// Mean-free-path multiplier for defectivity (1 = pristine λ ≈ 1000·d).
    pub defect_mfp_factor: f64,
}

impl DevicePopulation {
    /// The paper's single-MWCNT via device: d ≈ 7.5 nm ± 1 nm, 1 µm line,
    /// Pd/Au side contacts with ~20 kΩ median per contact.
    pub fn mwcnt_via_default() -> Self {
        Self {
            diameter_mean: Length::from_nanometers(7.5),
            diameter_sigma: Length::from_nanometers(1.0),
            length: Length::from_micrometers(1.0),
            contact_median: 20e3,
            contact_sigma: 0.35,
            metallic_fraction: 1.0 / 3.0,
            defect_mfp_factor: 1.0,
        }
    }

    /// Validates the population parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        let checks: [(&'static str, f64, bool); 6] = [
            (
                "diameter_mean",
                self.diameter_mean.meters(),
                self.diameter_mean.meters() > 0.0,
            ),
            (
                "diameter_sigma",
                self.diameter_sigma.meters(),
                self.diameter_sigma.meters() >= 0.0,
            ),
            ("length", self.length.meters(), self.length.meters() > 0.0),
            (
                "contact_median",
                self.contact_median,
                self.contact_median >= 0.0,
            ),
            (
                "metallic_fraction",
                self.metallic_fraction,
                (0.0..=1.0).contains(&self.metallic_fraction),
            ),
            (
                "defect_mfp_factor",
                self.defect_mfp_factor,
                self.defect_mfp_factor > 0.0,
            ),
        ];
        for (name, value, ok) in checks {
            if !ok {
                return Err(Error::InvalidParameter { name, value });
            }
        }
        Ok(())
    }
}

/// Doping state for the sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DopingState {
    /// As grown: semiconducting tubes barely conduct.
    Pristine,
    /// Charge-transfer doped with the given extra channels per metallic
    /// shell; semiconducting tubes are turned on (the paper's variability
    /// fix).
    Doped {
        /// Conducting channels per shell after doping (≥ 2).
        channels_per_shell: usize,
    },
}

/// One sampled device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledDevice {
    /// Tube diameter.
    pub diameter: Length,
    /// Whether the chirality lottery produced a metallic tube.
    pub metallic: bool,
    /// Total two-terminal resistance, ohms.
    pub resistance: f64,
}

/// Resistance-distribution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResistanceStats {
    /// Median resistance, ohms.
    pub median: f64,
    /// Mean resistance, ohms.
    pub mean: f64,
    /// Sample standard deviation, ohms.
    pub std_dev: f64,
    /// Coefficient of variation σ/µ.
    pub cv: f64,
    /// Fraction of devices above 10× the median ("open-ish" fails).
    pub tail_fraction: f64,
}

/// Samples one device on the caller's generator.
///
/// Resistance model (matching the compact models of `cnt-interconnect`):
/// shells from `d` down to `d/2` at 0.34 nm spacing, per-shell channels
/// (pristine: 2 if metallic else ~0.01 thermal leakage; doped:
/// `channels_per_shell` for every tube), per-shell conductance
/// `G0·Nc/(1 + L/λ)` with `λ = 1000·d·defect_factor`, plus two lognormal
/// contacts.
///
/// The population is **not** re-validated here — this is the per-job
/// kernel of the `cnt-sweep` Monte-Carlo paths; validate once up front
/// via [`DevicePopulation::validate`].
pub fn sample_one_device(
    population: &DevicePopulation,
    doping: DopingState,
    rng: &mut StdRng,
) -> SampledDevice {
    let d_nm = rand_ext::truncated_normal(
        rng,
        population.diameter_mean.nanometers(),
        population.diameter_sigma.nanometers(),
        1.0,
        4.0 * population.diameter_mean.nanometers(),
    );
    let metallic = rng.gen::<f64>() < population.metallic_fraction;
    // Shell stack: d down to d/2 in 2×0.34 nm diameter steps.
    let shells = (1 + ((d_nm / 2.0) / (2.0 * 0.34)).floor() as usize).max(1);
    let mfp_nm = MFP_DIAMETER_RATIO * d_nm * population.defect_mfp_factor;
    let l_nm = population.length.nanometers();
    let per_shell_channels: f64 = match doping {
        DopingState::Pristine => {
            if metallic {
                2.0
            } else {
                0.01 // deep-subthreshold leakage of semiconducting shells
            }
        }
        DopingState::Doped { channels_per_shell } => channels_per_shell as f64,
    };
    let g_tube: f64 = shells as f64 * per_shell_channels * G0_SIEMENS / (1.0 + l_nm / mfp_nm);
    let r_tube = 1.0 / g_tube;
    let contacts = rand_ext::lognormal(
        rng,
        population.contact_median.ln(),
        population.contact_sigma,
    ) + rand_ext::lognormal(
        rng,
        population.contact_median.ln(),
        population.contact_sigma,
    );
    SampledDevice {
        diameter: Length::from_nanometers(d_nm),
        metallic,
        resistance: r_tube + contacts,
    }
}

/// Samples `n` devices from the population in the given doping state.
///
/// Runs on the `cnt-sweep` work-stealing pool: every device derives its
/// own random stream from `(seed, device index)`, so the returned vector
/// is **bit-identical for any thread count** — and identical to what
/// [`sample_devices_with_threads`] returns for explicit thread counts.
///
/// # Errors
///
/// Propagates validation errors and rejects `n == 0`.
pub fn sample_devices(
    population: &DevicePopulation,
    doping: DopingState,
    n: usize,
    seed: u64,
) -> Result<Vec<SampledDevice>> {
    sample_devices_with_threads(population, doping, n, seed, 0)
}

/// [`sample_devices`] with an explicit worker count (`0` = all cores).
///
/// # Errors
///
/// Propagates validation errors and rejects `n == 0`.
pub fn sample_devices_with_threads(
    population: &DevicePopulation,
    doping: DopingState,
    n: usize,
    seed: u64,
    threads: usize,
) -> Result<Vec<SampledDevice>> {
    population.validate()?;
    if n == 0 {
        return Err(Error::EmptyRequest("device samples"));
    }
    let plan = SweepPlan::new("process.variability.devices").axis(Axis::trials(n));
    Executor::new(threads)
        .run(&plan, seed, |_, rng| {
            Ok::<_, Error>(sample_one_device(population, doping, rng))
        })
        .map_err(|e| match e {
            cnt_sweep::Error::EmptyPlan => Error::EmptyRequest("device samples"),
            // The kernel is infallible and the guards above exclude every
            // structural failure; surface anything new loudly instead of
            // mislabeling it.
            other => unreachable!("infallible device kernel failed: {other}"),
        })
}

/// Summarizes a device sample.
///
/// # Errors
///
/// Returns [`Error::EmptyRequest`] for fewer than 2 devices.
pub fn resistance_stats(devices: &[SampledDevice]) -> Result<ResistanceStats> {
    if devices.len() < 2 {
        return Err(Error::EmptyRequest("resistance stats need ≥ 2 devices"));
    }
    let rs: Vec<f64> = devices.iter().map(|d| d.resistance).collect();
    let median = math::median(&rs).expect("non-empty");
    let mean = math::mean(&rs).expect("non-empty");
    let std_dev = math::std_dev(&rs).expect("≥ 2");
    let tail = rs.iter().filter(|&&r| r > 10.0 * median).count() as f64 / rs.len() as f64;
    Ok(ResistanceStats {
        median,
        mean,
        std_dev,
        cv: std_dev / mean,
        tail_fraction: tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> DevicePopulation {
        DevicePopulation::mwcnt_via_default()
    }

    #[test]
    fn doping_cuts_variability_headline() {
        // The Section II.A claim this module exists for.
        let pristine = sample_devices(&pop(), DopingState::Pristine, 3000, 11).unwrap();
        let doped = sample_devices(
            &pop(),
            DopingState::Doped {
                channels_per_shell: 6,
            },
            3000,
            11,
        )
        .unwrap();
        let sp = resistance_stats(&pristine).unwrap();
        let sd = resistance_stats(&doped).unwrap();
        assert!(
            sd.cv < 0.6 * sp.cv,
            "doped CV {} should be well below pristine CV {}",
            sd.cv,
            sp.cv
        );
        assert!(sd.median < sp.median, "doping lowers the median too");
        assert!(sd.tail_fraction <= sp.tail_fraction);
    }

    #[test]
    fn pristine_distribution_is_bimodal_by_chirality() {
        let devices = sample_devices(&pop(), DopingState::Pristine, 2000, 5).unwrap();
        let (met, semi): (Vec<&SampledDevice>, Vec<&SampledDevice>) =
            devices.iter().partition(|d| d.metallic);
        let m_med = math::median(&met.iter().map(|d| d.resistance).collect::<Vec<f64>>()).unwrap();
        let s_med = math::median(&semi.iter().map(|d| d.resistance).collect::<Vec<f64>>()).unwrap();
        assert!(
            s_med > 5.0 * m_med,
            "semiconducting median {s_med} ≫ metallic median {m_med}"
        );
        // Roughly a third metallic.
        let frac = met.len() as f64 / devices.len() as f64;
        assert!((frac - 1.0 / 3.0).abs() < 0.05, "metallic fraction {frac}");
    }

    #[test]
    fn defects_raise_resistance() {
        let mut defective = pop();
        defective.defect_mfp_factor = 0.1; // low-temperature CVD quality
        let clean =
            resistance_stats(&sample_devices(&pop(), DopingState::Pristine, 1500, 3).unwrap())
                .unwrap();
        let dirty =
            resistance_stats(&sample_devices(&defective, DopingState::Pristine, 1500, 3).unwrap())
                .unwrap();
        assert!(dirty.median > clean.median);
    }

    #[test]
    fn longer_lines_have_higher_resistance() {
        let mut long = pop();
        long.length = Length::from_micrometers(10.0);
        let short_stats =
            resistance_stats(&sample_devices(&pop(), DopingState::Pristine, 1000, 8).unwrap())
                .unwrap();
        let long_stats =
            resistance_stats(&sample_devices(&long, DopingState::Pristine, 1000, 8).unwrap())
                .unwrap();
        assert!(long_stats.median > short_stats.median);
    }

    #[test]
    fn validation_and_degenerate_requests() {
        let mut bad = pop();
        bad.metallic_fraction = 1.5;
        assert!(bad.validate().is_err());
        assert!(sample_devices(&bad, DopingState::Pristine, 10, 1).is_err());
        assert!(sample_devices(&pop(), DopingState::Pristine, 0, 1).is_err());
        assert!(resistance_stats(&[]).is_err());
    }

    #[test]
    fn reproducible_given_seed() {
        let a = sample_devices(&pop(), DopingState::Pristine, 50, 77).unwrap();
        let b = sample_devices(&pop(), DopingState::Pristine, 50, 77).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_invisible_in_results() {
        // The cnt-sweep port's contract: per-device seed streams make the
        // sample independent of the worker count.
        let serial = sample_devices_with_threads(&pop(), DopingState::Pristine, 300, 5, 1).unwrap();
        let par4 = sample_devices_with_threads(&pop(), DopingState::Pristine, 300, 5, 4).unwrap();
        let auto = sample_devices(&pop(), DopingState::Pristine, 300, 5).unwrap();
        assert_eq!(serial, par4);
        assert_eq!(serial, auto);
    }
}
