//! Property-based tests of the process models.

use cnt_process::composite::{ampacity_boost, composite_conductivity};
use cnt_process::growth::{Catalyst, GrowthRecipe};
use cnt_process::variability::{resistance_stats, sample_devices, DevicePopulation, DopingState};
use cnt_process::wafer::WaferMap;
use cnt_units::si::Temperature;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn growth_rate_monotone_in_temperature(
        t1 in 550.0_f64..900.0,
        dt in 1.0_f64..200.0,
    ) {
        let lo = GrowthRecipe::thermal(Catalyst::Iron, Temperature::from_kelvin(t1))
            .simulate().unwrap();
        let hi = GrowthRecipe::thermal(Catalyst::Iron, Temperature::from_kelvin(t1 + dt))
            .simulate().unwrap();
        prop_assert!(hi.growth_rate_um_per_min > lo.growth_rate_um_per_min);
    }

    #[test]
    fn growth_observables_are_physical(
        t in 500.0_f64..1100.0,
        plasma in any::<bool>(),
    ) {
        let r = GrowthRecipe {
            catalyst: Catalyst::Cobalt,
            temperature: Temperature::from_kelvin(t),
            plasma_assisted: plasma,
        }
        .simulate()
        .unwrap();
        prop_assert!(r.growth_rate_um_per_min >= 0.0);
        prop_assert!(r.dg_ratio >= 0.0);
        prop_assert!(r.areal_density_per_cm2 >= 0.0);
        prop_assert!(r.tortuosity >= 1.0);
        prop_assert!(r.defect_limited_mfp().meters() > 0.0);
    }

    #[test]
    fn composite_mixing_is_bounded_by_constituents(
        vf in 0.0_f64..0.74,
        fill in 0.0_f64..1.0,
        sigma_cu in 1e6_f64..1e8,
        sigma_cnt in 1e5_f64..1e8,
    ) {
        let s = composite_conductivity(vf, fill, sigma_cu, sigma_cnt);
        let hi = sigma_cu.max(sigma_cnt);
        prop_assert!(s >= 0.0 && s <= hi * (1.0 + 1e-12));
    }

    #[test]
    fn ampacity_boost_monotone(v1 in 0.0_f64..0.7, dv in 0.001_f64..0.04) {
        prop_assert!(ampacity_boost(v1 + dv) > ampacity_boost(v1));
    }

    #[test]
    fn wafer_uniformity_scales_with_injected_noise(
        noise in 0.005_f64..0.08,
        seed in 0u64..100,
    ) {
        let map = WaferMap::generate(0.3, 200, 1.0, 0.0, noise, seed).unwrap();
        let cv = map.uniformity().unwrap().cv;
        prop_assert!((cv - noise).abs() < 0.4 * noise + 0.002, "cv {} vs noise {}", cv, noise);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn doping_never_hurts_the_median(seed in 0u64..50) {
        let pop = DevicePopulation::mwcnt_via_default();
        let p = resistance_stats(&sample_devices(&pop, DopingState::Pristine, 600, seed).unwrap())
            .unwrap();
        let d = resistance_stats(
            &sample_devices(
                &pop,
                DopingState::Doped { channels_per_shell: 6 },
                600,
                seed,
            )
            .unwrap(),
        )
        .unwrap();
        prop_assert!(d.median <= p.median);
        prop_assert!(d.cv <= p.cv);
    }
}
