//! Thermal kernels: fin solves, SThM scans, Kth extraction.

use cnt_thermal::extract::extract_thermal_conductivity;
use cnt_thermal::fin::SelfHeatingLine;
use cnt_thermal::sthm::SthmInstrument;
use cnt_units::si::{CurrentDensity, Length};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn line() -> SelfHeatingLine {
    SelfHeatingLine::mwcnt(
        Length::from_micrometers(2.0),
        CurrentDensity::from_amps_per_square_centimeter(3e7),
    )
}

fn bench_fin(c: &mut Criterion) {
    let l = line();
    c.bench_function("thermal/fin_fd_801_nodes", |b| {
        b.iter(|| black_box(&l).solve_fd(801).unwrap())
    });
}

fn bench_sthm_and_extract(c: &mut Criterion) {
    let profile = line().analytic_profile(401).unwrap();
    let inst = SthmInstrument::nanoprobe();
    c.bench_function("thermal/sthm_scan", |b| {
        b.iter(|| inst.scan(black_box(&profile), 1).unwrap())
    });
    let scan = inst.scan(&profile, 1).unwrap();
    let template = line();
    c.bench_function("thermal/kth_extraction", |b| {
        b.iter(|| {
            extract_thermal_conductivity(black_box(&template), &scan, 100.0, 100_000.0).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fin, bench_sthm_and_extract
}
criterion_main!(benches);
