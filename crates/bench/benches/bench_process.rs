//! Process-model kernels: growth sweeps, wafer maps, variability MC.

use cnt_process::growth::{temperature_sweep, Catalyst};
use cnt_process::variability::{sample_devices, DevicePopulation, DopingState};
use cnt_process::wafer::WaferMap;
use cnt_units::si::Temperature;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_growth(c: &mut Criterion) {
    let temps: Vec<Temperature> = (0..20)
        .map(|k| Temperature::from_celsius(350.0 + 15.0 * k as f64))
        .collect();
    c.bench_function("process/growth_sweep_20T", |b| {
        b.iter(|| temperature_sweep(Catalyst::Cobalt, black_box(&temps), false).unwrap())
    });
}

fn bench_wafer(c: &mut Criterion) {
    c.bench_function("process/wafer_map_300mm_500_sites", |b| {
        b.iter(|| WaferMap::generate(0.3, 500, 1.0, 0.05, 0.02, black_box(7)).unwrap())
    });
}

fn bench_variability(c: &mut Criterion) {
    let pop = DevicePopulation::mwcnt_via_default();
    c.bench_function("process/variability_mc_2000_devices", |b| {
        b.iter(|| sample_devices(black_box(&pop), DopingState::Pristine, 2000, 1).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_growth, bench_wafer, bench_variability
}
criterion_main!(benches);
