//! Measurement-lab kernels: TLM fits and I-V sweeps.

use cnt_measure::iv::{iv_sweep, CntDevice};
use cnt_measure::tlm::{run_tlm, TlmExperiment};
use cnt_units::si::{Current, Resistance, Voltage};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tlm(c: &mut Criterion) {
    let exp = TlmExperiment::mwcnt_default();
    c.bench_function("measure/tlm_generate_and_fit", |b| {
        b.iter(|| run_tlm(black_box(&exp), 1).unwrap())
    });
}

fn bench_iv(c: &mut Criterion) {
    let device = CntDevice {
        resistance: Resistance::from_kilo_ohms(55.0),
        saturation_current: Current::from_microamps(25.0),
    };
    c.bench_function("measure/iv_sweep_201_points", |b| {
        b.iter(|| iv_sweep(black_box(&device), Voltage::from_volts(1.0), 201, 0.01, 1).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_tlm, bench_iv
}
criterion_main!(benches);
