//! Field-solver kernels, including the CG-vs-SOR ablation of DESIGN.md §6.

use cnt_fields::extract::{extract_capacitance, extract_resistance};
use cnt_fields::presets::{inverter_cell_14nm, via_stack, InverterCellGeometry};
use cnt_fields::solver::{IterationScheme, SolverOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_capacitance_solvers(c: &mut Criterion) {
    let structure = inverter_cell_14nm(InverterCellGeometry::default())
        .build([15, 11, 13])
        .unwrap();
    let cg = SolverOptions::default();
    let sor = SolverOptions {
        scheme: IterationScheme::Sor { omega: 1.8 },
        ..SolverOptions::default()
    };
    c.bench_function("fields/inverter_cap_cg", |b| {
        b.iter(|| extract_capacitance(black_box(&structure), &cg).unwrap())
    });
    c.bench_function("fields/inverter_cap_sor", |b| {
        b.iter(|| extract_capacitance(black_box(&structure), &sor).unwrap())
    });
}

fn bench_resistance(c: &mut Criterion) {
    let structure = via_stack(InverterCellGeometry::default(), 3.0e7)
        .build([41, 7, 13])
        .unwrap();
    let opts = SolverOptions::default();
    c.bench_function("fields/via_stack_resistance", |b| {
        b.iter(|| extract_resistance(black_box(&structure), "t_m1", "t_m2", &opts).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_capacitance_solvers, bench_resistance
}
criterion_main!(benches);
