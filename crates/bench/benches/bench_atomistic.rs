//! Kernels of the atomistic layer: zone folding, Landauer conductance,
//! NEGF disorder transmission.

use cnt_atomistic::bands::BandStructure;
use cnt_atomistic::chirality::Chirality;
use cnt_atomistic::doping::{DopedCnt, DopingSpec};
use cnt_atomistic::negf::DisorderedChain;
use cnt_atomistic::transport;
use cnt_units::si::{Length, Temperature};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_band_structure(c: &mut Criterion) {
    let tube = Chirality::new(7, 7).unwrap();
    c.bench_function("bands/zone_fold_7_7", |b| {
        b.iter(|| BandStructure::compute(black_box(tube), 1201).unwrap())
    });
    let wide = Chirality::new(22, 0).unwrap();
    c.bench_function("bands/zone_fold_22_0", |b| {
        b.iter(|| BandStructure::compute(black_box(wide), 1201).unwrap())
    });
}

fn bench_conductance(c: &mut Criterion) {
    let tube = Chirality::new(7, 7).unwrap();
    let bands = BandStructure::compute(tube, 1201).unwrap();
    let t = Temperature::from_kelvin(300.0);
    c.bench_function("transport/finite_t_conductance", |b| {
        b.iter(|| transport::conductance_at_temperature(black_box(&bands), 0.0, t))
    });
    let doped = DopedCnt::new(tube, DopingSpec::iodine_internal()).unwrap();
    c.bench_function("transport/doped_conductance", |b| {
        b.iter(|| black_box(&doped).conductance(t))
    });
}

fn bench_negf(c: &mut Criterion) {
    let chain = DisorderedChain::new(400, 2.7, 0.8, Length::from_nanometers(0.25)).unwrap();
    c.bench_function("negf/transmission_400_sites", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(&chain).transmission(0.0, &mut rng))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_band_structure, bench_conductance, bench_negf
}
criterion_main!(benches);
