//! Circuit-engine kernels: transient integrators (BE vs TRAP ablation)
//! and ladder-discretization convergence.

use cnt_circuit::analysis::TranOptions;
use cnt_circuit::circuit::Circuit;
use cnt_circuit::line::{add_distributed_line, LineTotals};
use cnt_circuit::mosfet::MosfetModel;
use cnt_circuit::waveform::Waveform;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn ladder_circuit(segments: usize) -> Circuit {
    let mut c = Circuit::new();
    let a = c.node("a");
    let b = c.node("b");
    c.add_vsource("V1", a, Circuit::GND, Waveform::step(1.0))
        .unwrap();
    add_distributed_line(&mut c, "l", a, b, LineTotals::rc(10e3, 1e-13), segments).unwrap();
    c
}

fn bench_integrators(c: &mut Criterion) {
    let circuit = ladder_circuit(16);
    let be = TranOptions::new(10e-9, 10e-12);
    let trap = be.trapezoidal();
    c.bench_function("circuit/tran_be_16seg", |b| {
        b.iter(|| black_box(&circuit).transient(&be).unwrap())
    });
    c.bench_function("circuit/tran_trap_16seg", |b| {
        b.iter(|| black_box(&circuit).transient(&trap).unwrap())
    });
}

fn bench_ladder_scaling(c: &mut Criterion) {
    for segments in [4usize, 16, 64] {
        let circuit = ladder_circuit(segments);
        let opts = TranOptions::new(10e-9, 10e-12);
        c.bench_function(&format!("circuit/ladder_{segments}_segments"), |b| {
            b.iter(|| black_box(&circuit).transient(&opts).unwrap())
        });
    }
}

fn bench_inverter_newton(c: &mut Criterion) {
    let mut circuit = Circuit::new();
    let vdd = circuit.node("vdd");
    let vin = circuit.node("in");
    let vout = circuit.node("out");
    circuit
        .add_vsource("Vdd", vdd, Circuit::GND, Waveform::Dc(1.0))
        .unwrap();
    circuit
        .add_vsource(
            "Vin",
            vin,
            Circuit::GND,
            Waveform::edge(0.0, 1.0, 20e-12, 10e-12),
        )
        .unwrap();
    circuit
        .add_mosfet("Mn", vout, vin, Circuit::GND, MosfetModel::nmos_45nm())
        .unwrap();
    circuit
        .add_mosfet("Mp", vout, vin, vdd, MosfetModel::pmos_45nm())
        .unwrap();
    circuit
        .add_capacitor("Cl", vout, Circuit::GND, 1e-15)
        .unwrap();
    let opts = TranOptions::new(300e-12, 0.5e-12);
    c.bench_function("circuit/inverter_transient_newton", |b| {
        b.iter(|| black_box(&circuit).transient(&opts).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_integrators, bench_ladder_scaling, bench_inverter_newton
}
criterion_main!(benches);
