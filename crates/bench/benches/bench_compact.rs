//! Compact-model kernels and the channel-model / driver ablations.

use cnt_circuit::cells::InverterCell;
use cnt_interconnect::benchmark::{delay_ratio, DelayBenchmark, DriverModel};
use cnt_interconnect::compact::{
    CuWire, DopedMwcnt, MfpModel, ShellChannelModel, ShellFillPolicy, WireEnvironment,
};
use cnt_units::si::{Length, Resistance};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn nm(v: f64) -> Length {
    Length::from_nanometers(v)
}

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

fn bench_models(c: &mut Criterion) {
    let paper = DopedMwcnt::paper_model(nm(22.0), 6).unwrap();
    c.bench_function("compact/mwcnt_resistance_paper", |b| {
        b.iter(|| black_box(&paper).resistance(um(500.0)))
    });
    let naeemi = DopedMwcnt::new(
        nm(22.0),
        ShellChannelModel::NaeemiStatistical,
        ShellFillPolicy::HalfDiameterVdw,
        MfpModel::PerShell,
        WireEnvironment::beol_default(),
        Resistance::from_ohms(0.0),
    )
    .unwrap();
    c.bench_function("compact/mwcnt_resistance_naeemi_ablation", |b| {
        b.iter(|| black_box(&naeemi).resistance(um(500.0)))
    });
    let cu = CuWire::damascene(nm(20.0), nm(40.0)).unwrap();
    c.bench_function("compact/cu_resistivity", |b| {
        b.iter(|| black_box(&cu).resistivity())
    });
}

fn bench_delay_paths(c: &mut Criterion) {
    c.bench_function("benchmark/delay_ratio_elmore", |b| {
        b.iter(|| delay_ratio(nm(10.0), 10, um(500.0)).unwrap())
    });
    let bench = DelayBenchmark::paper_fig12(nm(10.0), 10, um(500.0)).unwrap();
    c.bench_function("benchmark/delay_simulated_spice", |b| {
        b.iter(|| black_box(&bench).simulate_delay().unwrap())
    });
    let mut strong = DelayBenchmark::paper_fig12(nm(10.0), 10, um(500.0)).unwrap();
    strong.driver = DriverModel::Inverter(InverterCell::inv_45nm());
    c.bench_function("benchmark/delay_simulated_strong_driver_ablation", |b| {
        b.iter(|| black_box(&strong).simulate_delay().unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_models, bench_delay_paths
}
criterion_main!(benches);
