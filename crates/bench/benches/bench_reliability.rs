//! Reliability kernels: EM sampling, wafer characterization, dopant MC.

use cnt_reliability::dopant_migration::{run_stress_test, DopantSite, StressTest};
use cnt_reliability::em::BlackModel;
use cnt_reliability::layout::TestStructure;
use cnt_reliability::wafer_char::{characterize_wafer, WaferCharSetup};
use cnt_units::si::{CurrentDensity, Length, Temperature, Time};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_em(c: &mut Criterion) {
    let m = BlackModel::copper();
    let j = CurrentDensity::from_amps_per_square_centimeter(2e6);
    let t = Temperature::from_celsius(250.0);
    c.bench_function("reliability/ttf_sampling_1000", |b| {
        b.iter(|| black_box(&m).sample_ttf(j, t, 1000, 1).unwrap())
    });
}

fn bench_wafer_char(c: &mut Criterion) {
    let setup = WaferCharSetup::copper_reference();
    let line = TestStructure::SingleLine {
        width: Length::from_nanometers(100.0),
        length: Length::from_micrometers(800.0),
        angle_degrees: 0.0,
    };
    c.bench_function("reliability/full_wafer_characterization", |b| {
        b.iter(|| {
            characterize_wafer(black_box(&setup), &line, Time::from_hours(2000.0), 1).unwrap()
        })
    });
}

fn bench_dopant_mc(c: &mut Criterion) {
    let test = StressTest {
        tube_length: Length::from_micrometers(1.0),
        dopant_count: 600,
        site: DopantSite::External,
        temperature: Temperature::from_celsius(105.0),
        current_density: CurrentDensity::from_amps_per_square_centimeter(5e7),
        duration: Time::from_hours(100.0),
    };
    c.bench_function("reliability/dopant_migration_600_walkers", |b| {
        b.iter(|| run_stress_test(black_box(&test), 1).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_em, bench_wafer_char, bench_dopant_mc
}
criterion_main!(benches);
