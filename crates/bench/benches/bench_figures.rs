//! End-to-end regeneration time of every paper artefact — one bench per
//! figure/table, mirroring the experiment index of DESIGN.md §4.

use cnt_interconnect::experiments;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_all_figures(c: &mut Criterion) {
    // `variability` is a full Monte-Carlo ensemble (hundreds of sweep
    // jobs per run) — bench the nominal artefacts only, as before.
    for id in experiments::catalog().filter(|id| *id != "variability") {
        c.bench_function(&format!("figure/{id}"), |b| {
            b.iter(|| experiments::run(black_box(id)).unwrap())
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_all_figures
}
criterion_main!(benches);
