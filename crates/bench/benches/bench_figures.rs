//! End-to-end regeneration time of every paper artefact — one bench per
//! figure/table, mirroring the experiment index of DESIGN.md §4.

use cnt_interconnect::experiments;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_all_figures(c: &mut Criterion) {
    let mut ids: Vec<&str> = experiments::ALL_IDS.to_vec();
    ids.push("stability");
    for id in ids {
        c.bench_function(&format!("figure/{id}"), |b| {
            b.iter(|| experiments::run(black_box(id)).unwrap())
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_all_figures
}
criterion_main!(benches);
