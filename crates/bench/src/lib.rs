//! Figure-regeneration harness and Criterion benchmarks for the
//! `cnt-beol` platform.
//!
//! * `cargo run -p cnt-bench --bin repro -- all` regenerates every paper
//!   artefact (see `cnt_interconnect::experiments::registry`); `--set`
//!   overrides typed parameters, `--format json|csv` emits
//!   machine-readable reports;
//! * `cargo bench -p cnt-bench` times the computational kernels and the
//!   DESIGN.md §6 ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cnt_interconnect::experiments;
