//! Figure-regeneration harness, the `repro bench` performance subsystem,
//! and Criterion benchmarks for the `cnt-beol` platform.
//!
//! * `cargo run -p cnt-bench --bin repro -- all` regenerates every paper
//!   artefact (see `cnt_interconnect::experiments::registry`); `--set`
//!   overrides typed parameters, `--format json|csv` emits
//!   machine-readable reports;
//! * `repro bench [--quick] [--filter SUBSTR] [--format json|text]
//!   [--threads N] [--iters N]` runs the [`bench`] kernel registry
//!   (warmup + timed iterations, min/median/p90 per kernel, inner solver
//!   iteration counts where applicable) and writes the versioned JSON
//!   trajectory point `BENCH_<unix-seconds>.json`;
//! * `repro bench diff A.json B.json [--fail-above PCT]` compares two
//!   trajectory points per kernel and, with a threshold, gates CI on
//!   median regressions (see [`diff`]);
//! * `cargo bench -p cnt-bench` times the computational kernels and the
//!   DESIGN.md §6 ablations through Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod diff;

pub use cnt_interconnect::experiments;
