//! Regenerates the paper's figures and tables.
//!
//! ```text
//! repro --list            list runnable experiment ids (primary + aliases;
//!                         sweep ids are listed by --help)
//! repro all               run every experiment
//! repro fig12 fig08a      run selected experiments
//! repro sweep fig12 --trials 1000 --threads 8 --seed 42
//!                         run the Monte-Carlo sweep variant of an id on
//!                         the cnt-sweep engine (output is byte-identical
//!                         for any --threads value)
//! ```
//!
//! Sweep flags:
//!
//! * `--trials N`    Monte-Carlo trials per cell (default 200)
//! * `--threads N`   worker threads, 0 = all cores (default 0)
//! * `--seed S`      root seed (default 42)
//! * `--cache-dir D` on-disk result cache (default `.sweep-cache`)
//! * `--no-cache`    disable the on-disk cache
//!
//! Sweep execution metadata (thread count, cache hit, wall time) goes to
//! stderr so stdout stays a pure function of `(id, trials, seed)`.

use cnt_interconnect::experiments;
use cnt_interconnect::experiments::SweepOpts;
use std::process::ExitCode;

fn usage() {
    eprintln!("usage: repro [--list] [all | <id>...]");
    eprintln!("       repro sweep <id> [--trials N] [--threads N] [--seed S]");
    eprintln!("                        [--cache-dir DIR] [--no-cache]");
    eprintln!(
        "ids: {}",
        experiments::catalog().collect::<Vec<_>>().join(" ")
    );
    eprintln!("sweep ids: {}", experiments::SWEEP_IDS.join(" "));
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiments::catalog() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if args[0] == "sweep" {
        return run_sweep_command(&args[1..]);
    }

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::catalog().collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let mut failures = 0usize;
    for id in ids {
        match experiments::run(id) {
            Ok(report) => {
                println!("{report}");
            }
            Err(e) => {
                eprintln!("experiment '{id}' failed: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Parses and runs `repro sweep <id> [flags]`.
fn run_sweep_command(args: &[String]) -> ExitCode {
    let mut id: Option<&str> = None;
    let mut opts = SweepOpts {
        cache_dir: Some(".sweep-cache".into()),
        ..SweepOpts::default()
    };

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let parse_value = |name: &str, value: Option<&String>| -> Result<u64, String> {
            value
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("bad {name} value: {e}"))
        };
        match arg.as_str() {
            "--trials" => match parse_value("--trials", it.next()) {
                Ok(v) if v > 0 => opts.trials = v as usize,
                Ok(_) => return fail("--trials must be positive"),
                Err(e) => return fail(&e),
            },
            "--threads" => match parse_value("--threads", it.next()) {
                Ok(v) => opts.threads = v as usize,
                Err(e) => return fail(&e),
            },
            "--seed" => match parse_value("--seed", it.next()) {
                Ok(v) => opts.seed = v,
                Err(e) => return fail(&e),
            },
            "--cache-dir" => match it.next() {
                Some(dir) => opts.cache_dir = Some(dir.into()),
                None => return fail("--cache-dir needs a value"),
            },
            "--no-cache" => opts.cache_dir = None,
            other if other.starts_with('-') => {
                return fail(&format!("unknown sweep flag '{other}'"));
            }
            other => {
                if id.replace(other).is_some() {
                    return fail("sweep takes exactly one id");
                }
            }
        }
    }

    let Some(id) = id else {
        return fail("sweep needs an experiment id");
    };
    if !experiments::SWEEP_IDS.contains(&id) {
        return fail(&format!(
            "unknown sweep id '{id}' (valid: {})",
            experiments::SWEEP_IDS.join(" ")
        ));
    }
    let started = std::time::Instant::now();
    match experiments::run_sweep(id, &opts) {
        Ok(run) => {
            println!("{}", run.report);
            eprintln!(
                "sweep '{id}': {} jobs on {} thread(s) in {:.3} s ({})",
                run.jobs,
                run.threads,
                started.elapsed().as_secs_f64(),
                if run.cache_hit {
                    "cache hit"
                } else {
                    "computed"
                }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sweep '{id}' failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("repro: {message}");
    usage();
    ExitCode::FAILURE
}
