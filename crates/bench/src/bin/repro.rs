//! Regenerates the paper's figures and tables.
//!
//! ```text
//! repro --list          list experiment ids
//! repro all             run every experiment
//! repro fig12 fig08a    run selected experiments
//! ```

use cnt_interconnect::experiments;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--list] [all | <id>...]");
        eprintln!("ids: {}", experiments::ALL_IDS.join(" "));
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL_IDS {
            println!("{id}");
        }
        println!("stability");
        return ExitCode::SUCCESS;
    }

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        let mut v: Vec<&str> = experiments::ALL_IDS.to_vec();
        v.push("stability");
        v
    } else {
        args.iter().map(String::as_str).collect()
    };

    let mut failures = 0usize;
    for id in ids {
        match experiments::run(id) {
            Ok(report) => {
                println!("{report}");
            }
            Err(e) => {
                eprintln!("experiment '{id}' failed: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
