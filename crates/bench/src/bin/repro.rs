//! Regenerates the paper's figures and tables from the experiment
//! registry.
//!
//! ```text
//! repro --list            one line per experiment: id, title, [sweep]
//! repro info fig12        title + declared parameters of one experiment
//! repro all               run every experiment at the paper operating point
//! repro fig12 fig08a      run selected experiments
//! repro fig12 --set length_um=200 --set nc=6
//!                         run with typed parameter overrides, validated
//!                         against the experiment's declared ParamSpec
//! repro table1 --format json
//!                         machine-readable output (one JSON object per
//!                         line; `csv` emits the data table)
//! repro table1 --preset projected
//!                         run at a named operating point the experiment
//!                         declares (expanded before any --set overrides)
//! repro sweep fig12 --trials 1000 --threads 8 --seed 42
//!                         run the Monte-Carlo sweep variant of an id on
//!                         the cnt-sweep engine (output is byte-identical
//!                         for any --threads value)
//! repro serve --addr 127.0.0.1:8080 --workers 4
//!                         expose the registry as a JSON API (cnt-serve):
//!                         run bodies are byte-identical to
//!                         `repro <id> --format json`; SIGTERM/ctrl-c
//!                         drains in-flight work and exits. With
//!                         --fleet A1,A2 --self-index K the instance
//!                         joins a consistent-hash fleet (cnt-fleet);
//!                         --jobs/--job-ttl size the async job table
//!                         behind POST /v1/sweeps/{id}; --data-dir DIR
//!                         makes jobs crash-durable (append-only journal
//!                         + chunk cache + spilled result bodies, all
//!                         replayed on restart); --chaos SPEC
//!                         (e.g. "seed=7,refuse=0.2,latency=0.1")
//!                         injects deterministic faults on outbound
//!                         peer hops for fault-tolerance testing
//! repro cache gc --max-bytes 10000000
//!                         shrink the on-disk sweep cache by evicting the
//!                         oldest-modified entries first (flat and
//!                         sharded layouts alike)
//! repro bench --quick --iters 8 --threads 4
//!                         time the kernel registry and write a
//!                         BENCH_<ts>.json trajectory point; --iters and
//!                         --threads override the per-kernel defaults
//! repro bench diff BENCH_pr4.json BENCH_pr5.json --fail-above 25
//!                         compare two trajectory points per kernel and
//!                         fail on >25% median regression (non-pool
//!                         kernels) or removed kernels
//! repro check-json        validate a JSON stream on stdin (used by CI to
//!                         guard `repro all --format json`)
//! repro check-metrics     validate a Prometheus text exposition on stdin
//!                         (used by CI to guard `GET /v1/metrics`)
//! repro profile fig12 --set nc=6
//!                         run one experiment under a cnt-obs trace and
//!                         print the span timing tree (where the wall
//!                         time went: solves, V-cycles, sweep jobs)
//! ```
//!
//! Common flags:
//!
//! * `--format F`    output format: `text` (default), `json`, `csv`
//! * `--preset P`    named operating point from the experiment's spec
//! * `--set K=V`     typed parameter override; unknown keys and
//!   out-of-range values are rejected before the experiment runs
//!
//! Sweep flags:
//!
//! * `--trials N`    Monte-Carlo trials per cell (default 200)
//! * `--threads N`   worker threads, 0 = all cores (default 0)
//! * `--seed S`      root seed (default 42, or the artefact's own seed)
//! * `--cache-dir D` on-disk result cache (default `.sweep-cache`)
//! * `--no-cache`    disable the on-disk cache
//!
//! Sweep execution metadata (thread count, cache hit, wall time) goes to
//! stderr so stdout stays a pure function of `(id, params, seed)`.

use cnt_interconnect::experiments::{self, registry, OutputFormat, RunContext};
use std::io::Read;
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage: repro [--list] [--format text|json|csv] [--preset NAME] [--set KEY=VALUE]... [all | <id>...]"
    );
    eprintln!("       repro info <id>");
    eprintln!("       repro sweep <id> [--trials N] [--threads N] [--seed S] [--set KEY=VALUE]...");
    eprintln!("                        [--cache-dir DIR] [--no-cache] [--format text|json|csv]");
    eprintln!("       repro serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]");
    eprintln!(
        "                   [--fleet A1,A2,... --self-index K [--fleet-mode proxy|redirect]]"
    );
    eprintln!(
        "                   [--chaos seed=S,refuse=P,hang=P,truncate=P,latency=P,latency_ms=N]"
    );
    eprintln!("                   [--jobs N] [--job-ttl SECS] [--data-dir DIR]");
    eprintln!("                   [--access-log text|json] [--history-interval SECS]");
    eprintln!("       repro cache gc [--max-bytes N] [--max-age SECS] [--cache-dir DIR]");
    eprintln!("       repro bench [--quick] [--filter SUBSTR] [--format text|json]");
    eprintln!("                   [--threads N] [--iters N] [--out PATH | --no-out]");
    eprintln!("       repro bench diff <A.json> <B.json> [--format text|json] [--fail-above PCT]");
    eprintln!("       repro check-json          (validates a JSON stream on stdin)");
    eprintln!("       repro check-metrics       (validates a Prometheus exposition on stdin)");
    eprintln!(
        "       repro profile <id> [--preset NAME] [--set KEY=VALUE]... [--format text|json]"
    );
    eprintln!("                    [--flame]    (folded stacks for flamegraph tooling)");
    eprintln!("       repro slo --addr HOST:PORT [--format text|json]");
    eprintln!(
        "ids: {}",
        experiments::catalog().collect::<Vec<_>>().join(" ")
    );
    eprintln!(
        "sweep ids: {}",
        experiments::sweep_catalog().collect::<Vec<_>>().join(" ")
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list") {
        list();
        return ExitCode::SUCCESS;
    }
    match args[0].as_str() {
        "sweep" => run_sweep_command(&args[1..]),
        "info" => run_info_command(&args[1..]),
        "serve" => run_serve_command(&args[1..]),
        "cache" => run_cache_command(&args[1..]),
        "bench" => run_bench_command(&args[1..]),
        "check-json" => run_check_json_command(),
        "check-metrics" => run_check_metrics_command(),
        "profile" => run_profile_command(&args[1..]),
        "slo" => run_slo_command(&args[1..]),
        _ => run_experiments_command(&args),
    }
}

/// Parses and runs `repro bench [--quick] [--filter SUBSTR]
/// [--format text|json] [--threads N] [--iters N] [--out PATH | --no-out]`
/// and the `repro bench diff` subcommand.
///
/// Results go to stdout in the chosen format; the versioned JSON document
/// is also written to `BENCH_<unix-seconds>.json` (override the path with
/// `--out`, suppress the file with `--no-out`) so every run appends a
/// point to the repository's performance trajectory. `--threads` and
/// `--iters` are validated like experiment parameters: out-of-range
/// values are rejected with the canonical override error before any
/// kernel runs.
fn run_bench_command(args: &[String]) -> ExitCode {
    if let Some(("diff", rest)) = args.split_first().map(|(a, r)| (a.as_str(), r)) {
        return run_bench_diff_command(rest);
    }
    let mut opts = cnt_bench::bench::BenchOpts::default();
    let mut format = OutputFormat::Text;
    let mut out_path: Option<String> = None;
    let mut write_file = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let parse_count = |name: &str, value: Option<&String>| -> Result<usize, String> {
            let v = value.ok_or_else(|| format!("{name} needs a value"))?;
            v.parse::<usize>()
                .map_err(|e| format!("{name} expects a count, got '{v}' ({e})"))
        };
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--filter" => match it.next() {
                Some(v) => opts.filter = Some(v.clone()),
                None => return fail("--filter needs a value"),
            },
            "--threads" => match parse_count("--threads", it.next()) {
                Ok(n) => opts.threads = Some(n),
                Err(e) => return fail(&e),
            },
            "--iters" => match parse_count("--iters", it.next()) {
                Ok(n) => opts.iters = Some(n),
                Err(e) => return fail(&e),
            },
            "--format" => match it.next().map(|v| v.parse::<OutputFormat>()) {
                Some(Ok(OutputFormat::Csv)) => {
                    return fail("bench emits text or json (csv is not a bench format)")
                }
                Some(Ok(f)) => format = f,
                Some(Err(e)) => return fail(&e.to_string()),
                None => return fail("--format needs a value"),
            },
            "--out" => match it.next() {
                Some(v) => out_path = Some(v.clone()),
                None => return fail("--out needs a value"),
            },
            "--no-out" => write_file = false,
            other => return fail(&format!("unknown bench flag '{other}'")),
        }
    }

    if opts.threads.is_some() && opts.filter.is_none() {
        eprintln!(
            "bench: --threads overrides every sweep.pool_* kernel to the same width; \
             combine it with --filter to probe one kernel (the report is stamped either way)"
        );
    }
    let report = match cnt_bench::bench::run(&opts) {
        Ok(report) => report,
        Err(e) => return fail(&e.to_string()),
    };
    if report.kernels.is_empty() {
        return fail(&format!(
            "no kernel matches the filter (known: {})",
            cnt_bench::bench::kernel_ids().join(" ")
        ));
    }
    match format {
        OutputFormat::Text => print!("{}", report.render_text()),
        OutputFormat::Json => println!("{}", report.to_json()),
        OutputFormat::Csv => unreachable!("rejected above"),
    }
    if write_file {
        let path = out_path.unwrap_or_else(|| format!("BENCH_{}.json", report.unix_time_s));
        match std::fs::write(&path, format!("{}\n", report.to_json())) {
            Ok(()) => eprintln!(
                "bench: {} kernel(s) -> {path} ({} mode)",
                report.kernels.len(),
                if report.quick { "quick" } else { "full" }
            ),
            Err(e) => return fail(&format!("writing {path}: {e}")),
        }
    }
    ExitCode::SUCCESS
}

/// Parses and runs
/// `repro bench diff <A.json> <B.json> [--format text|json] [--fail-above PCT]`.
///
/// Compares per-kernel medians of two trajectory points (baseline `A`,
/// new `B`), flags added/removed kernels, and — when `--fail-above` is
/// given — exits non-zero if any non-pool kernel's median regressed by
/// more than `PCT` percent or any kernel disappeared.
fn run_bench_diff_command(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut format = OutputFormat::Text;
    let mut fail_above: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(|v| v.parse::<OutputFormat>()) {
                Some(Ok(OutputFormat::Csv)) => {
                    return fail("bench diff emits text or json (csv is not a diff format)")
                }
                Some(Ok(f)) => format = f,
                Some(Err(e)) => return fail(&e.to_string()),
                None => return fail("--format needs a value"),
            },
            "--fail-above" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(pct)) if pct.is_finite() && pct >= 0.0 => fail_above = Some(pct),
                Some(_) => return fail("--fail-above expects a non-negative percentage"),
                None => return fail("--fail-above needs a value"),
            },
            other if other.starts_with('-') => {
                return fail(&format!("unknown bench diff flag '{other}'"))
            }
            _ => paths.push(arg),
        }
    }
    let [path_a, path_b] = paths[..] else {
        return fail("bench diff takes exactly two BENCH_*.json paths");
    };
    let load = |path: &str| -> Result<cnt_bench::diff::BenchPoint, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        cnt_bench::diff::parse_point(&text).map_err(|e| format!("{path}: {e}"))
    };
    let a = match load(path_a) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let b = match load(path_b) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let diff = cnt_bench::diff::BenchDiff::compute(&a, &b);
    match format {
        OutputFormat::Text => print!("{}", diff.render_text(&a, &b)),
        OutputFormat::Json => println!("{}", diff.to_json(&a, &b)),
        OutputFormat::Csv => unreachable!("rejected above"),
    }
    if let Some(pct) = fail_above {
        let failures = diff.gate_failures(pct, &a, &b);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("bench diff: {f}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "bench diff: gate passed ({} shared kernel(s) within {pct}%, {} added)",
            diff.rows.len(),
            diff.added.len()
        );
    }
    ExitCode::SUCCESS
}

/// The registry-driven `--list`: id, title, and a `[sweep]` marker when a
/// Monte-Carlo variant exists.
fn list() {
    let width = registry().iter().map(|e| e.id().len()).max().unwrap_or(0);
    for exp in registry().iter() {
        let marker = if exp.sweep().is_some() {
            " [sweep]"
        } else {
            ""
        };
        println!("{:<width$}  {}{}", exp.id(), exp.title(), marker);
    }
}

/// Parses and runs `repro [flags] [all | <id>...]`.
fn run_experiments_command(args: &[String]) -> ExitCode {
    let parsed = match CommonFlags::parse(args) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let ids: Vec<&str> = if parsed.rest.contains(&"all") {
        experiments::catalog().collect()
    } else if parsed.rest.is_empty() {
        return fail("no experiment id given");
    } else {
        parsed.rest.clone()
    };
    if parsed.format == OutputFormat::Csv && ids.len() > 1 {
        // Concatenated tables with differing headers are not one CSV
        // document; JSON-lines is the multi-report stream.
        return fail("--format csv takes exactly one experiment id (use --format json for a multi-report stream)");
    }

    let mut failures = 0usize;
    for id in ids {
        match run_one(id, &parsed) {
            Ok(rendered) => match parsed.format {
                // Text reports end in a newline already; println keeps the
                // blank separator line the harness has always printed.
                OutputFormat::Text | OutputFormat::Json => println!("{rendered}"),
                OutputFormat::Csv => print!("{rendered}"),
            },
            Err(e) => {
                eprintln!("experiment '{id}' failed: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_one(id: &str, flags: &CommonFlags) -> Result<String, cnt_interconnect::Error> {
    experiments::run_rendered(id, flags.preset.as_deref(), &flags.sets, flags.format)
}

/// Prints one experiment's declared parameter surface.
fn run_info_command(args: &[String]) -> ExitCode {
    let [id] = args else {
        return fail("info takes exactly one experiment id");
    };
    let exp = match registry().get(id) {
        Ok(exp) => exp,
        Err(e) => return fail(&e.to_string()),
    };
    let marker = if exp.sweep().is_some() {
        "  [sweep]"
    } else {
        ""
    };
    println!("{} — {}{}", exp.id(), exp.title(), marker);
    println!("parameters (override with --set KEY=VALUE):");
    for def in exp.params().defs() {
        let range = match def.default {
            experiments::ParamValue::Text(_) => String::new(),
            _ => format!("  range [{}, {}]", def.min, def.max),
        };
        println!(
            "  {:<12} {:<8} default {}{}  — {}",
            def.key,
            def.default.kind(),
            def.default,
            range,
            def.doc
        );
    }
    if !exp.params().presets().is_empty() {
        println!("presets (apply with --preset NAME):");
        for preset in exp.params().presets() {
            let sets: Vec<String> = preset
                .sets
                .iter()
                .map(|(key, value)| format!("{key} = {value}"))
                .collect();
            println!(
                "  {:<12} {}  — {}",
                preset.name,
                sets.join(", "),
                preset.doc
            );
        }
    }
    ExitCode::SUCCESS
}

/// Validates a JSON stream on stdin (the `repro all --format json` shape).
fn run_check_json_command() -> ExitCode {
    let mut text = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut text) {
        return fail(&format!("reading stdin: {e}"));
    }
    match experiments::format::check_json_stream(&text) {
        Ok(count) => {
            eprintln!("check-json: {count} valid JSON value(s)");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}

/// Validates a Prometheus text exposition on stdin (the `GET /v1/metrics`
/// shape): `# HELP`/`# TYPE` coverage, duplicate series, histogram bucket
/// consistency. CI pipes the scraped endpoint through this the same way
/// JSON bodies go through `check-json`.
fn run_check_metrics_command() -> ExitCode {
    let mut text = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut text) {
        return fail(&format!("reading stdin: {e}"));
    }
    match cnt_obs::promcheck::validate(&text) {
        Ok(summary) => {
            eprintln!(
                "check-metrics: {} family(ies), {} sample(s), exposition valid",
                summary.families, summary.samples
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

/// Parses and runs
/// `repro profile <id> [--preset NAME] [--set KEY=VALUE]... [--format text|json] [--flame]`:
/// one experiment run under a [`cnt_obs::Trace`], reported as the span
/// timing tree instead of the experiment's own output. The run itself is
/// the production code path (same registry, same validation), so the tree
/// shows where `repro <id>` actually spends its wall time — solver calls,
/// V-cycle phases, serially-executed sweep jobs. With `--flame` the tree
/// prints as folded stacks (`a;b;c <self-µs>` lines), the input format of
/// flamegraph tooling.
fn run_profile_command(args: &[String]) -> ExitCode {
    let flame = args.iter().any(|a| a == "--flame");
    let args: Vec<String> = args.iter().filter(|a| *a != "--flame").cloned().collect();
    let parsed = match CommonFlags::parse(&args) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let [id] = parsed.rest[..] else {
        return fail("profile takes exactly one experiment id");
    };
    if parsed.format == OutputFormat::Csv {
        return fail("profile emits text or json (csv is not a profile format)");
    }
    if flame && parsed.format != OutputFormat::Text {
        return fail("--flame prints folded stacks; it does not combine with --format");
    }
    cnt_obs::Trace::begin();
    let started = std::time::Instant::now();
    let result = {
        let _root = cnt_obs::span!("repro.run");
        experiments::run_rendered(
            id,
            parsed.preset.as_deref(),
            &parsed.sets,
            OutputFormat::Json,
        )
    };
    let wall_s = started.elapsed().as_secs_f64();
    let roots = cnt_obs::Trace::end();
    if let Err(e) = result {
        return fail(&format!("experiment '{id}' failed: {e}"));
    }
    if flame {
        // Folded stacks go to stdout unadorned so the output pipes
        // straight into flamegraph.pl / inferno without cleanup.
        print!("{}", cnt_obs::fold_stacks(&roots));
        return ExitCode::SUCCESS;
    }
    match parsed.format {
        OutputFormat::Text => {
            println!("profile '{id}': wall {}", cnt_obs::span::fmt_secs(wall_s));
            print!("{}", cnt_obs::span::render_tree_text(&roots));
        }
        OutputFormat::Json => {
            let mut out = String::with_capacity(256);
            out.push_str("{\"schema\":1,\"kind\":\"profile\",\"id\":");
            experiments::format::json_string(id, &mut out);
            out.push_str(&format!(",\"wall_s\":{wall_s},\"spans\":["));
            for (i, root) in roots.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                root.push_json(&mut out);
            }
            out.push_str("]}");
            println!("{out}");
        }
        OutputFormat::Csv => unreachable!("rejected above"),
    }
    ExitCode::SUCCESS
}

/// Parses and runs `repro slo --addr HOST:PORT [--format text|json]`:
/// fetches `GET /v1/slo` from a running `repro serve` instance and
/// reports each objective's state and burn rates. Exit code mirrors the
/// worst state so the command slots into CI and cron checks directly:
/// success while every SLO is `ok` or `warn`, failure once any pages.
fn run_slo_command(args: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut format = OutputFormat::Text;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => return fail("--addr needs a value"),
            },
            "--format" => match it.next().map(|v| v.parse::<OutputFormat>()) {
                Some(Ok(OutputFormat::Csv)) => {
                    return fail("slo emits text or json (csv is not an slo format)")
                }
                Some(Ok(f)) => format = f,
                Some(Err(e)) => return fail(&e.to_string()),
                None => return fail("--format needs a value"),
            },
            other => return fail(&format!("unknown slo flag '{other}'")),
        }
    }
    let Some(addr) = addr else {
        return fail("slo needs --addr HOST:PORT (a running `repro serve` instance)");
    };
    let client = cnt_fleet::PeerClient::new(
        std::time::Duration::from_secs(2),
        std::time::Duration::from_secs(5),
    );
    let response = match client.get(&addr, "/v1/slo") {
        Ok(r) => r,
        Err(e) => return fail(&format!("slo: GET {addr}/v1/slo: {e}")),
    };
    if response.status != 200 {
        return fail(&format!(
            "slo: GET {addr}/v1/slo returned {}",
            response.status
        ));
    }
    let doc = match cnt_serve::json::parse(&response.body) {
        Ok(v) => v,
        Err(e) => return fail(&format!("slo: response is not valid JSON: {e}")),
    };
    use cnt_serve::json::JsonValue;
    let field = |obj: &JsonValue, key: &str| -> Option<JsonValue> {
        match obj {
            JsonValue::Object(pairs) => {
                pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
            }
            _ => None,
        }
    };
    let as_str = |v: Option<JsonValue>| -> Option<String> {
        match v {
            Some(JsonValue::String(s)) => Some(s),
            _ => None,
        }
    };
    let Some(worst) = as_str(field(&doc, "state")) else {
        return fail("slo: response has no top-level \"state\"");
    };
    match format {
        OutputFormat::Json => println!("{}", response.body.trim_end()),
        OutputFormat::Text => {
            if let Some(JsonValue::Array(slos)) = field(&doc, "slos") {
                for slo in &slos {
                    let name = as_str(field(slo, "name")).unwrap_or_else(|| "?".to_string());
                    let state = as_str(field(slo, "state")).unwrap_or_else(|| "?".to_string());
                    let burn = |key: &str| match field(slo, key) {
                        Some(JsonValue::Number(n)) => n,
                        _ => "?".to_string(),
                    };
                    println!(
                        "{name}: {state} (burn fast {}, slow {})",
                        burn("burn_fast"),
                        burn("burn_slow")
                    );
                }
            }
            println!("slo: overall {worst}");
        }
        OutputFormat::Csv => unreachable!("rejected above"),
    }
    if worst == "page" {
        eprintln!("repro slo: at least one objective is paging");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Parses and runs `repro sweep <id> [flags]`.
fn run_sweep_command(args: &[String]) -> ExitCode {
    let mut id: Option<&str> = None;
    let mut format = OutputFormat::Text;
    // Overrides accumulate in command-line order so the last flag wins,
    // whether it was spelled `--no-cache`, `--cache-dir`, `--seed`, or
    // `--set key=value`. The CLI's historical defaults come first: cache
    // under .sweep-cache, root seed 42 — a sweep is its own artefact, so
    // an experiment's re-declared plain-run seed does not leak into it
    // (keeps `repro sweep fig05` reproducing its pre-registry output).
    let mut overrides: Vec<(String, String)> = vec![
        ("cache_dir".into(), ".sweep-cache".into()),
        ("seed".into(), "42".into()),
    ];

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let take = |name: &str, value: Option<&String>| -> Result<String, String> {
            value
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--trials" | "--threads" | "--seed" => {
                let key = arg.trim_start_matches("--").to_string();
                match take(arg, it.next()) {
                    Ok(v) => overrides.push((key, v)),
                    Err(e) => return fail(&e),
                }
            }
            "--cache-dir" => match take("--cache-dir", it.next()) {
                Ok(dir) => overrides.push(("cache_dir".into(), dir)),
                Err(e) => return fail(&e),
            },
            "--no-cache" => overrides.push(("cache_dir".into(), String::new())),
            "--format" => match take("--format", it.next()).map(|v| v.parse()) {
                Ok(Ok(f)) => format = f,
                Ok(Err(e)) => return fail(&e.to_string()),
                Err(e) => return fail(&e),
            },
            "--set" => match take("--set", it.next()).map(parse_set) {
                Ok(Ok(pair)) => overrides.push(pair),
                Ok(Err(e)) => return fail(&e),
                Err(e) => return fail(&e),
            },
            other if other.starts_with('-') => {
                return fail(&format!("unknown sweep flag '{other}'"));
            }
            other => {
                if id.replace(other).is_some() {
                    return fail("sweep takes exactly one id");
                }
            }
        }
    }

    let Some(id) = id else {
        return fail("sweep needs an experiment id");
    };
    let (exp, sweep) = match experiments::sweep_variant(id) {
        Ok(pair) => pair,
        Err(e) => return fail(&e.to_string()),
    };
    let mut ctx = RunContext::defaults(exp.params());
    for (key, raw) in &overrides {
        if let Err(e) = ctx.set(exp.params(), key, raw) {
            return fail(&e.to_string());
        }
    }

    let started = std::time::Instant::now();
    match sweep.run_sweep(&ctx) {
        Ok(run) => {
            match format {
                OutputFormat::Text => println!("{}", run.report),
                OutputFormat::Json => println!("{}", run.report.to_json()),
                OutputFormat::Csv => print!("{}", run.report.to_csv()),
            }
            eprintln!(
                "sweep '{id}': {} jobs on {} thread(s) in {:.3} s ({})",
                run.jobs,
                run.threads,
                started.elapsed().as_secs_f64(),
                if run.cache_hit {
                    "cache hit"
                } else {
                    "computed"
                }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sweep '{id}' failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses and runs `repro serve [flags]`: the cnt-serve front end.
fn run_serve_command(args: &[String]) -> ExitCode {
    let mut config = cnt_serve::Config {
        watch_signals: true,
        ..cnt_serve::Config::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let take = |name: &str, value: Option<&String>| -> Result<String, String> {
            value
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parse_count = |name: &str, raw: Result<String, String>| -> Result<usize, String> {
            raw.and_then(|v| {
                v.parse::<usize>()
                    .map_err(|e| format!("{name} expects a count, got '{v}' ({e})"))
            })
        };
        match arg.as_str() {
            "--addr" => match take("--addr", it.next()) {
                Ok(addr) => config.addr = addr,
                Err(e) => return fail(&e),
            },
            "--workers" => match parse_count("--workers", take("--workers", it.next())) {
                Ok(n) => config.workers = n,
                Err(e) => return fail(&e),
            },
            "--queue" => match parse_count("--queue", take("--queue", it.next())) {
                Ok(n) => config.queue_capacity = n,
                Err(e) => return fail(&e),
            },
            "--cache" => match parse_count("--cache", take("--cache", it.next())) {
                Ok(n) => config.cache_capacity = n,
                Err(e) => return fail(&e),
            },
            "--access-log" => match it.next().map(String::as_str) {
                Some("text") => config.access_log = Some(cnt_serve::AccessLogFormat::Text),
                Some("json") => config.access_log = Some(cnt_serve::AccessLogFormat::Json),
                Some(other) => {
                    return fail(&format!("--access-log expects text or json, got '{other}'"))
                }
                None => return fail("--access-log needs a value"),
            },
            "--fleet" => match take("--fleet", it.next()) {
                Ok(peers) => {
                    let peers: Vec<String> =
                        peers.split(',').map(|p| p.trim().to_string()).collect();
                    let self_index = config.fleet.as_ref().map_or(0, |f| f.self_index);
                    let mode = config
                        .fleet
                        .as_ref()
                        .map_or(cnt_serve::RouteMode::Proxy, |f| f.mode);
                    let mut fleet = cnt_serve::FleetConfig::new(peers, self_index);
                    fleet.mode = mode;
                    config.fleet = Some(fleet);
                }
                Err(e) => return fail(&e),
            },
            "--self-index" => match parse_count("--self-index", take("--self-index", it.next())) {
                Ok(k) => match config.fleet.as_mut() {
                    Some(fleet) => fleet.self_index = k,
                    None => return fail("--self-index needs --fleet first"),
                },
                Err(e) => return fail(&e),
            },
            "--fleet-mode" => match it.next().map(String::as_str) {
                Some(raw @ ("proxy" | "redirect")) => {
                    let mode = if raw == "proxy" {
                        cnt_serve::RouteMode::Proxy
                    } else {
                        cnt_serve::RouteMode::Redirect
                    };
                    match config.fleet.as_mut() {
                        Some(fleet) => fleet.mode = mode,
                        None => return fail("--fleet-mode needs --fleet first"),
                    }
                }
                Some(other) => {
                    return fail(&format!(
                        "--fleet-mode expects proxy or redirect, got '{other}'"
                    ))
                }
                None => return fail("--fleet-mode needs a value"),
            },
            "--chaos" => match take("--chaos", it.next()) {
                Ok(spec) => match cnt_serve::fleet::ChaosConfig::parse(&spec) {
                    Ok(chaos) => match config.fleet.as_mut() {
                        Some(fleet) => fleet.chaos = Some(chaos),
                        None => return fail("--chaos needs --fleet first"),
                    },
                    Err(e) => return fail(&format!("--chaos: {e}")),
                },
                Err(e) => return fail(&e),
            },
            "--jobs" => match parse_count("--jobs", take("--jobs", it.next())) {
                Ok(n) => config.jobs_capacity = n,
                Err(e) => return fail(&e),
            },
            "--job-ttl" => match parse_count("--job-ttl", take("--job-ttl", it.next())) {
                Ok(secs) => config.job_ttl = std::time::Duration::from_secs(secs as u64),
                Err(e) => return fail(&e),
            },
            "--data-dir" => match take("--data-dir", it.next()) {
                Ok(dir) => config.data_dir = Some(std::path::PathBuf::from(dir)),
                Err(e) => return fail(&e),
            },
            "--history-interval" => match take("--history-interval", it.next()) {
                Ok(raw) => match raw.parse::<f64>() {
                    Ok(secs) if secs > 0.0 && secs.is_finite() => {
                        config.history_interval = std::time::Duration::from_secs_f64(secs);
                    }
                    _ => {
                        return fail(&format!(
                            "--history-interval expects seconds > 0, got '{raw}'"
                        ))
                    }
                },
                Err(e) => return fail(&e),
            },
            other => return fail(&format!("unknown serve flag '{other}'")),
        }
    }
    cnt_serve::signal::install();
    let server = match cnt_serve::Server::bind(config.clone()) {
        Ok(server) => server,
        Err(e) => return fail(&format!("serve: {e}")),
    };
    let fleet_note = config.fleet.as_ref().map_or(String::new(), |fleet| {
        let chaos_note = fleet
            .chaos
            .filter(|c| c.is_active())
            .map_or(String::new(), |c| format!(", CHAOS {}", c.render()));
        format!(
            ", fleet {}/{} ({}){chaos_note}",
            fleet.self_index,
            fleet.peers.len(),
            match fleet.mode {
                cnt_serve::RouteMode::Proxy => "proxy",
                cnt_serve::RouteMode::Redirect => "redirect",
            }
        )
    });
    eprintln!(
        "repro serve: http://{} — {} workers, queue {}, cache {} bodies, {} jobs{} (SIGTERM/ctrl-c drains and exits)",
        server.local_addr(),
        server.workers(),
        config.queue_capacity,
        config.cache_capacity,
        config.jobs_capacity,
        fleet_note
    );
    match server.serve() {
        Ok(()) => {
            eprintln!("repro serve: drained and shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("serve: {e}")),
    }
}

/// Parses and runs
/// `repro cache gc [--max-bytes N] [--max-age SECS] [--cache-dir DIR]`.
/// At least one cap is required; with both, the age pass runs first (drop
/// stale entries), then the size cap trims what is left.
fn run_cache_command(args: &[String]) -> ExitCode {
    let Some(("gc", rest)) = args.split_first().map(|(a, r)| (a.as_str(), r)) else {
        return fail("cache supports one action: gc");
    };
    let mut max_bytes: Option<u64> = None;
    let mut max_age: Option<u64> = None;
    let mut dir = ".sweep-cache".to_string();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-bytes" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => max_bytes = Some(n),
                Some(Err(e)) => return fail(&format!("--max-bytes expects bytes ({e})")),
                None => return fail("--max-bytes needs a value"),
            },
            "--max-age" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => max_age = Some(n),
                Some(Err(e)) => return fail(&format!("--max-age expects seconds ({e})")),
                None => return fail("--max-age needs a value"),
            },
            "--cache-dir" => match it.next() {
                Some(v) => dir = v.clone(),
                None => return fail("--cache-dir needs a value"),
            },
            other => return fail(&format!("unknown cache gc flag '{other}'")),
        }
    }
    if max_bytes.is_none() && max_age.is_none() {
        return fail("cache gc requires --max-bytes N and/or --max-age SECS");
    }
    let path = std::path::Path::new(&dir);
    if let Some(secs) = max_age {
        match cnt_sweep::cache::gc_by_age(path, std::time::Duration::from_secs(secs)) {
            Ok(stats) => eprintln!(
                "cache gc '{dir}': {} entries scanned, {} older than {secs} s evicted, {} -> {} bytes",
                stats.scanned, stats.evicted, stats.bytes_before, stats.bytes_after
            ),
            Err(e) => return fail(&format!("cache gc: {e}")),
        }
    }
    if let Some(cap) = max_bytes {
        match cnt_sweep::cache::gc(path, cap) {
            Ok(stats) => eprintln!(
                "cache gc '{dir}': {} entries scanned, {} evicted, {} -> {} bytes (cap {cap})",
                stats.scanned, stats.evicted, stats.bytes_before, stats.bytes_after
            ),
            Err(e) => return fail(&format!("cache gc: {e}")),
        }
    }
    ExitCode::SUCCESS
}

/// Flags shared by the plain experiment path.
struct CommonFlags<'a> {
    format: OutputFormat,
    preset: Option<String>,
    sets: Vec<(String, String)>,
    rest: Vec<&'a str>,
}

impl<'a> CommonFlags<'a> {
    fn parse(args: &'a [String]) -> Result<Self, String> {
        let mut format = OutputFormat::Text;
        let mut preset = None;
        let mut sets = Vec::new();
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--format" => {
                    let value = it.next().ok_or("--format needs a value")?;
                    format = value.parse().map_err(|e| format!("{e}"))?;
                }
                "--preset" => {
                    let value = it.next().ok_or("--preset needs a value")?;
                    preset = Some(value.clone());
                }
                "--set" => {
                    let value = it.next().ok_or("--set needs a value")?;
                    sets.push(parse_set(value.clone())?);
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown flag '{other}'"));
                }
                other => rest.push(other),
            }
        }
        Ok(Self {
            format,
            preset,
            sets,
            rest,
        })
    }
}

/// Splits a `KEY=VALUE` override.
fn parse_set(raw: String) -> Result<(String, String), String> {
    match raw.split_once('=') {
        Some((key, value)) if !key.is_empty() => Ok((key.to_string(), value.to_string())),
        _ => Err(format!("--set expects KEY=VALUE, got '{raw}'")),
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("repro: {message}");
    usage();
    ExitCode::FAILURE
}
