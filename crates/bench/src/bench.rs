//! `repro bench` — the machine-readable performance subsystem.
//!
//! A registry of kernel benchmarks spanning every hot layer of the
//! workspace: NEGF transport, the fields CG solver, the thermal SThM and
//! via-stack kernels, the Fig. 12 delay-ratio grid, `cnt-sweep` pool
//! throughput at 1/2/4/8 threads, and an end-to-end `cnt-serve` request
//! round-trip. Each kernel runs a warmup phase followed by `N` timed
//! iterations and reports min/median/p90/mean wall time.
//!
//! Results render as a text table or as one versioned JSON document
//! (`"schema":2`, `"kind":"bench"` — accepted by `repro check-json`),
//! and are written to `BENCH_<unix-seconds>.json` so every PR appends a
//! point to the repository's performance trajectory. Schema 2 added the
//! optional per-kernel `peak_rss_bytes` column (the process `VmHWM`
//! high-water mark sampled after the kernel ran); `repro bench diff`
//! accepts schema 1 and 2 points alike and never gates on memory.
//!
//! Adding a kernel: push a [`Kernel`] in [`kernels`] whose closure calls
//! [`time_iterations`] around the hot call, feeding results into
//! [`core::hint::black_box`] so the work cannot be optimized away. Keep
//! the workload deterministic (fixed seeds, fixed sizes) so numbers are
//! comparable across runs and machines.

use cnt_atomistic::negf::DisorderedChain;
use cnt_fields::grid::Grid3;
use cnt_fields::solver::{Method, SolveWorkspace, SolverOptions, StencilSystem};
use cnt_interconnect::benchmark::{
    delay_ratio_grid, FIG12_CHANNEL_COUNTS, FIG12_DIAMETERS_NM, FIG12_LENGTHS_UM,
};
use cnt_interconnect::experiments::format::json_string;
use cnt_thermal::fin::SelfHeatingLine;
use cnt_thermal::sthm::SthmInstrument;
use cnt_thermal::via::ViaStack;
use cnt_units::si::{Area, CurrentDensity, Length, Power};
use core::hint::black_box;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::time::{Duration, Instant, SystemTime};

/// Schema version stamped into the JSON document (2 added the optional
/// per-kernel `peak_rss_bytes`; readers of schema 1 points still parse).
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// The process peak resident-set size (`VmHWM` in `/proc/self/status`),
/// bytes. Linux-only: `None` on other platforms or when the file is
/// unreadable, and callers must render its absence, not fail on it.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Renders a byte count for the table (`-` for `None`).
pub(crate) fn fmt_bytes(bytes: Option<u64>) -> String {
    match bytes {
        Some(b) if b >= 1024 * 1024 => format!("{:.1} MB", b as f64 / (1024.0 * 1024.0)),
        Some(b) => format!("{:.1} kB", b as f64 / 1024.0),
        None => "-".to_string(),
    }
}

/// How a bench run is configured.
#[derive(Debug, Clone, Default)]
pub struct BenchOpts {
    /// Smaller workloads and fewer iterations (CI smoke mode).
    pub quick: bool,
    /// Run only kernels whose id contains this substring.
    pub filter: Option<String>,
    /// Per-kernel worker-thread override for kernels that spin an
    /// [`cnt_sweep::Executor`] (the `sweep.pool_*` family). Validated in
    /// [`run`] like an experiment parameter.
    pub threads: Option<usize>,
    /// Per-kernel timed-iteration override (warmup is unchanged).
    /// Validated in [`run`] like an experiment parameter.
    pub iters: Option<usize>,
}

/// Per-kernel view of the run configuration, handed to kernel closures.
#[derive(Debug, Clone, Copy)]
pub struct KernelCfg {
    /// Smaller workloads and fewer iterations.
    pub quick: bool,
    /// Worker-thread override for pool-driven kernels.
    pub threads: Option<usize>,
    /// Timed-iteration override.
    pub iters: Option<usize>,
}

/// What a kernel closure hands back: timing samples plus optional
/// workload statistics.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// One wall-time sample per timed iteration.
    pub samples: Vec<Duration>,
    /// Inner solver iterations per solve, for kernels that wrap an
    /// iterative method — makes the CG-vs-MG-CG asymptotics visible in
    /// the trajectory, not just the wall times.
    pub solver_iterations: Option<u64>,
}

impl KernelRun {
    fn timed(samples: Vec<Duration>) -> Self {
        Self {
            samples,
            solver_iterations: None,
        }
    }
}

/// Timing summary of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Stable kernel id (`"negf.mean_transmission"`, …).
    pub id: &'static str,
    /// One-line description of the workload.
    pub title: &'static str,
    /// Warmup iterations (not timed).
    pub warmup: usize,
    /// Timed iterations.
    pub iterations: usize,
    /// Fastest iteration, seconds.
    pub min_s: f64,
    /// Lower-median iteration, seconds.
    pub median_s: f64,
    /// 90th-percentile (nearest-rank) iteration, seconds.
    pub p90_s: f64,
    /// Mean iteration, seconds.
    pub mean_s: f64,
    /// Inner solver iterations per solve, when the kernel reports them.
    pub solver_iterations: Option<u64>,
    /// Process peak RSS (`VmHWM`) sampled after the kernel ran, bytes.
    /// Monotone across the registry — the kernel that bumps it is the
    /// one that owns the allocation. `None` off Linux.
    pub peak_rss_bytes: Option<u64>,
}

/// One full bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Whether this was a `--quick` run.
    pub quick: bool,
    /// The `--threads` override in effect, if any — stamped into the
    /// JSON so an overridden run can never masquerade as a standard
    /// trajectory point.
    pub threads_override: Option<usize>,
    /// The `--iters` override in effect, if any (also stamped).
    pub iters_override: Option<usize>,
    /// The `--filter` in effect, if any — stamped for the same reason:
    /// a filtered point covers only part of the registry and must not
    /// gate as a standard trajectory point.
    pub filter: Option<String>,
    /// `std::thread::available_parallelism` at run time.
    pub threads_available: usize,
    /// Wall-clock time of the run, seconds since the Unix epoch.
    pub unix_time_s: u64,
    /// Per-kernel summaries, registry order.
    pub kernels: Vec<KernelStats>,
}

impl BenchReport {
    /// The versioned single-line JSON document (no trailing newline) —
    /// the shape `repro bench --format json` prints and CI archives.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.kernels.len() * 160);
        out.push_str(&format!(
            "{{\"schema\":{BENCH_SCHEMA_VERSION},\"kind\":\"bench\",\"quick\":{}",
            self.quick
        ));
        if let Some(t) = self.threads_override {
            out.push_str(&format!(",\"threads_override\":{t}"));
        }
        if let Some(n) = self.iters_override {
            out.push_str(&format!(",\"iters_override\":{n}"));
        }
        if let Some(f) = &self.filter {
            out.push_str(",\"filter\":");
            json_string(f, &mut out);
        }
        out.push_str(&format!(
            ",\"threads_available\":{},\"unix_time_s\":{},\"kernels\":[",
            self.threads_available, self.unix_time_s
        ));
        for (i, k) in self.kernels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            json_string(k.id, &mut out);
            out.push_str(",\"title\":");
            json_string(k.title, &mut out);
            out.push_str(&format!(
                ",\"warmup\":{},\"iterations\":{},\"min_s\":{},\"median_s\":{},\"p90_s\":{},\"mean_s\":{}",
                k.warmup, k.iterations, k.min_s, k.median_s, k.p90_s, k.mean_s
            ));
            if let Some(si) = k.solver_iterations {
                out.push_str(&format!(",\"solver_iterations\":{si}"));
            }
            if let Some(rss) = k.peak_rss_bytes {
                out.push_str(&format!(",\"peak_rss_bytes\":{rss}"));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// The human-readable table.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "bench: {} kernel(s), {} mode, {} core(s) available{}{}\n",
            self.kernels.len(),
            if self.quick { "quick" } else { "full" },
            self.threads_available,
            self.threads_override
                .map(|t| format!(", --threads {t}"))
                .unwrap_or_default(),
            self.iters_override
                .map(|n| format!(", --iters {n}"))
                .unwrap_or_default(),
        );
        let with_solver_col = self.kernels.iter().any(|k| k.solver_iterations.is_some());
        let with_rss_col = self.kernels.iter().any(|k| k.peak_rss_bytes.is_some());
        out.push_str(&format!(
            "{:<28} {:>5} {:>12} {:>12} {:>12}",
            "kernel", "iters", "min", "median", "p90"
        ));
        if with_solver_col {
            out.push_str(&format!(" {:>8}", "slv-it"));
        }
        if with_rss_col {
            out.push_str(&format!(" {:>10}", "peak-rss"));
        }
        out.push('\n');
        for k in &self.kernels {
            out.push_str(&format!(
                "{:<28} {:>5} {:>12} {:>12} {:>12}",
                k.id,
                k.iterations,
                fmt_duration(k.min_s),
                fmt_duration(k.median_s),
                fmt_duration(k.p90_s)
            ));
            if with_solver_col {
                match k.solver_iterations {
                    Some(si) => out.push_str(&format!(" {si:>8}")),
                    None => out.push_str(&format!(" {:>8}", "-")),
                }
            }
            if with_rss_col {
                out.push_str(&format!(" {:>10}", fmt_bytes(k.peak_rss_bytes)));
            }
            out.push('\n');
        }
        out
    }
}

pub(crate) fn fmt_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.1} µs", seconds * 1e6)
    }
}

/// Times `work`: `warmup` discarded calls, then `iterations` timed ones.
pub fn time_iterations<F: FnMut()>(warmup: usize, iterations: usize, mut work: F) -> Vec<Duration> {
    for _ in 0..warmup {
        work();
    }
    (0..iterations)
        .map(|_| {
            let start = Instant::now();
            work();
            start.elapsed()
        })
        .collect()
}

/// One registered kernel benchmark.
pub struct Kernel {
    /// Stable id, used by `--filter` and the JSON document.
    pub id: &'static str,
    /// One-line description of the workload.
    pub title: &'static str,
    run: fn(cfg: &KernelCfg) -> KernelRun,
}

/// Warmup/timed-iteration counts for the mode, honouring `--iters`.
fn budget(cfg: &KernelCfg) -> (usize, usize) {
    let (warmup, iters) = if cfg.quick { (1, 5) } else { (3, 15) };
    (warmup, cfg.iters.unwrap_or(iters))
}

fn summarize(kernel: &Kernel, cfg: &KernelCfg, run: KernelRun) -> KernelStats {
    let (warmup, _) = budget(cfg);
    let mut secs: Vec<f64> = run.samples.iter().map(Duration::as_secs_f64).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let n = secs.len();
    let nearest_rank = |q: f64| secs[(((q * n as f64).ceil() as usize).max(1) - 1).min(n - 1)];
    KernelStats {
        id: kernel.id,
        title: kernel.title,
        warmup,
        iterations: n,
        min_s: secs[0],
        median_s: nearest_rank(0.5),
        p90_s: nearest_rank(0.9),
        mean_s: secs.iter().sum::<f64>() / n as f64,
        solver_iterations: run.solver_iterations,
        // Sampled right after the kernel's iterations: the process
        // high-water mark at this point in registry order.
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// The kernel registry, fixed order. Ids are stable across PRs so the
/// `BENCH_*.json` trajectory stays comparable.
pub fn kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            id: "negf.mean_transmission",
            title: "NEGF ensemble transmission, 400-site chain",
            run: bench_negf_mean_transmission,
        },
        Kernel {
            id: "negf.mfp_vs_disorder",
            title: "NEGF mean-free-path calibration curve",
            run: bench_negf_mfp,
        },
        Kernel {
            id: "fields.cg_small",
            title: "CG stencil solve, 9x9x17 grid",
            run: bench_cg_small,
        },
        Kernel {
            id: "fields.cg_large",
            title: "CG stencil solve, 13x13x33 grid",
            run: bench_cg_large,
        },
        Kernel {
            id: "fields.cg_xl",
            title: "CG stencil solve, 33x33x129 grid (MG ablation reference)",
            run: bench_cg_xl,
        },
        Kernel {
            id: "fields.mg_large",
            title: "MG-CG stencil solve, 13x13x33 grid",
            run: bench_mg_large,
        },
        Kernel {
            id: "fields.mg_xl",
            title: "MG-CG stencil solve, 33x33x129 grid",
            run: bench_mg_xl,
        },
        Kernel {
            id: "thermal.sthm_scan",
            title: "SThM probe convolution over a 401-point profile",
            run: bench_sthm_scan,
        },
        Kernel {
            id: "thermal.via_stack",
            title: "via-stack thermal resistance sweep",
            run: bench_via_stack,
        },
        Kernel {
            id: "circuit.delay_ratio_grid",
            title: "fig12 Elmore delay-ratio grid on the pool",
            run: bench_delay_ratio_grid,
        },
        Kernel {
            id: "obs.history_scrape",
            title: "HistoryStore scrape of a loaded registry (64 samples)",
            run: bench_history_scrape,
        },
        Kernel {
            id: "sweep.pool_t1",
            title: "Executor throughput, 32 jobs, 1 thread",
            run: |cfg| bench_pool(cfg, 1),
        },
        Kernel {
            id: "sweep.pool_t2",
            title: "Executor throughput, 32 jobs, 2 threads",
            run: |cfg| bench_pool(cfg, 2),
        },
        Kernel {
            id: "sweep.pool_t4",
            title: "Executor throughput, 32 jobs, 4 threads",
            run: |cfg| bench_pool(cfg, 4),
        },
        Kernel {
            id: "sweep.pool_t8",
            title: "Executor throughput, 32 jobs, 8 threads",
            run: |cfg| bench_pool(cfg, 8),
        },
        Kernel {
            id: "serve.roundtrip",
            title: "cnt-serve keep-alive run round-trip (LRU-hot)",
            run: bench_serve_roundtrip,
        },
        Kernel {
            id: "serve.fleet_roundtrip",
            title: "cnt-fleet non-owner round-trip (peer-fill-hot, 2 instances)",
            run: bench_fleet_roundtrip,
        },
        Kernel {
            id: "serve.fleet_degraded",
            title: "cnt-fleet degraded round-trip (owner Down, local fallback)",
            run: bench_fleet_degraded,
        },
        Kernel {
            id: "serve.sweep_fanout",
            title: "cnt-serve async sweep fan-out, submit→result (chunk-cache-hot, 2 instances)",
            run: bench_sweep_fanout,
        },
    ]
}

/// Every registered kernel id, registry order.
pub fn kernel_ids() -> Vec<&'static str> {
    kernels().iter().map(|k| k.id).collect()
}

/// Validates the `--threads` / `--iters` overrides the same way the
/// experiment registry validates `--set` values: out-of-range knobs are
/// rejected with the canonical
/// [`cnt_interconnect::Error::InvalidOverride`] before anything runs.
fn validate(opts: &BenchOpts) -> Result<(), cnt_interconnect::Error> {
    let check = |key: &str, value: Option<usize>, max: usize| match value {
        Some(v) if v < 1 || v > max => Err(cnt_interconnect::Error::InvalidOverride {
            key: key.to_string(),
            reason: format!("{v} outside [1, {max}]"),
        }),
        _ => Ok(()),
    };
    check("threads", opts.threads, 256)?;
    check("iters", opts.iters, 10_000)
}

/// Runs the registry (honouring the filter and overrides) and summarizes.
///
/// # Errors
///
/// Returns [`cnt_interconnect::Error::InvalidOverride`] when `--threads`
/// or `--iters` is out of range.
pub fn run(opts: &BenchOpts) -> Result<BenchReport, cnt_interconnect::Error> {
    validate(opts)?;
    let cfg = KernelCfg {
        quick: opts.quick,
        threads: opts.threads,
        iters: opts.iters,
    };
    let kernels: Vec<Kernel> = kernels()
        .into_iter()
        .filter(|k| {
            opts.filter
                .as_deref()
                .is_none_or(|needle| k.id.contains(needle))
        })
        .collect();
    let stats = kernels
        .iter()
        .map(|k| summarize(k, &cfg, (k.run)(&cfg)))
        .collect();
    Ok(BenchReport {
        quick: opts.quick,
        threads_override: opts.threads,
        iters_override: opts.iters,
        filter: opts.filter.clone(),
        threads_available: std::thread::available_parallelism().map_or(1, usize::from),
        unix_time_s: SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        kernels: stats,
    })
}

// --- kernels ------------------------------------------------------------

fn bench_negf_mean_transmission(cfg: &KernelCfg) -> KernelRun {
    let (warmup, iters) = budget(cfg);
    let samples = if cfg.quick { 24 } else { 96 };
    let chain = DisorderedChain::new(400, 2.7, 1.0, Length::from_nanometers(0.25))
        .expect("valid chain parameters");
    KernelRun::timed(time_iterations(warmup, iters, || {
        let mut rng = StdRng::seed_from_u64(42);
        black_box(chain.mean_transmission(0.0, samples, &mut rng));
    }))
}

fn bench_negf_mfp(cfg: &KernelCfg) -> KernelRun {
    let (warmup, iters) = budget(cfg);
    let samples = if cfg.quick { 12 } else { 40 };
    KernelRun::timed(time_iterations(warmup, iters, || {
        let mut rng = StdRng::seed_from_u64(7);
        black_box(
            cnt_atomistic::negf::mfp_vs_disorder(
                300,
                2.7,
                Length::from_nanometers(0.25),
                &[0.4, 0.8, 1.6],
                samples,
                &mut rng,
            )
            .expect("valid sweep"),
        );
    }))
}

/// A heterogeneous two-plate stencil system for the CG benchmarks.
fn cg_system(nodes: [usize; 3]) -> StencilSystem {
    let grid = Grid3::new([1.0, 1.0, 2.0], nodes).expect("valid grid");
    let cells = grid.cells();
    let mut coeff = vec![0.0; grid.cell_count()];
    for k in 0..cells[2] {
        for j in 0..cells[1] {
            for i in 0..cells[0] {
                // Layered dielectric with a contrast step mid-stack.
                coeff[grid.cell_index(i, j, k)] = if k < cells[2] / 2 { 1.0 } else { 3.5 };
            }
        }
    }
    let mut dirichlet = vec![None; grid.node_count()];
    let [nx, ny, nz] = grid.nodes();
    for j in 0..ny {
        for i in 0..nx {
            dirichlet[grid.node_index(i, j, 0)] = Some(0.0);
            dirichlet[grid.node_index(i, j, nz - 1)] = Some(1.0);
        }
    }
    StencilSystem::assemble(&grid, &coeff, dirichlet)
}

fn bench_stencil(cfg: &KernelCfg, nodes: [usize; 3], scheme: Method) -> KernelRun {
    let (warmup, iters) = budget(cfg);
    let sys = cg_system(nodes);
    let options = SolverOptions {
        scheme,
        ..SolverOptions::default()
    };
    let mut ws = SolveWorkspace::new();
    // The solve is deterministic, so the iteration count of any timed
    // call doubles as the reported statistic.
    let mut iterations = 0usize;
    let samples = time_iterations(warmup, iters, || {
        let solution = sys.solve_full(&options, &mut ws).expect("converges");
        iterations = solution.iterations;
        black_box(solution.psi);
    });
    KernelRun {
        samples,
        solver_iterations: Some(iterations as u64),
    }
}

fn bench_cg_small(cfg: &KernelCfg) -> KernelRun {
    bench_stencil(cfg, [9, 9, 17], Method::ConjugateGradient)
}

fn bench_cg_large(cfg: &KernelCfg) -> KernelRun {
    bench_stencil(cfg, [13, 13, 33], Method::ConjugateGradient)
}

fn bench_cg_xl(cfg: &KernelCfg) -> KernelRun {
    bench_stencil(cfg, [33, 33, 129], Method::ConjugateGradient)
}

fn bench_mg_large(cfg: &KernelCfg) -> KernelRun {
    bench_stencil(cfg, [13, 13, 33], Method::MgCg)
}

fn bench_mg_xl(cfg: &KernelCfg) -> KernelRun {
    bench_stencil(cfg, [33, 33, 129], Method::MgCg)
}

fn bench_sthm_scan(cfg: &KernelCfg) -> KernelRun {
    let (warmup, iters) = budget(cfg);
    let truth = SelfHeatingLine::mwcnt(
        Length::from_micrometers(2.0),
        CurrentDensity::from_amps_per_square_centimeter(5e8),
    )
    .analytic_profile(401)
    .expect("valid profile");
    let instrument = SthmInstrument::nanoprobe();
    KernelRun::timed(time_iterations(warmup, iters, || {
        black_box(instrument.scan(&truth, 42).expect("valid scan"));
    }))
}

fn bench_via_stack(cfg: &KernelCfg) -> KernelRun {
    let (warmup, iters) = budget(cfg);
    let n = if cfg.quick { 400 } else { 2000 };
    let heat = Power::from_microwatts(10.0);
    KernelRun::timed(time_iterations(warmup, iters, || {
        let mut acc = 0.0;
        for i in 0..n {
            let side = 40.0 + (i % 50) as f64;
            let area = Area::from_square_nanometers(side * side);
            let cu = ViaStack::copper(area).expect("valid stack");
            let cnt = ViaStack::cnt(area).expect("valid stack");
            acc += cu.temperature_drop(heat).kelvin() - cnt.temperature_drop(heat).kelvin();
        }
        black_box(acc);
    }))
}

fn bench_delay_ratio_grid(cfg: &KernelCfg) -> KernelRun {
    let (warmup, iters) = budget(cfg);
    let (d, nc, l): (&[f64], &[usize], &[f64]) = if cfg.quick {
        (&FIG12_DIAMETERS_NM[..2], &[2, 6, 10], &[10.0, 100.0, 500.0])
    } else {
        (
            &FIG12_DIAMETERS_NM,
            &FIG12_CHANNEL_COUNTS,
            &FIG12_LENGTHS_UM,
        )
    };
    KernelRun::timed(time_iterations(warmup, iters, || {
        black_box(delay_ratio_grid(d, nc, l, 0).expect("valid grid"));
    }))
}

fn bench_history_scrape(cfg: &KernelCfg) -> KernelRun {
    let (warmup, iters) = budget(cfg);
    // A registry shaped like a busy server's: a few scalar families plus
    // labelled counters and populated histograms, so each scrape pays
    // for snapshotting and ring appends across every series kind.
    let registry = cnt_obs::MetricRegistry::new();
    for i in 0..8 {
        registry
            .counter(&format!("bench_counter_{i}_total"), "bench counter")
            .add(i * 17);
        registry
            .gauge(&format!("bench_gauge_{i}"), "bench gauge")
            .set(i as f64 * 0.25);
        let hist = registry.histogram(&format!("bench_hist_{i}_seconds"), "bench histogram");
        for k in 0..64 {
            hist.record(1e-4 * (1 + (k * 7 + i) % 50) as f64);
        }
        let vec = registry.counter_vec(
            &format!("bench_status_{i}_total"),
            "bench labelled counter",
            "code",
            true,
        );
        for code in ["200", "404", "500"] {
            vec.with(code).add(3);
        }
    }
    let store = cnt_obs::HistoryStore::new(cnt_obs::timeseries::DEFAULT_HISTORY_POINTS);
    KernelRun::timed(time_iterations(warmup, iters, || {
        for _ in 0..64 {
            store.sample(&registry);
        }
        black_box(store.render_json(60.0));
    }))
}

/// Fixed-size arithmetic spin: the deterministic unit of pool work.
fn spin(work: usize) -> f64 {
    let mut x = 1.0f64;
    for i in 0..work {
        x = x * 1.000_000_1 + 1.0 / (i + 1) as f64;
    }
    x
}

fn bench_pool(cfg: &KernelCfg, threads: usize) -> KernelRun {
    let (warmup, iters) = budget(cfg);
    let threads = cfg.threads.unwrap_or(threads);
    let work = if cfg.quick { 60_000 } else { 250_000 };
    let jobs: Vec<f64> = (0..32).map(|i| i as f64).collect();
    let plan = cnt_sweep::SweepPlan::new("bench.pool").axis(cnt_sweep::Axis::grid("job", &jobs));
    let executor = cnt_sweep::Executor::new(threads);
    KernelRun::timed(time_iterations(warmup, iters, || {
        let out = executor
            .run(&plan, 0, |_, _| {
                Ok::<_, std::convert::Infallible>(spin(work))
            })
            .expect("spin cannot fail");
        black_box(out);
    }))
}

fn bench_serve_roundtrip(cfg: &KernelCfg) -> KernelRun {
    let (warmup, iters) = budget(cfg);
    let server = cnt_serve::Server::bind(cnt_serve::Config {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 64,
        ..cnt_serve::Config::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.serve().expect("serve"));

    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    // One keep-alive connection; warmup computes table1 once, the timed
    // iterations measure the LRU-hot end-to-end round-trip.
    let samples = time_iterations(warmup, iters, move || {
        write!(
            writer,
            "POST /v1/experiments/table1/run HTTP/1.1\r\nHost: bench\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\n{{}}"
        )
        .expect("send request");
        writer.flush().expect("flush");
        let mut content_length = None;
        loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).expect("read head") > 0);
            if line == "\r\n" || line == "\n" {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse::<usize>().ok();
            }
        }
        let mut body = vec![0u8; content_length.expect("framed response")];
        reader.read_exact(&mut body).expect("read body");
        black_box(body);
    });
    handle.shutdown();
    serving.join().expect("server thread");
    KernelRun::timed(samples)
}

fn bench_fleet_roundtrip(cfg: &KernelCfg) -> KernelRun {
    let (warmup, iters) = budget(cfg);
    let bind = |_| {
        cnt_serve::Server::bind(cnt_serve::Config {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            ..cnt_serve::Config::default()
        })
        .expect("bind ephemeral port")
    };
    let servers: Vec<_> = (0..2).map(bind).collect();
    let peers: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    for (index, server) in servers.iter().enumerate() {
        server
            .enable_fleet(cnt_serve::FleetConfig::new(peers.clone(), index))
            .expect("join fleet");
    }
    // Route through the instance that does NOT own table1's default
    // point, so every timed iteration pays fill probe + relay.
    let (_, ctx) =
        cnt_interconnect::experiments::resolve_context("table1", None, &[]).expect("table1 exists");
    let ring = cnt_serve::fleet::HashRing::new(&peers);
    let owner = ring.owner_of_hash(ctx.params.content_hash()).expect("ring");
    let front = servers[1 - owner].local_addr();

    let mut handles = Vec::new();
    let mut serving = Vec::new();
    for server in servers {
        handles.push(server.handle());
        serving.push(std::thread::spawn(move || {
            server.serve().expect("serve");
        }));
    }

    let stream = std::net::TcpStream::connect(front).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    // One keep-alive connection to the non-owner; warmup computes the
    // point once on the owner, then the timed iterations measure the
    // cross-instance hop (fill probe hitting the owner's LRU).
    let samples = time_iterations(warmup, iters, move || {
        write!(
            writer,
            "POST /v1/experiments/table1/run HTTP/1.1\r\nHost: bench\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\n{{}}"
        )
        .expect("send request");
        writer.flush().expect("flush");
        let mut content_length = None;
        loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).expect("read head") > 0);
            if line == "\r\n" || line == "\n" {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse::<usize>().ok();
            }
        }
        let mut body = vec![0u8; content_length.expect("framed response")];
        reader.read_exact(&mut body).expect("read body");
        black_box(body);
    });
    for handle in handles {
        handle.shutdown();
    }
    for thread in serving {
        thread.join().expect("server thread");
    }
    KernelRun::timed(samples)
}

fn bench_fleet_degraded(cfg: &KernelCfg) -> KernelRun {
    let (warmup, iters) = budget(cfg);
    let bind = |_| {
        cnt_serve::Server::bind(cnt_serve::Config {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            ..cnt_serve::Config::default()
        })
        .expect("bind ephemeral port")
    };
    let mut servers: Vec<_> = (0..2).map(bind).collect();
    let peers: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let (_, ctx) =
        cnt_interconnect::experiments::resolve_context("table1", None, &[]).expect("table1 exists");
    let ring = cnt_serve::fleet::HashRing::new(&peers);
    let owner = ring.owner_of_hash(ctx.params.content_hash()).expect("ring");

    // Kill the owner of table1's default point before it ever serves —
    // its port refuses connections — and route through the survivor.
    drop(servers.remove(owner));
    let front = servers.pop().expect("survivor");
    front
        .enable_fleet(cnt_serve::FleetConfig::new(peers.clone(), 1 - owner))
        .expect("join fleet");
    let addr = front.local_addr();
    let handle = front.handle();
    let serving = std::thread::spawn(move || {
        front.serve().expect("serve");
    });

    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut exchange = move || {
        write!(
            writer,
            "POST /v1/experiments/table1/run HTTP/1.1\r\nHost: bench\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\n{{}}"
        )
        .expect("send request");
        writer.flush().expect("flush");
        let mut content_length = None;
        loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).expect("read head") > 0);
            if line == "\r\n" || line == "\n" {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse::<usize>().ok();
            }
        }
        let mut body = vec![0u8; content_length.expect("framed response")];
        reader.read_exact(&mut body).expect("read body");
        black_box(body);
    };
    // Trip the failure detector first: K = 3 consecutive fill failures
    // mark the dead owner Down, so the timed iterations measure the
    // steady degraded state (health gate + local LRU hit) rather than
    // the connect-refused probes on the way there. The companion
    // serve.fleet_roundtrip kernel is the healthy-fleet baseline.
    for _ in 0..3 {
        exchange();
    }
    let samples = time_iterations(warmup, iters, exchange);
    handle.shutdown();
    serving.join().expect("server thread");
    KernelRun::timed(samples)
}

fn bench_sweep_fanout(cfg: &KernelCfg) -> KernelRun {
    let (warmup, iters) = budget(cfg);
    let bind = |_| {
        cnt_serve::Server::bind(cnt_serve::Config {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 64,
            jobs_capacity: 1 << 16,
            ..cnt_serve::Config::default()
        })
        .expect("bind ephemeral port")
    };
    let servers: Vec<_> = (0..2).map(bind).collect();
    let peers: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    for (index, server) in servers.iter().enumerate() {
        server
            .enable_fleet(cnt_serve::FleetConfig::new(peers.clone(), index))
            .expect("join fleet");
    }
    let front = servers[0].local_addr();
    let mut handles = Vec::new();
    let mut serving = Vec::new();
    for server in servers {
        handles.push(server.handle());
        serving.push(std::thread::spawn(move || {
            server.serve().expect("serve");
        }));
    }

    // One keep-alive exchange; returns (status, body). The submit+poll
    // cycle outlives the server's per-connection request cap, so the
    // connection re-dials transparently whenever the server closes it
    // (every request here is safe to retry: polls are idempotent and a
    // capped connection dies *after* the previous response).
    let mut conn: Option<(std::net::TcpStream, BufReader<std::net::TcpStream>)> = None;
    let mut exchange = move |method: &str, path: &str, body: &str| -> (u16, String) {
        loop {
            if conn.is_none() {
                let stream = std::net::TcpStream::connect(front).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("timeout");
                stream.set_nodelay(true).expect("nodelay");
                let reader = BufReader::new(stream.try_clone().expect("clone stream"));
                conn = Some((stream, reader));
            }
            let (writer, reader) = conn.as_mut().expect("connected");
            let sent = write!(
                writer,
                "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
                body.len()
            )
            .and_then(|()| writer.flush());
            if sent.is_err() {
                conn = None;
                continue;
            }
            let mut status = None;
            let mut content_length = None;
            let mut closing = false;
            let mut eof = false;
            loop {
                let mut line = String::new();
                if reader.read_line(&mut line).expect("read head") == 0 {
                    eof = true;
                    break;
                }
                if status.is_none() {
                    status = line.split(' ').nth(1).and_then(|s| s.parse::<u16>().ok());
                }
                if line == "\r\n" || line == "\n" {
                    break;
                }
                let lower = line.to_ascii_lowercase();
                if let Some(v) = lower.strip_prefix("content-length:").map(str::trim) {
                    content_length = v.parse::<usize>().ok();
                }
                if lower.starts_with("connection:") && lower.contains("close") {
                    closing = true;
                }
            }
            if eof {
                conn = None;
                continue;
            }
            let mut body = vec![0u8; content_length.expect("framed response")];
            reader.read_exact(&mut body).expect("read body");
            if closing {
                conn = None;
            }
            return (
                status.expect("status line"),
                String::from_utf8(body).expect("UTF-8 body"),
            );
        }
    };
    // Each iteration is the full async contract: submit the sweep, then
    // poll the result route until the merged report lands. The warmup
    // iteration populates both instances' chunk stores, so the timed
    // iterations measure fan-out coordination (journal-free submit,
    // chunk claims, store recalls, merge + render) rather than physics.
    let submit_body = "{\"params\": {\"trials\": 16, \"cache_dir\": \"\"}}";
    let samples = time_iterations(warmup.max(1), iters, move || {
        let (status, submit) = exchange("POST", "/v1/sweeps/fig12", submit_body);
        assert_eq!(status, 202, "{submit}");
        let rid = submit
            .split("\"job\":\"")
            .nth(1)
            .and_then(|tail| tail.split('"').next())
            .expect("job id")
            .to_string();
        let path = format!("/v1/jobs/{rid}/result");
        loop {
            let (status, body) = exchange("GET", &path, "");
            match status {
                200 => {
                    black_box(body);
                    break;
                }
                202 => {}
                other => panic!("unexpected result status {other}: {body}"),
            }
        }
    });
    for handle in handles {
        handle.shutdown();
    }
    for thread in serving {
        thread.join().expect("server thread");
    }
    KernelRun::timed(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_cover_the_layers() {
        let ids = kernel_ids();
        assert!(ids.len() >= 8, "bench registry shrank: {ids:?}");
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), ids.len(), "duplicate kernel id");
        for prefix in [
            "negf.", "fields.", "thermal.", "circuit.", "obs.", "sweep.", "serve.",
        ] {
            assert!(
                ids.iter().any(|id| id.starts_with(prefix)),
                "no {prefix} kernel"
            );
        }
    }

    fn quick_cfg() -> KernelCfg {
        KernelCfg {
            quick: true,
            threads: None,
            iters: None,
        }
    }

    #[test]
    fn summary_statistics_are_ordered() {
        let kernel = &kernels()[0];
        let fake: Vec<Duration> = (1..=10).map(|i| Duration::from_micros(i * 10)).collect();
        let stats = summarize(kernel, &quick_cfg(), KernelRun::timed(fake));
        assert_eq!(stats.iterations, 10);
        assert_eq!(stats.min_s, 10e-6);
        assert!((stats.median_s - 50e-6).abs() < 1e-12);
        assert!((stats.p90_s - 90e-6).abs() < 1e-12);
        assert!(stats.min_s <= stats.median_s && stats.median_s <= stats.p90_s);
        assert_eq!(stats.solver_iterations, None);
    }

    #[test]
    fn json_document_is_schema_valid_and_filter_narrows() {
        // One cheap kernel end to end: the report renders, the JSON
        // parses, and --filter selects by substring.
        let report = run(&BenchOpts {
            quick: true,
            filter: Some("thermal.via_stack".to_string()),
            ..BenchOpts::default()
        })
        .expect("valid opts");
        assert_eq!(report.kernels.len(), 1);
        assert_eq!(report.kernels[0].id, "thermal.via_stack");
        let json = report.to_json();
        assert!(
            json.starts_with("{\"schema\":2,\"kind\":\"bench\""),
            "{json}"
        );
        cnt_interconnect::experiments::format::check_json_stream(&json).expect("valid JSON");
        if cfg!(target_os = "linux") {
            assert!(json.contains("\"peak_rss_bytes\":"), "{json}");
            assert!(report.render_text().contains("peak-rss"));
        }
        let text = report.render_text();
        assert!(text.contains("thermal.via_stack"), "{text}");
        // An unmatched filter runs nothing.
        let none = run(&BenchOpts {
            quick: true,
            filter: Some("no-such-kernel".to_string()),
            ..BenchOpts::default()
        })
        .expect("valid opts");
        assert!(none.kernels.is_empty());
    }

    #[test]
    fn overrides_are_validated_and_applied() {
        // Out-of-range knobs are rejected with the canonical error.
        for (threads, iters) in [(Some(0), None), (None, Some(0)), (None, Some(10_001))] {
            let err = run(&BenchOpts {
                quick: true,
                filter: Some("no-such-kernel".to_string()),
                threads,
                iters,
            })
            .expect_err("out-of-range override must be rejected");
            assert!(matches!(
                err,
                cnt_interconnect::Error::InvalidOverride { .. }
            ));
        }
        // --iters reshapes the sample count of a cheap kernel.
        let report = run(&BenchOpts {
            quick: true,
            filter: Some("thermal.via_stack".to_string()),
            threads: None,
            iters: Some(2),
        })
        .expect("valid opts");
        assert_eq!(report.kernels[0].iterations, 2);
    }

    #[test]
    fn peak_rss_probe_reports_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM readable on linux");
            assert!(rss > 1024 * 1024, "peak RSS {rss} implausibly small");
        }
        assert_eq!(fmt_bytes(None), "-");
        assert_eq!(fmt_bytes(Some(2 * 1024 * 1024)), "2.0 MB");
        assert_eq!(fmt_bytes(Some(512)), "0.5 kB");
    }

    #[test]
    fn solver_iteration_columns_expose_the_mg_ablation() {
        // The large CG/MG pair solves the same system at the same
        // tolerance; the MG iteration count must collapse.
        let cfg = KernelCfg {
            quick: true,
            threads: None,
            iters: Some(1),
        };
        let cg = bench_cg_large(&cfg);
        let mg = bench_mg_large(&cfg);
        let (cg_it, mg_it) = (
            cg.solver_iterations.expect("cg reports iterations"),
            mg.solver_iterations.expect("mg reports iterations"),
        );
        assert!(2 * mg_it <= cg_it, "MG-CG {mg_it} vs CG {cg_it} iterations");
        // And the rendered table carries the column.
        let report = run(&BenchOpts {
            quick: true,
            filter: Some("fields.cg_small".to_string()),
            threads: None,
            iters: Some(1),
        })
        .expect("valid opts");
        assert!(report.render_text().contains("slv-it"));
        assert!(report.to_json().contains("\"solver_iterations\":"));
    }
}
