//! `repro bench diff` — the trajectory comparator and regression gate.
//!
//! Compares two `BENCH_*.json` points (the shape [`crate::bench`] emits):
//! per-kernel median deltas for the ids both points share, plus explicit
//! added/removed lists so a structural change in the registry can never
//! hide inside a timing table. With `--fail-above PCT` the diff becomes a
//! gate: any *gated* kernel whose median regressed by more than `PCT`
//! percent — or any kernel that vanished from the newer point — fails the
//! run. Pool-throughput kernels (`sweep.pool_*`) are exempt from the
//! timing gate because their medians measure scheduler scaling on
//! whatever core count the runner has, not single-kernel performance;
//! they still participate in the structural diff.

use cnt_serve::json::{parse, JsonValue};

/// One kernel of a parsed bench point.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPoint {
    /// Stable kernel id.
    pub id: String,
    /// Lower-median iteration, seconds.
    pub median_s: f64,
    /// Inner solver iterations, when the point recorded them.
    pub solver_iterations: Option<u64>,
    /// Peak RSS after the kernel ran, bytes (schema 2 points on Linux;
    /// absent in schema 1 points and never gated).
    pub peak_rss_bytes: Option<u64>,
}

/// A parsed `BENCH_*.json` document (the fields the diff needs).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Whether the point was a `--quick` run.
    pub quick: bool,
    /// Whether the point was recorded with a `--threads` or `--iters`
    /// override (stamped by `repro bench`): not a standard trajectory
    /// point, so a gated diff refuses it.
    pub overridden: bool,
    /// Whether the point was recorded with a `--filter` (stamped): it
    /// covers only part of the registry, so a gated diff refuses it.
    pub filtered: bool,
    /// Cores available when the point was recorded.
    pub threads_available: u64,
    /// Unix timestamp of the run.
    pub unix_time_s: u64,
    /// Kernels in document order.
    pub kernels: Vec<KernelPoint>,
}

fn field<'a>(obj: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn number(v: Option<&JsonValue>) -> Option<f64> {
    match v {
        Some(JsonValue::Number(raw)) => raw.parse().ok(),
        _ => None,
    }
}

/// Parses one bench JSON document.
///
/// # Errors
///
/// Returns a message naming what is malformed — a JSON syntax error, a
/// wrong `kind`, or a kernel entry without an id/median.
pub fn parse_point(text: &str) -> Result<BenchPoint, String> {
    let JsonValue::Object(doc) = parse(text.trim())? else {
        return Err("bench point is not a JSON object".to_string());
    };
    match field(&doc, "kind") {
        Some(JsonValue::String(kind)) if kind == "bench" => {}
        other => {
            return Err(format!(
                "expected \"kind\":\"bench\", found {other:?} (is this a BENCH_*.json file?)"
            ))
        }
    }
    // Accept every schema this reader understands: 1 (no memory column)
    // and 2 (optional per-kernel peak_rss_bytes). Anything newer is a
    // hard error — silently dropping unknown semantics could let a
    // regression hide behind a format change.
    match number(field(&doc, "schema")).map(|v| v as u64) {
        Some(1 | 2) => {}
        Some(v) => {
            return Err(format!(
                "bench point has schema {v}; this reader understands schemas 1 and 2"
            ))
        }
        None => return Err("bench point has no numeric \"schema\"".to_string()),
    }
    let quick = matches!(field(&doc, "quick"), Some(JsonValue::Bool(true)));
    let overridden =
        field(&doc, "threads_override").is_some() || field(&doc, "iters_override").is_some();
    let filtered = field(&doc, "filter").is_some();
    let threads_available = number(field(&doc, "threads_available")).unwrap_or(0.0) as u64;
    let unix_time_s = number(field(&doc, "unix_time_s")).unwrap_or(0.0) as u64;
    let Some(JsonValue::Array(entries)) = field(&doc, "kernels") else {
        return Err("bench point has no \"kernels\" array".to_string());
    };
    let mut kernels = Vec::with_capacity(entries.len());
    for entry in entries {
        let JsonValue::Object(k) = entry else {
            return Err("kernel entry is not an object".to_string());
        };
        let Some(JsonValue::String(id)) = field(k, "id") else {
            return Err("kernel entry without an \"id\"".to_string());
        };
        let Some(median_s) = number(field(k, "median_s")) else {
            return Err(format!("kernel '{id}' has no numeric \"median_s\""));
        };
        kernels.push(KernelPoint {
            id: id.clone(),
            median_s,
            solver_iterations: number(field(k, "solver_iterations")).map(|v| v as u64),
            peak_rss_bytes: number(field(k, "peak_rss_bytes")).map(|v| v as u64),
        });
    }
    Ok(BenchPoint {
        quick,
        overridden,
        filtered,
        threads_available,
        unix_time_s,
        kernels,
    })
}

/// Whether a kernel's median participates in the timing gate.
pub fn gated(id: &str) -> bool {
    !id.starts_with("sweep.pool")
}

/// One shared kernel in the diff.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Stable kernel id.
    pub id: String,
    /// Median in the baseline point, seconds.
    pub median_a_s: f64,
    /// Median in the new point, seconds.
    pub median_b_s: f64,
    /// Median delta in percent (positive = slower in the new point).
    pub delta_pct: f64,
    /// Whether this row participates in the timing gate.
    pub gated: bool,
    /// Solver iterations in the two points, when both recorded them.
    pub solver_iterations: Option<(u64, u64)>,
    /// Peak RSS in the two points, when both recorded it. Reported in
    /// the table but never gated — memory varies with allocator and
    /// platform far more than the medians do.
    pub peak_rss: Option<(u64, u64)>,
}

/// The structural + timing comparison of two bench points.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// Kernels present in both points, baseline order.
    pub rows: Vec<DiffRow>,
    /// Kernels only in the new point (new coverage; never a failure).
    pub added: Vec<String>,
    /// Kernels missing from the new point (lost coverage; fails a gated
    /// diff).
    pub removed: Vec<String>,
}

impl BenchDiff {
    /// Computes the diff of `b` (new) against `a` (baseline).
    pub fn compute(a: &BenchPoint, b: &BenchPoint) -> Self {
        let rows = a
            .kernels
            .iter()
            .filter_map(|ka| {
                let kb = b.kernels.iter().find(|k| k.id == ka.id)?;
                let delta_pct = if ka.median_s > 0.0 {
                    (kb.median_s - ka.median_s) / ka.median_s * 100.0
                } else {
                    0.0
                };
                Some(DiffRow {
                    id: ka.id.clone(),
                    median_a_s: ka.median_s,
                    median_b_s: kb.median_s,
                    delta_pct,
                    gated: gated(&ka.id),
                    solver_iterations: ka.solver_iterations.zip(kb.solver_iterations),
                    peak_rss: ka.peak_rss_bytes.zip(kb.peak_rss_bytes),
                })
            })
            .collect();
        let added = b
            .kernels
            .iter()
            .filter(|kb| a.kernels.iter().all(|ka| ka.id != kb.id))
            .map(|k| k.id.clone())
            .collect();
        let removed = a
            .kernels
            .iter()
            .filter(|ka| b.kernels.iter().all(|kb| kb.id != ka.id))
            .map(|k| k.id.clone())
            .collect();
        Self {
            rows,
            added,
            removed,
        }
    }

    /// Gate verdict: every gated kernel whose median regressed by more
    /// than `fail_above_pct`, every removed kernel, and any point that
    /// was recorded with `--threads`/`--iters` overrides (its workloads
    /// are not the standard registry, so its medians cannot gate).
    /// Empty means the gate passes.
    pub fn gate_failures(
        &self,
        fail_above_pct: f64,
        a: &BenchPoint,
        b: &BenchPoint,
    ) -> Vec<String> {
        let mut failures: Vec<String> = Vec::new();
        for (name, point) in [("baseline", a), ("new", b)] {
            if point.overridden {
                failures.push(format!(
                    "{name} point was recorded with --threads/--iters overrides and cannot gate (re-record without overrides)"
                ));
            }
            if point.filtered {
                failures.push(format!(
                    "{name} point was recorded with --filter and covers only part of the registry; it cannot gate"
                ));
            }
        }
        if a.quick != b.quick {
            failures.push(
                "points mix quick and full mode (workload sizes differ); medians are not comparable"
                    .to_string(),
            );
        }
        failures.extend(
            self.rows
                .iter()
                .filter(|r| r.gated && r.delta_pct > fail_above_pct)
                .map(|r| {
                    format!(
                        "kernel '{}' regressed {:+.1}% (median {} -> {}, gate {:.0}%)",
                        r.id,
                        r.delta_pct,
                        crate::bench::fmt_duration(r.median_a_s),
                        crate::bench::fmt_duration(r.median_b_s),
                        fail_above_pct
                    )
                }),
        );
        for id in &self.removed {
            failures.push(format!(
                "kernel '{id}' disappeared from the new point (trajectory ids must stay stable)"
            ));
        }
        failures
    }

    /// The human-readable diff table.
    pub fn render_text(&self, a: &BenchPoint, b: &BenchPoint) -> String {
        let tag = |p: &BenchPoint| {
            format!(
                "{}{}",
                if p.quick { ", quick" } else { "" },
                if p.overridden { ", OVERRIDDEN" } else { "" }
            ) + (if p.filtered { ", FILTERED" } else { "" })
        };
        let mut out = format!(
            "bench diff: baseline {} ({} cores{}) -> new {} ({} cores{})\n",
            a.unix_time_s,
            a.threads_available,
            tag(a),
            b.unix_time_s,
            b.threads_available,
            tag(b),
        );
        out.push_str(&format!(
            "{:<28} {:>12} {:>12} {:>9}  {}\n",
            "kernel", "baseline", "new", "delta", "note"
        ));
        for r in &self.rows {
            let mut note = match (r.gated, r.solver_iterations) {
                (false, _) => "pool (ungated)".to_string(),
                (true, Some((ia, ib))) if ia != ib => format!("solver iters {ia} -> {ib}"),
                _ => String::new(),
            };
            if let Some((ra, rb)) = r.peak_rss {
                let rss_delta = (rb as f64 - ra as f64) / (ra.max(1) as f64) * 100.0;
                if rss_delta.abs() >= 5.0 {
                    if !note.is_empty() {
                        note.push_str("; ");
                    }
                    note.push_str(&format!(
                        "peak-rss {} -> {} ({rss_delta:+.0}%, ungated)",
                        crate::bench::fmt_bytes(Some(ra)),
                        crate::bench::fmt_bytes(Some(rb)),
                    ));
                }
            }
            out.push_str(&format!(
                "{:<28} {:>12} {:>12} {:>+8.1}%  {}\n",
                r.id,
                crate::bench::fmt_duration(r.median_a_s),
                crate::bench::fmt_duration(r.median_b_s),
                r.delta_pct,
                note
            ));
        }
        for id in &self.added {
            out.push_str(&format!("{id:<28} {:>12} {:>12}    added\n", "-", "-"));
        }
        for id in &self.removed {
            out.push_str(&format!("{id:<28} {:>12} {:>12}  removed\n", "-", "-"));
        }
        out
    }

    /// The machine-readable diff (one line, `repro check-json`-valid).
    pub fn to_json(&self, a: &BenchPoint, b: &BenchPoint) -> String {
        use cnt_interconnect::experiments::format::json_string;
        let mut out = String::with_capacity(256 + self.rows.len() * 96);
        out.push_str(&format!(
            "{{\"schema\":1,\"kind\":\"bench_diff\",\"a_unix_time_s\":{},\"b_unix_time_s\":{},\"kernels\":[",
            a.unix_time_s, b.unix_time_s
        ));
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            json_string(&r.id, &mut out);
            out.push_str(&format!(
                ",\"median_a_s\":{},\"median_b_s\":{},\"delta_pct\":{},\"gated\":{}}}",
                r.median_a_s, r.median_b_s, r.delta_pct, r.gated
            ));
        }
        out.push_str("],\"added\":[");
        for (i, id) in self.added.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(id, &mut out);
        }
        out.push_str("],\"removed\":[");
        for (i, id) in self.removed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(id, &mut out);
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(kernels: &[(&str, f64)]) -> BenchPoint {
        BenchPoint {
            quick: true,
            overridden: false,
            filtered: false,
            threads_available: 1,
            unix_time_s: 1000,
            kernels: kernels
                .iter()
                .map(|(id, m)| KernelPoint {
                    id: id.to_string(),
                    median_s: *m,
                    solver_iterations: None,
                    peak_rss_bytes: None,
                })
                .collect(),
        }
    }

    #[test]
    fn parses_the_emitted_shape_roundtrip() {
        let report = crate::bench::BenchReport {
            quick: true,
            threads_override: None,
            iters_override: None,
            filter: None,
            threads_available: 2,
            unix_time_s: 42,
            kernels: vec![crate::bench::KernelStats {
                id: "fields.cg_large",
                title: "CG stencil solve",
                warmup: 1,
                iterations: 5,
                min_s: 1e-3,
                median_s: 2e-3,
                p90_s: 3e-3,
                mean_s: 2.1e-3,
                solver_iterations: Some(31),
                peak_rss_bytes: Some(32 * 1024 * 1024),
            }],
        };
        let parsed = parse_point(&report.to_json()).unwrap();
        assert!(parsed.quick);
        assert_eq!(parsed.threads_available, 2);
        assert_eq!(parsed.kernels.len(), 1);
        assert_eq!(parsed.kernels[0].id, "fields.cg_large");
        assert_eq!(parsed.kernels[0].median_s, 2e-3);
        assert_eq!(parsed.kernels[0].solver_iterations, Some(31));
        assert_eq!(parsed.kernels[0].peak_rss_bytes, Some(32 * 1024 * 1024));

        assert!(parse_point("{\"kind\":\"bench_diff\"}").is_err());
        assert!(parse_point("not json").is_err());
    }

    #[test]
    fn schema_1_points_still_parse_and_newer_schemas_are_refused() {
        // A pre-memory-column point (what BENCH_pr5.json looks like):
        // no peak_rss_bytes anywhere, schema stamped 1.
        let legacy = "{\"schema\":1,\"kind\":\"bench\",\"quick\":true,\
                      \"threads_available\":4,\"unix_time_s\":99,\"kernels\":[\
                      {\"id\":\"fields.mg_xl\",\"warmup\":3,\"iterations\":15,\
                      \"min_s\":0.01,\"median_s\":0.011,\"p90_s\":0.012,\"mean_s\":0.011}]}";
        let point = parse_point(legacy).unwrap();
        assert_eq!(point.kernels[0].peak_rss_bytes, None);
        // Diffing a legacy point against a schema-2 point works; the
        // memory column is simply absent from the note.
        let current = point_with_rss(&[("fields.mg_xl", 0.011, Some(64 * 1024 * 1024))]);
        let diff = BenchDiff::compute(&point, &current);
        assert_eq!(diff.rows.len(), 1);
        assert_eq!(diff.rows[0].peak_rss, None);
        assert!(diff.gate_failures(5.0, &point, &current).is_empty());

        let future = legacy.replace("\"schema\":1", "\"schema\":3");
        let err = parse_point(&future).unwrap_err();
        assert!(err.contains("schema 3"), "{err}");
        let unstamped = legacy.replace("\"schema\":1,", "");
        assert!(parse_point(&unstamped).is_err());
    }

    #[test]
    fn peak_rss_moves_are_reported_but_never_gate() {
        let a = point_with_rss(&[("fields.mg_xl", 1.0e-2, Some(30 * 1024 * 1024))]);
        let b = point_with_rss(&[("fields.mg_xl", 1.0e-2, Some(60 * 1024 * 1024))]);
        let diff = BenchDiff::compute(&a, &b);
        assert_eq!(
            diff.rows[0].peak_rss,
            Some((30 * 1024 * 1024, 60 * 1024 * 1024))
        );
        // A doubled footprint shows up in the table…
        let text = diff.render_text(&a, &b);
        assert!(
            text.contains("peak-rss 30.0 MB -> 60.0 MB (+100%, ungated)"),
            "{text}"
        );
        // …but passes even a zero-tolerance gate.
        assert!(diff.gate_failures(0.0, &a, &b).is_empty());
    }

    fn point_with_rss(kernels: &[(&str, f64, Option<u64>)]) -> BenchPoint {
        BenchPoint {
            quick: true,
            overridden: false,
            filtered: false,
            threads_available: 1,
            unix_time_s: 1000,
            kernels: kernels
                .iter()
                .map(|(id, m, rss)| KernelPoint {
                    id: id.to_string(),
                    median_s: *m,
                    solver_iterations: None,
                    peak_rss_bytes: *rss,
                })
                .collect(),
        }
    }

    #[test]
    fn diff_covers_regression_improvement_added_and_removed() {
        // Baseline: two gated kernels, one pool kernel, one that will be
        // removed. New point: a 50% regression, a 2x improvement, a pool
        // regression (ungated), and one added kernel.
        let a = point(&[
            ("fields.cg_large", 1.0e-3),
            ("negf.mean_transmission", 8.0e-5),
            ("sweep.pool_t4", 4.0e-3),
            ("old.kernel", 1.0e-6),
        ]);
        let b = point(&[
            ("fields.cg_large", 1.5e-3),
            ("negf.mean_transmission", 4.0e-5),
            ("sweep.pool_t4", 9.0e-3),
            ("fields.mg_xl", 5.0e-2),
        ]);
        let diff = BenchDiff::compute(&a, &b);
        assert_eq!(diff.rows.len(), 3);
        let cg = &diff.rows[0];
        assert!((cg.delta_pct - 50.0).abs() < 1e-9, "{}", cg.delta_pct);
        assert!(cg.gated);
        let negf = &diff.rows[1];
        assert!((negf.delta_pct + 50.0).abs() < 1e-9);
        let pool = &diff.rows[2];
        assert!(!pool.gated, "pool kernels are exempt from the gate");
        assert_eq!(diff.added, vec!["fields.mg_xl".to_string()]);
        assert_eq!(diff.removed, vec!["old.kernel".to_string()]);

        // Gate at 25%: the cg regression and the removed kernel fail;
        // the pool regression does not.
        let failures = diff.gate_failures(25.0, &a, &b);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("fields.cg_large"));
        assert!(failures[1].contains("old.kernel"));
        // Gate at 60%: only the removed kernel fails.
        assert_eq!(diff.gate_failures(60.0, &a, &b).len(), 1);

        let text = diff.render_text(&a, &b);
        assert!(text.contains("added"), "{text}");
        assert!(text.contains("removed"), "{text}");
        assert!(text.contains("pool (ungated)"), "{text}");

        let json = diff.to_json(&a, &b);
        assert!(json.starts_with("{\"schema\":1,\"kind\":\"bench_diff\""));
        cnt_interconnect::experiments::format::check_json_stream(&json).expect("valid JSON");
        // And the diff JSON parses back as NOT a bench point.
        assert!(parse_point(&json).is_err());
    }

    #[test]
    fn overridden_points_cannot_gate() {
        let report = crate::bench::BenchReport {
            quick: true,
            threads_override: None,
            iters_override: Some(1),
            filter: Some("fields".to_string()),
            threads_available: 1,
            unix_time_s: 7,
            kernels: vec![],
        };
        let b = parse_point(&report.to_json()).unwrap();
        assert!(b.overridden && b.filtered);
        let a = point(&[("fields.cg_large", 1.0e-3)]);
        let diff = BenchDiff::compute(&a, &b);
        let failures = diff.gate_failures(25.0, &a, &b);
        assert!(
            failures.iter().any(|f| f.contains("overrides"))
                && failures.iter().any(|f| f.contains("--filter")),
            "{failures:?}"
        );
        let text = diff.render_text(&a, &b);
        assert!(text.contains("OVERRIDDEN") && text.contains("FILTERED"));
    }

    #[test]
    fn identical_points_pass_any_gate() {
        let a = point(&[("fields.cg_large", 1.0e-3), ("serve.roundtrip", 1.2e-5)]);
        let diff = BenchDiff::compute(&a, &a);
        assert!(diff.added.is_empty() && diff.removed.is_empty());
        assert!(diff.gate_failures(0.0, &a, &a).is_empty());
        assert!(diff.rows.iter().all(|r| r.delta_pct == 0.0));
    }
}
