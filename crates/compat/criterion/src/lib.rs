//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the macro/entry surface the workspace's benches use
//! ([`criterion_group!`], [`criterion_main!`], [`Criterion::bench_function`],
//! `Bencher::iter`) with a simple wall-clock sampler: per benchmark it warms
//! up, runs `sample_size` timed samples, and prints min/median/mean. No
//! statistical regression machinery — just honest numbers on stderr-free
//! stdout, suitable for the single-binary `cargo bench` flow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use core::hint::black_box;

/// Benchmark driver (configuration + reporting).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` (which receives a [`Bencher`]) and prints a summary line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        // Warm-up pass (also sizes the per-sample iteration count).
        let mut bencher = Bencher::default();
        f(&mut bencher);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher::default();
            f(&mut bencher);
            if let Some(per_iter) = bencher.per_iter() {
                samples.push(per_iter);
            }
        }
        samples.sort_unstable();
        if samples.is_empty() {
            println!("bench {id:<44} (no samples)");
        } else {
            let min = samples[0];
            let median = samples[samples.len() / 2];
            let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
            println!(
                "bench {id:<44} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
                min,
                median,
                mean,
                samples.len()
            );
        }
        self
    }
}

/// Times one closure, handed to the benchmark body by
/// [`Criterion::bench_function`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, recording total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate an iteration count targeting ~10 ms per sample so very
        // fast bodies still get a measurable window.
        let start = Instant::now();
        black_box(f());
        let one = start.elapsed();
        let iters = if one < Duration::from_micros(100) {
            (Duration::from_millis(10).as_nanos() / one.as_nanos().max(1)).clamp(1, 10_000) as u32
        } else {
            1
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Mean time per iteration of the measured window, if any.
    fn per_iter(&self) -> Option<Duration> {
        (self.iters > 0).then(|| self.elapsed / self.iters)
    }
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke/noop", |b| {
            b.iter(|| black_box(1 + 1));
            runs += 1;
        });
        assert!(runs >= 3);
    }
}
