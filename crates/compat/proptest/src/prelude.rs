//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::any;
pub use crate::prop;
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::Config as ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
