//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, sign-balanced, spanning many magnitudes.
        let mag = rng.gen_range(-300.0f64..300.0);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * rng.gen::<f64>() * 10f64.powf(mag / 10.0)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        })+
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}
