//! Test-loop configuration and deterministic per-test seeding.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for one `proptest!` block (exposed in the prelude as
/// `ProptestConfig`, mirroring the real crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // The real default is 256; 64 keeps the single-core CI budget sane
        // while still exercising each property broadly.
        Self { cases: 64 }
    }
}

/// Deterministic generator for one named test: the stream is a pure
/// function of the test's fully qualified name, so every run (and every
/// thread count) explores the same cases.
pub fn rng_for(test_name: &str) -> StdRng {
    // FNV-1a over the name.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn per_name_streams_are_stable_and_distinct() {
        let mut a1 = rng_for("crate::tests::alpha");
        let mut a2 = rng_for("crate::tests::alpha");
        let mut b = rng_for("crate::tests::beta");
        let x1 = a1.next_u64();
        assert_eq!(x1, a2.next_u64());
        assert_ne!(x1, b.next_u64());
    }
}
