//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use core::ops::Range;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(!size.is_empty(), "empty vec size range");
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn length_and_elements_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = vec((0.1f64..10.0, 1.0f64..1e6), 3..12);
        for _ in 0..300 {
            let v = s.sample(&mut rng);
            assert!((3..12).contains(&v.len()));
            for (a, b) in v {
                assert!((0.1..10.0).contains(&a));
                assert!((1.0..1e6).contains(&b));
            }
        }
    }
}
