//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest used by the workspace's property tests:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * range strategies for floats and integers, tuple strategies,
//!   [`prop::collection::vec`], `any::<T>()`, and a rudimentary string
//!   strategy for `&str` regex-style patterns,
//! * the `prop_map` / `prop_filter` combinators,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from the real crate: cases are sampled from a stream seeded
//! deterministically by the test's module path and name (every run explores
//! the same cases), and there is **no shrinking** — a failing case panics
//! with the assertion message directly. That trades minimal counterexamples
//! for zero dependencies and bit-reproducible CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(..)` works after a
/// `use proptest::prelude::*;` glob, as in the real crate.
pub mod prop {
    pub use crate::collection;
}

/// Property-test entry macro: wraps `#[test]` functions whose arguments are
/// drawn from strategies.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     // In real use this fn carries #[test]; attributes pass through.
///     fn addition_commutes(a in -1e6_f64..1e6, b in -1e6_f64..1e6) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal: expands each `fn name(args in strategies) { .. }` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($params:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::rng_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    $crate::__proptest_bind! { __rng, $body, $($params)* }
                }
            }
        )*
    };
}

/// Internal: recursively binds one strategy-drawn argument per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $body:block, ) => { $body };
    ($rng:ident, $body:block) => { $body };
    ($rng:ident, $body:block, mut $var:ident in $strat:expr) => {
        {
            #[allow(unused_mut)]
            let mut $var = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
            $body
        }
    };
    ($rng:ident, $body:block, mut $var:ident in $strat:expr, $($rest:tt)*) => {
        {
            #[allow(unused_mut)]
            let mut $var = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
            $crate::__proptest_bind! { $rng, $body, $($rest)* }
        }
    };
    ($rng:ident, $body:block, $var:ident in $strat:expr) => {
        {
            let $var = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
            $body
        }
    };
    ($rng:ident, $body:block, $var:ident in $strat:expr, $($rest:tt)*) => {
        {
            let $var = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
            $crate::__proptest_bind! { $rng, $body, $($rest)* }
        }
    };
}

/// Asserts a property inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
