//! Value-generation strategies.

use core::ops::{Range, RangeInclusive};
use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// The real proptest `Strategy` produces shrinkable value *trees*; this
/// offline shim samples plain values. Strategies are sampled by reference
/// so one instance can drive many cases.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards values failing `pred`, resampling (up to an internal
    /// retry cap) until one passes.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Every `&S` where `S: Strategy` is itself a strategy (sampling through).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 10000 consecutive samples",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut StdRng) -> f32 {
        let r = self.start as f64..self.end as f64;
        rng.gen_range(r) as f32
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+
    };
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+
    };
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// String-pattern strategy for `&str` literals.
///
/// The real crate interprets the string as a full regex; this shim only
/// honours a trailing `{lo,hi}` repetition count and otherwise generates
/// printable-ASCII strings — sufficient for fuzzing text parsers.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let (lo, hi) = parse_repetition(self).unwrap_or((0, 32));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| {
                // Mostly printable ASCII with some whitespace thrown in.
                let c = rng.gen_range(0x20u32..0x7f);
                char::from_u32(c).unwrap_or(' ')
            })
            .collect()
    }
}

/// Extracts the `{lo,hi}` suffix of a pattern like `"\\PC{0,60}"`.
fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let brace = body.rfind('{')?;
    let (lo, hi) = body[brace + 1..].split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_map_filter() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (1usize..30, 1usize..30)
            .prop_filter("m <= n", |(n, m)| m <= n)
            .prop_map(|(n, m)| n * 100 + m);
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            assert!(v % 100 <= v / 100);
        }
    }

    #[test]
    fn string_pattern_respects_repetition() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = "\\PC{0,60}".sample(&mut rng);
            assert!(s.chars().count() <= 60);
            assert!(s.chars().all(|c| !c.is_control()));
        }
        assert_eq!(parse_repetition("x{3,9}"), Some((3, 9)));
        assert_eq!(parse_repetition("nope"), None);
    }

    #[test]
    fn just_yields_its_value() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(Just(41).sample(&mut rng), 41);
    }
}
