//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the thin slice of the `rand` 0.8 API that the modeling crates
//! actually use: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream `rand`'s ChaCha-based `StdRng`, but every consumer in
//! this workspace treats the generator as an opaque deterministic stream,
//! so only two properties matter: statistical quality good enough for the
//! Monte-Carlo tolerance tests, and bit-reproducibility for a given seed.
//! Both hold. Swapping the real `rand` back in only requires deleting this
//! crate from the workspace `[patch]`-free dependency table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

use core::ops::{Range, RangeInclusive};

/// The raw 32/64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed (subset of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits (the `Standard`
/// distribution of upstream `rand`).
pub trait SampleStandard {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {
        $(impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        })+
    };
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// Ranges samplable via [`Rng::gen_range`] (the `SampleRange` of upstream
/// `rand`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let x = self.start + (self.end - self.start) * f64::sample_standard(rng);
        // `start + span*u` can round up to the excluded end bound when the
        // span is a few ulp; clamp to keep the half-open contract.
        if x >= self.end {
            self.end.next_down().max(self.start)
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty f64 sample range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

macro_rules! impl_range_int {
    ($($t:ty as $wide:ty),+ $(,)?) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty integer sample range");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    // Multiply-shift bounded sampling (Lemire, without the
                    // rejection step — bias is < 2^-32 for the spans used
                    // in this workspace).
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    ((self.start as $wide).wrapping_add(hi as $wide)) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "empty integer sample range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let h = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                    ((lo as $wide).wrapping_add(h as $wide)) as $t
                }
            }
        )+
    };
}

impl_range_int!(
    u8 as u64,
    u16 as u64,
    u32 as u64,
    u64 as u64,
    usize as u64,
    i8 as i64,
    i16 as i64,
    i32 as i64,
    i64 as i64,
    isize as i64,
);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full-range for integers, fair coin for bool).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5000 {
            let x: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
            let k: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&k));
            let j: i64 = rng.gen_range(-10..=10);
            assert!((-10..=10).contains(&j));
        }
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
