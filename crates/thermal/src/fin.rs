//! 1-D self-heating of an interconnect line (fin equation).
//!
//! A line of length `L`, cross-section `A`, thermal conductivity `k`,
//! carrying current density `j` through material of electrical resistivity
//! `ρ`, anchored at ambient-temperature contacts, loses heat to the
//! substrate with linear coupling `g` (W/(m·K)):
//!
//! ```text
//! k·A·θ'' − g·θ + j²·ρ·A = 0,   θ = T − T_ambient,  θ(0) = θ(L) = 0
//! ```
//!
//! Closed form: `θ(x) = (q/g)·(1 − cosh(m(x−L/2))/cosh(mL/2))` with
//! `m = √(g/kA)` and `q = j²ρA`; the `g → 0` limit is the parabola
//! `θ = q·x(L−x)/(2kA)` with peak `qL²/(8kA)`.

use crate::{Error, Result};
use cnt_units::consts::{KTH_CNT_LOW, KTH_CU, RHO_CU_BULK};
use cnt_units::si::{Area, CurrentDensity, Length, Temperature};

/// A Joule-heated line between two ideal (ambient) contacts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfHeatingLine {
    /// Line length.
    pub length: Length,
    /// Conducting cross-section.
    pub area: Area,
    /// Thermal conductivity of the line material, W/(m·K).
    pub thermal_conductivity: f64,
    /// Electrical resistivity of the line material, Ω·m.
    pub electrical_resistivity: f64,
    /// Substrate coupling per unit length, W/(m·K) (0 = suspended line).
    pub substrate_coupling: f64,
    /// Drive current density.
    pub current_density: CurrentDensity,
    /// Ambient / contact temperature.
    pub ambient: Temperature,
}

impl SelfHeatingLine {
    /// A suspended MWCNT line (SThM test case of Section IV.B): d = 10 nm
    /// effective solid cross-section, conservative CNT-bundle
    /// k = 3000 W/(m·K), effective resistivity 8 µΩ·cm.
    pub fn mwcnt(length: Length, current_density: CurrentDensity) -> Self {
        let d = 10e-9;
        Self {
            length,
            area: Area::from_square_meters(core::f64::consts::PI * d * d / 4.0),
            thermal_conductivity: KTH_CNT_LOW,
            electrical_resistivity: 8.0e-8,
            substrate_coupling: 0.0,
            current_density,
            ambient: Temperature::from_kelvin(300.0),
        }
    }

    /// A copper line of the same footprint: bulk k = 385 W/(m·K) and a
    /// size-effect-degraded resistivity of 5 µΩ·cm typical at ~10 nm
    /// dimensions.
    pub fn copper(length: Length, current_density: CurrentDensity) -> Self {
        let d = 10e-9;
        Self {
            length,
            area: Area::from_square_meters(core::f64::consts::PI * d * d / 4.0),
            thermal_conductivity: KTH_CU,
            electrical_resistivity: 3.0 * RHO_CU_BULK,
            substrate_coupling: 0.0,
            current_density,
            ambient: Temperature::from_kelvin(300.0),
        }
    }

    /// Validates physical sanity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        let checks: [(&'static str, f64, bool); 5] = [
            ("length", self.length.meters(), self.length.meters() > 0.0),
            (
                "area",
                self.area.square_meters(),
                self.area.square_meters() > 0.0,
            ),
            (
                "thermal_conductivity",
                self.thermal_conductivity,
                self.thermal_conductivity > 0.0,
            ),
            (
                "electrical_resistivity",
                self.electrical_resistivity,
                self.electrical_resistivity > 0.0,
            ),
            (
                "substrate_coupling",
                self.substrate_coupling,
                self.substrate_coupling >= 0.0,
            ),
        ];
        for (name, value, ok) in checks {
            if !ok {
                return Err(Error::InvalidParameter { name, value });
            }
        }
        Ok(())
    }

    /// Joule heating per unit length `q = j²·ρ·A`, W/m.
    pub fn heating_per_length(&self) -> f64 {
        let j = self.current_density.amps_per_square_meter();
        j * j * self.electrical_resistivity * self.area.square_meters()
    }

    /// Closed-form temperature rise at position `x` (metres from the left
    /// contact).
    pub fn theta_at(&self, x: f64) -> f64 {
        let l = self.length.meters();
        let x = x.clamp(0.0, l);
        let ka = self.thermal_conductivity * self.area.square_meters();
        let q = self.heating_per_length();
        if self.substrate_coupling <= 0.0 {
            return q * x * (l - x) / (2.0 * ka);
        }
        let m = (self.substrate_coupling / ka).sqrt();
        let peak = q / self.substrate_coupling;
        peak * (1.0 - ((m * (x - l / 2.0)).cosh()) / ((m * l / 2.0).cosh()))
    }

    /// Peak temperature (line centre).
    pub fn peak_temperature(&self) -> Temperature {
        Temperature::from_kelvin(self.ambient.kelvin() + self.theta_at(self.length.meters() / 2.0))
    }

    /// Samples the analytic profile at `n` evenly spaced points.
    ///
    /// # Errors
    ///
    /// [`Error::TooFewSamples`] for `n < 3` and validation errors.
    pub fn analytic_profile(&self, n: usize) -> Result<TemperatureProfile> {
        self.validate()?;
        if n < 3 {
            return Err(Error::TooFewSamples { got: n, min: 3 });
        }
        let l = self.length.meters();
        let xs: Vec<f64> = (0..n).map(|i| l * i as f64 / (n - 1) as f64).collect();
        let ts: Vec<f64> = xs
            .iter()
            .map(|&x| self.ambient.kelvin() + self.theta_at(x))
            .collect();
        Ok(TemperatureProfile {
            position_m: xs,
            temperature_k: ts,
        })
    }

    /// Solves the fin equation by second-order finite differences — used to
    /// validate the closed form and to support spatially varying
    /// extensions.
    ///
    /// # Errors
    ///
    /// [`Error::TooFewSamples`] for `n < 3` and validation errors.
    pub fn solve_fd(&self, n: usize) -> Result<TemperatureProfile> {
        self.validate()?;
        if n < 3 {
            return Err(Error::TooFewSamples { got: n, min: 3 });
        }
        let l = self.length.meters();
        let h = l / (n - 1) as f64;
        let ka = self.thermal_conductivity * self.area.square_meters();
        let q = self.heating_per_length();
        let g = self.substrate_coupling;
        // Tridiagonal Thomas solve for θ on interior nodes.
        let m = n - 2;
        let diag = -2.0 * ka / (h * h) - g;
        let off = ka / (h * h);
        let mut c = vec![0.0; m]; // modified upper
        let mut d = vec![0.0; m]; // modified rhs
        for i in 0..m {
            let rhs = -q;
            if i == 0 {
                c[i] = off / diag;
                d[i] = rhs / diag;
            } else {
                let denom = diag - off * c[i - 1];
                c[i] = off / denom;
                d[i] = (rhs - off * d[i - 1]) / denom;
            }
        }
        let mut theta = vec![0.0; m];
        theta[m - 1] = d[m - 1];
        for i in (0..m - 1).rev() {
            theta[i] = d[i] - c[i] * theta[i + 1];
        }
        let mut xs = Vec::with_capacity(n);
        let mut ts = Vec::with_capacity(n);
        for i in 0..n {
            xs.push(h * i as f64);
            let th = if i == 0 || i == n - 1 {
                0.0
            } else {
                theta[i - 1]
            };
            ts.push(self.ambient.kelvin() + th);
        }
        Ok(TemperatureProfile {
            position_m: xs,
            temperature_k: ts,
        })
    }
}

/// A sampled temperature profile along a line.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperatureProfile {
    /// Sample positions, metres.
    pub position_m: Vec<f64>,
    /// Temperatures, kelvin.
    pub temperature_k: Vec<f64>,
}

impl TemperatureProfile {
    /// Peak temperature of the profile.
    pub fn peak(&self) -> Temperature {
        Temperature::from_kelvin(
            self.temperature_k
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// Linear interpolation of the temperature at `x` metres.
    pub fn at(&self, x: f64) -> f64 {
        cnt_units::math::interp1(&self.position_m, &self.temperature_k, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(amps_per_cm2: f64) -> CurrentDensity {
        CurrentDensity::from_amps_per_square_centimeter(amps_per_cm2)
    }

    #[test]
    fn suspended_peak_matches_parabola() {
        let line = SelfHeatingLine::mwcnt(Length::from_micrometers(2.0), j(5e8));
        let q = line.heating_per_length();
        let ka = line.thermal_conductivity * line.area.square_meters();
        let expected = q * (2e-6f64).powi(2) / (8.0 * ka);
        let peak = line.peak_temperature().kelvin() - 300.0;
        assert!((peak - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn fd_matches_analytic_with_and_without_coupling() {
        for g in [0.0, 0.2] {
            let mut line = SelfHeatingLine::copper(Length::from_micrometers(1.0), j(5e6));
            line.substrate_coupling = g;
            let ana = line.analytic_profile(101).unwrap();
            let fd = line.solve_fd(101).unwrap();
            for (a, b) in ana.temperature_k.iter().zip(&fd.temperature_k) {
                assert!((a - b).abs() < 0.02 * (a - 300.0).abs().max(1e-6) + 1e-9);
            }
        }
    }

    #[test]
    fn cnt_runs_cooler_than_cu_at_matched_current_density() {
        // The Section IV.B motivation: Kth,CNT ≫ Kth,Cu means CNT lines
        // evacuate Joule heat to the contacts far better.
        let jd = j(2e7);
        let cnt = SelfHeatingLine::mwcnt(Length::from_micrometers(2.0), jd);
        let cu = SelfHeatingLine::copper(Length::from_micrometers(2.0), jd);
        let dt_cnt = cnt.peak_temperature().kelvin() - 300.0;
        let dt_cu = cu.peak_temperature().kelvin() - 300.0;
        assert!(
            dt_cnt < 0.4 * dt_cu,
            "CNT ΔT = {dt_cnt:.3} K vs Cu ΔT = {dt_cu:.3} K"
        );
    }

    #[test]
    fn substrate_coupling_caps_the_peak() {
        let mut line = SelfHeatingLine::copper(Length::from_micrometers(10.0), j(2e7));
        let suspended = line.peak_temperature().kelvin();
        line.substrate_coupling = 1.0;
        let coupled = line.peak_temperature().kelvin();
        assert!(coupled < suspended);
        // Long coupled line: peak saturates at q/g, independent of length.
        let q = line.heating_per_length();
        let cap = q / line.substrate_coupling;
        assert!((coupled - 300.0) <= cap * (1.0 + 1e-9));
    }

    #[test]
    fn heating_scales_as_j_squared() {
        let l1 = SelfHeatingLine::mwcnt(Length::from_micrometers(1.0), j(1e8));
        let l2 = SelfHeatingLine::mwcnt(Length::from_micrometers(1.0), j(2e8));
        let r = (l2.peak_temperature().kelvin() - 300.0) / (l1.peak_temperature().kelvin() - 300.0);
        assert!((r - 4.0).abs() < 1e-9, "ratio {r}");
    }

    #[test]
    fn profile_is_symmetric_and_peaks_at_centre() {
        let line = SelfHeatingLine::mwcnt(Length::from_micrometers(3.0), j(4e8));
        let p = line.analytic_profile(201).unwrap();
        let n = p.position_m.len();
        for i in 0..n / 2 {
            let a = p.temperature_k[i];
            let b = p.temperature_k[n - 1 - i];
            assert!((a - b).abs() < 1e-9);
        }
        let peak = p.peak().kelvin();
        assert!((p.at(1.5e-6) - peak).abs() < 1e-6);
        assert_eq!(p.temperature_k[0], 300.0);
    }

    #[test]
    fn validation_and_small_grids() {
        let mut bad = SelfHeatingLine::mwcnt(Length::from_micrometers(1.0), j(1e8));
        bad.thermal_conductivity = -1.0;
        assert!(bad.validate().is_err());
        let ok = SelfHeatingLine::mwcnt(Length::from_micrometers(1.0), j(1e8));
        assert!(ok.analytic_profile(2).is_err());
        assert!(ok.solve_fd(2).is_err());
    }
}
