//! Thermal-conductivity extraction from measured profiles (the inverse
//! problem the paper plans to run on SThM data: "we can study their
//! self-heating and extract thermal conductivity data", Section IV.B).

use crate::fin::{SelfHeatingLine, TemperatureProfile};
use crate::{Error, Result};

/// Result of a conductivity extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KthExtraction {
    /// Best-fit thermal conductivity, W/(m·K).
    pub k_fit: f64,
    /// Root-mean-square residual of the fit, kelvin.
    pub rms_residual: f64,
}

/// Extracts the thermal conductivity from a measured temperature profile,
/// given the line's known geometry, drive and coupling (everything in
/// `template` except `thermal_conductivity`, which is ignored).
///
/// Method: golden-section minimization of the sum-of-squares misfit
/// between the analytic fin solution and the measurement over
/// `k ∈ [k_lo, k_hi]`.
///
/// # Errors
///
/// * [`Error::TooFewSamples`] if the measurement has < 4 points;
/// * [`Error::InvalidParameter`] for a bad search bracket;
/// * [`Error::ExtractionFailed`] if the optimum sits on the bracket edge
///   (the true value is outside the search range).
pub fn extract_thermal_conductivity(
    template: &SelfHeatingLine,
    measured: &TemperatureProfile,
    k_lo: f64,
    k_hi: f64,
) -> Result<KthExtraction> {
    if measured.position_m.len() < 4 {
        return Err(Error::TooFewSamples {
            got: measured.position_m.len(),
            min: 4,
        });
    }
    if !(k_lo > 0.0 && k_hi > k_lo) {
        return Err(Error::InvalidParameter {
            name: "k bracket",
            value: k_lo,
        });
    }

    let misfit = |k: f64| -> f64 {
        let mut line = *template;
        line.thermal_conductivity = k;
        measured
            .position_m
            .iter()
            .zip(&measured.temperature_k)
            .map(|(&x, &t)| {
                let model = line.ambient.kelvin() + line.theta_at(x);
                (model - t) * (model - t)
            })
            .sum()
    };

    // Golden-section search in log space (k spans decades).
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (k_lo.ln(), k_hi.ln());
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let mut fc = misfit(c.exp());
    let mut fd = misfit(d.exp());
    for _ in 0..200 {
        if (b - a).abs() < 1e-6 {
            break;
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = misfit(c.exp());
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = misfit(d.exp());
        }
    }
    let k_fit = (0.5 * (a + b)).exp();
    // Reject edge solutions: the bracket did not contain the optimum.
    if k_fit < k_lo * 1.02 || k_fit > k_hi * 0.98 {
        return Err(Error::ExtractionFailed(
            "optimum at bracket edge; widen the k search range",
        ));
    }
    let n = measured.position_m.len() as f64;
    Ok(KthExtraction {
        k_fit,
        rms_residual: (misfit(k_fit) / n).sqrt(),
    })
}

/// Quick closed-form estimate for a *suspended* line from the peak
/// temperature rise: `k = q·L²/(8·A·ΔT_peak)`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when the measured peak does not
/// exceed ambient.
pub fn kth_from_peak(template: &SelfHeatingLine, measured_peak_kelvin: f64) -> Result<f64> {
    let dt = measured_peak_kelvin - template.ambient.kelvin();
    if dt <= 0.0 {
        return Err(Error::InvalidParameter {
            name: "measured_peak (no temperature rise)",
            value: measured_peak_kelvin,
        });
    }
    let q = template.heating_per_length();
    let l = template.length.meters();
    Ok(q * l * l / (8.0 * template.area.square_meters() * dt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sthm::SthmInstrument;
    use cnt_units::consts::{KTH_CNT_HIGH, KTH_CNT_LOW};
    use cnt_units::si::{CurrentDensity, Length};

    fn line_with_k(k: f64) -> SelfHeatingLine {
        let mut l = SelfHeatingLine::mwcnt(
            Length::from_micrometers(2.0),
            CurrentDensity::from_amps_per_square_centimeter(5e8),
        );
        l.thermal_conductivity = k;
        l
    }

    #[test]
    fn recovers_planted_k_from_clean_profile() {
        let truth = line_with_k(5000.0);
        let profile = truth.analytic_profile(201).unwrap();
        let fit = extract_thermal_conductivity(&truth, &profile, 100.0, 50_000.0).unwrap();
        assert!(
            (fit.k_fit - 5000.0).abs() / 5000.0 < 0.01,
            "k_fit = {}",
            fit.k_fit
        );
        assert!(fit.rms_residual < 1e-3);
    }

    #[test]
    fn recovers_k_within_band_from_noisy_sthm_scan() {
        // The full virtual experiment: heat, scan, invert. The recovered k
        // must land inside the paper's 3000–10000 W/(m·K) band when the
        // truth does.
        let truth = line_with_k(6000.0);
        let profile = truth.analytic_profile(401).unwrap();
        let scan = SthmInstrument::nanoprobe().scan(&profile, 7).unwrap();
        let fit = extract_thermal_conductivity(&truth, &scan, 100.0, 100_000.0).unwrap();
        assert!(
            (KTH_CNT_LOW..=KTH_CNT_HIGH).contains(&fit.k_fit),
            "k_fit = {}",
            fit.k_fit
        );
        assert!(
            (fit.k_fit - 6000.0).abs() / 6000.0 < 0.25,
            "k_fit = {}",
            fit.k_fit
        );
    }

    #[test]
    fn peak_formula_is_exact_for_suspended_lines() {
        let truth = line_with_k(4200.0);
        let peak = truth.peak_temperature().kelvin();
        let k = kth_from_peak(&truth, peak).unwrap();
        assert!((k - 4200.0).abs() / 4200.0 < 1e-9);
        assert!(kth_from_peak(&truth, 299.0).is_err());
    }

    #[test]
    fn edge_brackets_are_rejected() {
        let truth = line_with_k(5000.0);
        let profile = truth.analytic_profile(101).unwrap();
        // Bracket far below the true value → edge solution → error.
        let r = extract_thermal_conductivity(&truth, &profile, 1.0, 50.0);
        assert!(matches!(r, Err(Error::ExtractionFailed(_))));
        // Bad bracket order.
        assert!(extract_thermal_conductivity(&truth, &profile, 10.0, 5.0).is_err());
    }

    #[test]
    fn distinguishes_cnt_from_copper() {
        // A measured copper profile must NOT fit inside the CNT band.
        let cu = SelfHeatingLine::copper(
            Length::from_micrometers(2.0),
            CurrentDensity::from_amps_per_square_centimeter(2e7),
        );
        let profile = cu.analytic_profile(201).unwrap();
        let fit = extract_thermal_conductivity(&cu, &profile, 10.0, 100_000.0).unwrap();
        assert!(fit.k_fit < 1000.0, "copper k_fit = {}", fit.k_fit);
    }
}
