//! Virtual scanning thermal microscope (SThM).
//!
//! "Scanning thermal microscopy with resistively heated probes holds the
//! potential to perform temperature mapping of MWCNT interconnects under
//! operation" (Section IV.B, references \[24\]\[25\]). The virtual instrument
//! convolves the true temperature profile with a Gaussian probe response
//! and adds read-out noise, producing the data the extraction module
//! inverts.

use crate::fin::TemperatureProfile;
use crate::{Error, Result};
use cnt_units::rand_ext;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SThM instrument parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SthmInstrument {
    /// Probe thermal-response FWHM, metres (tip–sample contact scale).
    pub probe_fwhm: f64,
    /// Read-out noise sigma, kelvin.
    pub noise_kelvin: f64,
    /// Scan pixel pitch, metres.
    pub pixel_pitch: f64,
}

impl SthmInstrument {
    /// A realistic nanoscale probe: 50 nm FWHM, 0.2 K noise, 20 nm pixels
    /// (from the capabilities reported in reference \[25\]).
    pub fn nanoprobe() -> Self {
        Self {
            probe_fwhm: 50e-9,
            noise_kelvin: 0.2,
            pixel_pitch: 20e-9,
        }
    }

    /// Validates instrument parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive FWHM/pitch or
    /// negative noise.
    pub fn validate(&self) -> Result<()> {
        if self.probe_fwhm <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "probe_fwhm",
                value: self.probe_fwhm,
            });
        }
        if self.pixel_pitch <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "pixel_pitch",
                value: self.pixel_pitch,
            });
        }
        if self.noise_kelvin < 0.0 {
            return Err(Error::InvalidParameter {
                name: "noise_kelvin",
                value: self.noise_kelvin,
            });
        }
        Ok(())
    }

    /// The number of scan pixels a truth profile produces.
    pub fn pixel_count(&self, truth: &TemperatureProfile) -> usize {
        let x0 = truth.position_m[0];
        let x1 = *truth.position_m.last().expect("non-empty");
        ((x1 - x0) / self.pixel_pitch).floor() as usize + 1
    }

    /// The scan's pixel positions for a truth profile, metres — exactly
    /// the grid [`Self::scan`] samples.
    pub fn pixel_positions(&self, truth: &TemperatureProfile) -> Vec<f64> {
        let x0 = truth.position_m[0];
        (0..self.pixel_count(truth))
            .map(|p| x0 + p as f64 * self.pixel_pitch)
            .collect()
    }

    /// Applies the seeded read-out noise to precomputed noise-free probe
    /// readings — the serial tail of [`Self::scan`]. Callers that
    /// evaluate [`Self::probe_temperature`] per pixel elsewhere (e.g. on
    /// a thread pool) hand the results here so the instrument's noise
    /// model keeps a single owner; one normal draw per pixel, pixel
    /// order, matching `scan` exactly.
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths.
    pub fn apply_readout_noise(
        &self,
        position_m: Vec<f64>,
        probe_temps_k: &[f64],
        seed: u64,
    ) -> TemperatureProfile {
        assert_eq!(
            position_m.len(),
            probe_temps_k.len(),
            "one probe reading per pixel"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let temperature_k = probe_temps_k
            .iter()
            .map(|t| t + rand_ext::normal(&mut rng, 0.0, self.noise_kelvin))
            .collect();
        TemperatureProfile {
            position_m,
            temperature_k,
        }
    }

    /// The noise-free probe reading at position `x`: the discrete Gaussian
    /// convolution of the truth profile with the probe response. This is
    /// the per-pixel kernel of [`Self::scan`] — exposed so callers can
    /// evaluate pixels independently (e.g. on a thread pool) and add the
    /// serially-drawn read-out noise afterwards.
    pub fn probe_temperature(&self, truth: &TemperatureProfile, x: f64) -> f64 {
        // FWHM = 2·√(2·ln 2)·σ.
        let sigma = self.probe_fwhm / (2.0 * (2.0 * (2.0_f64).ln()).sqrt());
        let mut wsum = 0.0;
        let mut tsum = 0.0;
        for (xt, tt) in truth.position_m.iter().zip(&truth.temperature_k) {
            let u = (xt - x) / sigma;
            if u.abs() > 5.0 {
                continue;
            }
            let w = (-0.5 * u * u).exp();
            wsum += w;
            tsum += w * tt;
        }
        if wsum > 0.0 {
            tsum / wsum
        } else {
            truth.at(x)
        }
    }

    /// Scans a true temperature profile, returning the measured profile
    /// (probe-convolved, noisy, resampled at the pixel pitch).
    ///
    /// # Errors
    ///
    /// Propagates validation errors; requires ≥ 2 sample points.
    pub fn scan(&self, truth: &TemperatureProfile, seed: u64) -> Result<TemperatureProfile> {
        self.validate()?;
        if truth.position_m.len() < 2 {
            return Err(Error::TooFewSamples {
                got: truth.position_m.len(),
                min: 2,
            });
        }
        let xs = self.pixel_positions(truth);
        let ts: Vec<f64> = xs
            .iter()
            .map(|&x| self.probe_temperature(truth, x))
            .collect();
        Ok(self.apply_readout_noise(xs, &ts, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fin::SelfHeatingLine;
    use cnt_units::si::{CurrentDensity, Length};

    fn truth() -> TemperatureProfile {
        SelfHeatingLine::mwcnt(
            Length::from_micrometers(2.0),
            CurrentDensity::from_amps_per_square_centimeter(5e8),
        )
        .analytic_profile(401)
        .unwrap()
    }

    #[test]
    fn scan_preserves_peak_location_and_smooths() {
        let t = truth();
        let inst = SthmInstrument {
            noise_kelvin: 0.0,
            ..SthmInstrument::nanoprobe()
        };
        let scan = inst.scan(&t, 1).unwrap();
        // Peak near the centre.
        let (i_max, _) = scan
            .temperature_k
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let x_peak = scan.position_m[i_max];
        assert!((x_peak - 1e-6).abs() < 0.15e-6, "peak at {x_peak}");
        // Convolution can only lower the maximum.
        assert!(scan.peak().kelvin() <= t.peak().kelvin() + 1e-9);
    }

    #[test]
    fn wider_probe_blurs_more() {
        let t = truth();
        let narrow = SthmInstrument {
            probe_fwhm: 20e-9,
            noise_kelvin: 0.0,
            pixel_pitch: 20e-9,
        };
        let wide = SthmInstrument {
            probe_fwhm: 400e-9,
            noise_kelvin: 0.0,
            pixel_pitch: 20e-9,
        };
        let pn = narrow.scan(&t, 1).unwrap().peak().kelvin();
        let pw = wide.scan(&t, 1).unwrap().peak().kelvin();
        assert!(pw < pn, "wide probe reads a lower peak: {pw} vs {pn}");
    }

    #[test]
    fn scan_equals_its_published_decomposition() {
        // The pool-ported experiments rebuild a scan from
        // pixel_positions + probe_temperature + apply_readout_noise;
        // that decomposition must stay bit-identical to scan() itself.
        let t = truth();
        let inst = SthmInstrument::nanoprobe();
        let xs = inst.pixel_positions(&t);
        let probe: Vec<f64> = xs.iter().map(|&x| inst.probe_temperature(&t, x)).collect();
        let composed = inst.apply_readout_noise(xs, &probe, 9);
        let direct = inst.scan(&t, 9).unwrap();
        assert_eq!(composed, direct);
    }

    #[test]
    fn noise_is_reproducible_and_scales() {
        let t = truth();
        let inst = SthmInstrument::nanoprobe();
        let a = inst.scan(&t, 42).unwrap();
        let b = inst.scan(&t, 42).unwrap();
        assert_eq!(a, b);
        let c = inst.scan(&t, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn validation() {
        let mut bad = SthmInstrument::nanoprobe();
        bad.probe_fwhm = 0.0;
        assert!(bad.scan(&truth(), 1).is_err());
        let mut bad = SthmInstrument::nanoprobe();
        bad.noise_kelvin = -1.0;
        assert!(bad.scan(&truth(), 1).is_err());
    }
}
