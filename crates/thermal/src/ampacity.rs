//! Thermally limited ampacity: the largest current density a line can
//! carry before its peak temperature reaches a critical value.
//!
//! Complements the electromigration-limited ampacity of `cnt-reliability`:
//! the overall current limit of an interconnect is the minimum of the two.

use crate::fin::SelfHeatingLine;
use crate::{Error, Result};
use cnt_units::si::{CurrentDensity, Temperature};

/// Oxidation threshold of carbon nanotubes in air (~600 °C).
pub fn cnt_breakdown_temperature() -> Temperature {
    Temperature::from_celsius(600.0)
}

/// Practical reliability ceiling for copper BEOL lines (~105 °C operating
/// plus margin; EM acceleration makes sustained heat deadly long before
/// melting).
pub fn cu_thermal_limit() -> Temperature {
    Temperature::from_celsius(150.0)
}

/// Maximum current density such that the line's peak temperature stays at
/// or below `t_crit`.
///
/// The suspended/coupled fin solution scales as `ΔT ∝ j²`, so the limit is
/// analytic: `j_max = j_ref·√(ΔT_crit/ΔT_ref)` for any reference drive.
///
/// # Errors
///
/// * [`Error::InvalidParameter`] if `t_crit` is not above ambient;
/// * propagates line-validation errors.
pub fn thermal_ampacity(line: &SelfHeatingLine, t_crit: Temperature) -> Result<CurrentDensity> {
    line.validate()?;
    let dt_crit = t_crit.kelvin() - line.ambient.kelvin();
    if dt_crit <= 0.0 {
        return Err(Error::InvalidParameter {
            name: "t_crit (must exceed ambient)",
            value: t_crit.kelvin(),
        });
    }
    let j_ref = 1.0e10; // 1 MA/cm² reference, A/m²
    let mut probe = *line;
    probe.current_density = CurrentDensity::from_amps_per_square_meter(j_ref);
    let dt_ref = probe.peak_temperature().kelvin() - probe.ambient.kelvin();
    if dt_ref <= 0.0 {
        // No heating at all (e.g. zero length): effectively unlimited.
        return Ok(CurrentDensity::from_amps_per_square_meter(f64::INFINITY));
    }
    Ok(CurrentDensity::from_amps_per_square_meter(
        j_ref * (dt_crit / dt_ref).sqrt(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnt_units::si::Length;

    fn j0() -> CurrentDensity {
        CurrentDensity::from_amps_per_square_centimeter(1e6)
    }

    #[test]
    fn limit_is_consistent_with_forward_model() {
        let line = SelfHeatingLine::mwcnt(Length::from_micrometers(2.0), j0());
        let jmax = thermal_ampacity(&line, cnt_breakdown_temperature()).unwrap();
        let mut at_limit = line;
        at_limit.current_density = jmax;
        let peak = at_limit.peak_temperature();
        assert!(
            (peak.kelvin() - cnt_breakdown_temperature().kelvin()).abs() < 0.5,
            "peak at limit = {} K",
            peak.kelvin()
        );
    }

    #[test]
    fn cnt_line_out_carries_cu_line_thermally() {
        let cnt = SelfHeatingLine::mwcnt(Length::from_micrometers(2.0), j0());
        let cu = SelfHeatingLine::copper(Length::from_micrometers(2.0), j0());
        let j_cnt = thermal_ampacity(&cnt, cnt_breakdown_temperature()).unwrap();
        let j_cu = thermal_ampacity(&cu, cu_thermal_limit()).unwrap();
        assert!(
            j_cnt.amps_per_square_centimeter() > 3.0 * j_cu.amps_per_square_centimeter(),
            "CNT {} vs Cu {} A/cm²",
            j_cnt.amps_per_square_centimeter(),
            j_cu.amps_per_square_centimeter()
        );
    }

    #[test]
    fn shorter_lines_carry_more() {
        let long = SelfHeatingLine::mwcnt(Length::from_micrometers(5.0), j0());
        let short = SelfHeatingLine::mwcnt(Length::from_micrometers(0.5), j0());
        let jl = thermal_ampacity(&long, cnt_breakdown_temperature()).unwrap();
        let js = thermal_ampacity(&short, cnt_breakdown_temperature()).unwrap();
        assert!(js.amps_per_square_meter() > jl.amps_per_square_meter());
    }

    #[test]
    fn invalid_critical_temperature() {
        let line = SelfHeatingLine::mwcnt(Length::from_micrometers(1.0), j0());
        assert!(thermal_ampacity(&line, Temperature::from_kelvin(250.0)).is_err());
    }

    #[test]
    fn substrate_coupling_raises_the_limit() {
        let mut coupled = SelfHeatingLine::copper(Length::from_micrometers(10.0), j0());
        coupled.substrate_coupling = 1.0;
        let suspended = SelfHeatingLine::copper(Length::from_micrometers(10.0), j0());
        let j_c = thermal_ampacity(&coupled, cu_thermal_limit()).unwrap();
        let j_s = thermal_ampacity(&suspended, cu_thermal_limit()).unwrap();
        assert!(j_c.amps_per_square_meter() > j_s.amps_per_square_meter());
    }
}
