//! Thermal resistance of via stacks — the paper's §I claim that "heat
//! diffuses more efficiently through CNT vias than Cu vias and can
//! reduce the on-chip temperature", made quantitative.
//!
//! A via is modelled as a 1-D conduction stack: each layer contributes
//! `R_th = t / (k·A)`, interfaces add a boundary resistance. The figure
//! of merit is the temperature drop a via column develops while sinking
//! a given heat flow to the substrate.

use crate::{Error, Result};
use cnt_units::consts::{KTH_CNT_LOW, KTH_CU};
use cnt_units::si::{Area, Length, Power, Temperature};

/// One layer of a via/ILD stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackLayer {
    /// Layer thickness.
    pub thickness: Length,
    /// Thermal conductivity, W/(m·K).
    pub conductivity: f64,
}

/// A via column: layers in series plus per-interface boundary resistance.
#[derive(Debug, Clone, PartialEq)]
pub struct ViaStack {
    layers: Vec<StackLayer>,
    cross_section: Area,
    /// Thermal boundary resistance per interface, K·m²/W.
    interface_resistance: f64,
}

impl ViaStack {
    /// Builds a stack.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] for empty stacks, non-positive areas,
    /// thicknesses or conductivities, or negative interface resistance.
    pub fn new(
        layers: Vec<StackLayer>,
        cross_section: Area,
        interface_resistance: f64,
    ) -> Result<Self> {
        if layers.is_empty() {
            return Err(Error::InvalidParameter {
                name: "layers (empty stack)",
                value: 0.0,
            });
        }
        if cross_section.square_meters() <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "cross_section",
                value: cross_section.square_meters(),
            });
        }
        if interface_resistance < 0.0 {
            return Err(Error::InvalidParameter {
                name: "interface_resistance",
                value: interface_resistance,
            });
        }
        for l in &layers {
            if l.thickness.meters() <= 0.0 || l.conductivity <= 0.0 {
                return Err(Error::InvalidParameter {
                    name: "layer thickness/conductivity",
                    value: l.conductivity.min(l.thickness.meters()),
                });
            }
        }
        Ok(Self {
            layers,
            cross_section,
            interface_resistance,
        })
    }

    /// A two-level Cu via stack (60 nm vias, TaN-lined) of the given
    /// footprint.
    ///
    /// # Errors
    ///
    /// Propagates constructor validation.
    pub fn copper(cross_section: Area) -> Result<Self> {
        Self::new(
            vec![
                StackLayer {
                    thickness: Length::from_nanometers(60.0),
                    conductivity: KTH_CU,
                },
                StackLayer {
                    thickness: Length::from_nanometers(60.0),
                    conductivity: KTH_CU,
                },
            ],
            cross_section,
            1.0e-9, // metal/liner boundary
        )
    }

    /// The same stack built from CNT bundles (conservative
    /// 3000 W/(m·K) tube fraction) with *developed* end contacts matching
    /// the metal/liner boundary. At these dimensions the stack is
    /// interface-dominated, so the paper's "heat diffuses more
    /// efficiently through CNT vias" claim holds **only** under this
    /// contact condition — see [`ViaStack::cnt_poor_contacts`] for the
    /// inverse case, which is why the paper keeps hammering on contacts.
    ///
    /// # Errors
    ///
    /// Propagates constructor validation.
    pub fn cnt(cross_section: Area) -> Result<Self> {
        Self::new(
            vec![
                StackLayer {
                    thickness: Length::from_nanometers(60.0),
                    conductivity: KTH_CNT_LOW,
                },
                StackLayer {
                    thickness: Length::from_nanometers(60.0),
                    conductivity: KTH_CNT_LOW,
                },
            ],
            cross_section,
            1.0e-9, // end contacts as good as metal/liner
        )
    }

    /// The CNT stack with today's typical (poor) end-contact thermal
    /// boundary (~4×10⁻⁹ K·m²/W): the conductivity advantage is wiped
    /// out — the quantitative version of the paper's contact warnings.
    ///
    /// # Errors
    ///
    /// Propagates constructor validation.
    pub fn cnt_poor_contacts(cross_section: Area) -> Result<Self> {
        let mut stack = Self::cnt(cross_section)?;
        stack.interface_resistance = 4.0e-9;
        Ok(stack)
    }

    /// Total thermal resistance, K/W.
    pub fn thermal_resistance(&self) -> f64 {
        let a = self.cross_section.square_meters();
        let conduction: f64 = self
            .layers
            .iter()
            .map(|l| l.thickness.meters() / (l.conductivity * a))
            .sum();
        // One interface per layer boundary plus the two terminals.
        let n_interfaces = (self.layers.len() + 1) as f64;
        conduction + n_interfaces * self.interface_resistance / a
    }

    /// Temperature drop across the stack while sinking `heat`.
    pub fn temperature_drop(&self, heat: Power) -> Temperature {
        Temperature::from_kelvin(heat.watts() * self.thermal_resistance())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area() -> Area {
        Area::from_square_nanometers(60.0 * 60.0)
    }

    #[test]
    fn cnt_via_conducts_heat_better_with_developed_contacts() {
        // The §I claim holds when the end contacts match metal quality.
        let cu = ViaStack::copper(area()).unwrap();
        let cnt = ViaStack::cnt(area()).unwrap();
        let q = Power::from_microwatts(10.0);
        let dt_cu = cu.temperature_drop(q).kelvin();
        let dt_cnt = cnt.temperature_drop(q).kelvin();
        assert!(
            dt_cnt < dt_cu,
            "CNT via ΔT {dt_cnt:.2} K vs Cu {dt_cu:.2} K"
        );
    }

    #[test]
    fn poor_contacts_invert_the_thermal_advantage() {
        // Why the paper's conclusion keeps stressing CNT-metal contacts:
        // at 60 nm dimensions the stack is interface-dominated.
        let cu = ViaStack::copper(area()).unwrap();
        let poor = ViaStack::cnt_poor_contacts(area()).unwrap();
        let q = Power::from_microwatts(10.0);
        assert!(
            poor.temperature_drop(q).kelvin() > cu.temperature_drop(q).kelvin(),
            "poor contacts should lose to Cu"
        );
    }

    #[test]
    fn resistance_adds_in_series() {
        let single = ViaStack::new(
            vec![StackLayer {
                thickness: Length::from_nanometers(60.0),
                conductivity: KTH_CU,
            }],
            area(),
            0.0,
        )
        .unwrap();
        let double = ViaStack::new(
            vec![
                StackLayer {
                    thickness: Length::from_nanometers(60.0),
                    conductivity: KTH_CU,
                },
                StackLayer {
                    thickness: Length::from_nanometers(60.0),
                    conductivity: KTH_CU,
                },
            ],
            area(),
            0.0,
        )
        .unwrap();
        let r1 = single.thermal_resistance();
        let r2 = double.thermal_resistance();
        assert!((r2 / r1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn interfaces_matter_at_nanoscale() {
        let no_tbr = ViaStack::new(
            vec![StackLayer {
                thickness: Length::from_nanometers(60.0),
                conductivity: KTH_CNT_LOW,
            }],
            area(),
            0.0,
        )
        .unwrap();
        let with_tbr = ViaStack::new(
            vec![StackLayer {
                thickness: Length::from_nanometers(60.0),
                conductivity: KTH_CNT_LOW,
            }],
            area(),
            4.0e-9,
        )
        .unwrap();
        // For a high-k CNT via the boundary resistance dominates.
        assert!(with_tbr.thermal_resistance() > 5.0 * no_tbr.thermal_resistance());
    }

    #[test]
    fn drop_scales_linearly_with_heat() {
        let cu = ViaStack::copper(area()).unwrap();
        let d1 = cu.temperature_drop(Power::from_microwatts(1.0)).kelvin();
        let d3 = cu.temperature_drop(Power::from_microwatts(3.0)).kelvin();
        assert!((d3 / d1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(ViaStack::new(vec![], area(), 0.0).is_err());
        assert!(ViaStack::copper(Area::from_square_meters(0.0)).is_err());
        assert!(ViaStack::new(
            vec![StackLayer {
                thickness: Length::ZERO,
                conductivity: KTH_CU
            }],
            area(),
            0.0
        )
        .is_err());
        assert!(ViaStack::new(
            vec![StackLayer {
                thickness: Length::from_nanometers(60.0),
                conductivity: KTH_CU
            }],
            area(),
            -1.0
        )
        .is_err());
    }
}
