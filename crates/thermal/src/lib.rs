//! Electro-thermal solvers, self-heating and scanning-thermal-microscopy
//! virtual instruments.
//!
//! Section IV.B of the paper motivates this crate: CNT interconnects carry
//! a thermal-conductivity advantage of an order of magnitude over copper
//! (3000–10000 W/(m·K) versus 385), scanning thermal microscopy (SThM) is
//! the technique of choice for mapping self-heating of 10 nm-class lines,
//! and thermal conductivity is *extracted* from such maps. We build all
//! three layers:
//!
//! * [`fin`] — the 1-D fin (heat) equation for a Joule-heated line between
//!   two contacts, analytic and finite-difference solutions;
//! * [`sthm`] — a virtual SThM: probe-convolved, noisy temperature maps;
//! * [`extract`] — the inverse problem: recover the thermal conductivity
//!   from (noisy) measured profiles, as the paper plans on real hardware;
//! * [`ampacity`] — thermally limited maximum current density (breakdown
//!   when the peak temperature hits a critical value).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ampacity;
pub mod extract;
pub mod fin;
pub mod sthm;
pub mod via;

pub use fin::{SelfHeatingLine, TemperatureProfile};

use core::fmt;

/// Errors produced by the thermal models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A parameter was outside its physical domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Too few samples/points requested.
    TooFewSamples {
        /// Requested count.
        got: usize,
        /// Minimum required.
        min: usize,
    },
    /// The extraction failed to bracket a solution.
    ExtractionFailed(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter { name, value } => {
                write!(f, "parameter {name} out of physical domain: {value}")
            }
            Error::TooFewSamples { got, min } => {
                write!(f, "needs at least {min} points, got {got}")
            }
            Error::ExtractionFailed(msg) => write!(f, "extraction failed: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-level result alias.
pub type Result<T> = core::result::Result<T, Error>;
