//! Property-based tests of the thermal models.

use cnt_thermal::ampacity::thermal_ampacity;
use cnt_thermal::extract::kth_from_peak;
use cnt_thermal::fin::SelfHeatingLine;
use cnt_units::si::{CurrentDensity, Length, Temperature};
use proptest::prelude::*;

fn line(k: f64, l_um: f64, j_ma_cm2: f64) -> SelfHeatingLine {
    let mut line = SelfHeatingLine::mwcnt(
        Length::from_micrometers(l_um),
        CurrentDensity::from_amps_per_square_centimeter(j_ma_cm2 * 1e6),
    );
    line.thermal_conductivity = k;
    line
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn peak_scales_quadratically_with_current(
        k in 300.0_f64..10_000.0,
        l in 0.5_f64..10.0,
        j in 1.0_f64..100.0,
        factor in 1.1_f64..5.0,
    ) {
        let base = line(k, l, j).peak_temperature().kelvin() - 300.0;
        let scaled = line(k, l, j * factor).peak_temperature().kelvin() - 300.0;
        prop_assert!((scaled / base - factor * factor).abs() < 1e-6);
    }

    #[test]
    fn profile_never_below_ambient_and_symmetric(
        k in 300.0_f64..10_000.0,
        l in 0.5_f64..10.0,
        j in 1.0_f64..100.0,
        g in 0.0_f64..2.0,
    ) {
        let mut ln = line(k, l, j);
        ln.substrate_coupling = g;
        let p = ln.analytic_profile(51).unwrap();
        for &t in &p.temperature_k {
            prop_assert!(t >= 300.0 - 1e-9);
        }
        let n = p.temperature_k.len();
        for i in 0..n / 2 {
            prop_assert!((p.temperature_k[i] - p.temperature_k[n - 1 - i]).abs() < 1e-9);
        }
    }

    #[test]
    fn fd_solution_matches_closed_form(
        k in 300.0_f64..10_000.0,
        g in 0.0_f64..1.0,
    ) {
        let mut ln = line(k, 2.0, 30.0);
        ln.substrate_coupling = g;
        let ana = ln.analytic_profile(81).unwrap();
        let fd = ln.solve_fd(81).unwrap();
        for (a, b) in ana.temperature_k.iter().zip(&fd.temperature_k) {
            let dt = (a - 300.0).abs().max(1e-9);
            prop_assert!((a - b).abs() < 0.05 * dt + 1e-6);
        }
    }

    #[test]
    fn peak_inversion_recovers_k(k in 500.0_f64..10_000.0) {
        let ln = line(k, 2.0, 30.0);
        let peak = ln.peak_temperature().kelvin();
        let k_back = kth_from_peak(&ln, peak).unwrap();
        prop_assert!((k_back - k).abs() / k < 1e-9);
    }

    #[test]
    fn ampacity_limit_is_self_consistent(
        k in 500.0_f64..10_000.0,
        t_crit in 400.0_f64..900.0,
    ) {
        let ln = line(k, 2.0, 1.0);
        let jmax = thermal_ampacity(&ln, Temperature::from_kelvin(t_crit)).unwrap();
        let mut at = ln;
        at.current_density = jmax;
        prop_assert!((at.peak_temperature().kelvin() - t_crit).abs() < 1.0);
    }
}
