//! Property-based tests of the reliability models.

use cnt_reliability::ampacity::ConductorMaterial;
use cnt_reliability::em::BlackModel;
use cnt_reliability::layout::TestStructure;
use cnt_units::si::{CurrentDensity, Length, Temperature, Time};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn black_mttf_monotone_decreasing_in_stress(
        j1 in 0.5_f64..5.0,
        dj in 0.01_f64..5.0,
        t in 300.0_f64..500.0,
    ) {
        let m = BlackModel::copper();
        let temp = Temperature::from_kelvin(t);
        let lo = m.median_ttf(CurrentDensity::from_amps_per_square_centimeter(j1 * 1e6), temp);
        let hi = m.median_ttf(
            CurrentDensity::from_amps_per_square_centimeter((j1 + dj) * 1e6),
            temp,
        );
        prop_assert!(hi < lo);
    }

    #[test]
    fn inverse_black_roundtrips(
        target_h in 1.0_f64..1e7,
        t in 320.0_f64..520.0,
    ) {
        let m = BlackModel::copper();
        let temp = Temperature::from_kelvin(t);
        let j = m.max_current_density(Time::from_hours(target_h), temp).unwrap();
        let back = m.median_ttf(j, temp);
        prop_assert!((back.hours() / target_h - 1.0).abs() < 1e-9);
    }

    #[test]
    fn composite_always_outlives_copper(
        j in 0.2_f64..20.0,
        t in 320.0_f64..520.0,
    ) {
        let cu = BlackModel::copper();
        let cc = BlackModel::cu_cnt_composite();
        let jd = CurrentDensity::from_amps_per_square_centimeter(j * 1e6);
        let temp = Temperature::from_kelvin(t);
        prop_assert!(cc.median_ttf(jd, temp) > cu.median_ttf(jd, temp));
    }

    #[test]
    fn blech_criterion_is_a_threshold(
        j in 0.1_f64..10.0,
        l_um in 1.0_f64..1000.0,
    ) {
        let m = BlackModel::copper();
        let jd = CurrentDensity::from_amps_per_square_centimeter(j * 1e6);
        let immortal = m.is_blech_immortal(jd, l_um * 1e-6);
        prop_assert_eq!(immortal, jd.amps_per_square_meter() * l_um * 1e-6 < 3.0e5);
    }

    #[test]
    fn composite_ampacity_between_cu_and_cnt(vf in 0.0_f64..0.74) {
        let j = ConductorMaterial::Composite { cnt_volume_fraction: vf }
            .max_current_density()
            .unwrap()
            .amps_per_square_meter();
        let j_cu = ConductorMaterial::Copper.max_current_density().unwrap().amps_per_square_meter();
        let j_cnt = ConductorMaterial::Cnt.max_current_density().unwrap().amps_per_square_meter();
        prop_assert!(j >= j_cu * (1.0 - 1e-12));
        prop_assert!(j <= j_cnt * (1.0 + 1e-12));
    }

    #[test]
    fn line_resistance_scales_with_geometry(
        w_nm in 50.0_f64..1000.0,
        l_um in 1.0_f64..1000.0,
        rho in 1.5e-8_f64..5e-8,
    ) {
        let s = TestStructure::SingleLine {
            width: Length::from_nanometers(w_nm),
            length: Length::from_micrometers(l_um),
            angle_degrees: 0.0,
        };
        let t = Length::from_nanometers(100.0);
        let r = s.predicted_resistance(rho, t, 0.0);
        let expect = rho * l_um * 1e-6 / (w_nm * 1e-9 * 100e-9);
        prop_assert!((r - expect).abs() / expect < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ttf_samples_are_positive_and_ordered_by_stress(seed in 0u64..30) {
        let m = BlackModel::copper();
        let t = Temperature::from_celsius(105.0);
        let lo = m.sample_ttf(
            CurrentDensity::from_amps_per_square_centimeter(1e6), t, 200, seed).unwrap();
        let hi = m.sample_ttf(
            CurrentDensity::from_amps_per_square_centimeter(4e6), t, 200, seed).unwrap();
        prop_assert!(lo.iter().all(|t| t.hours() > 0.0));
        let med = |v: &[cnt_units::si::Time]| {
            let mut h: Vec<f64> = v.iter().map(|t| t.hours()).collect();
            h.sort_by(|a, b| a.partial_cmp(b).unwrap());
            h[h.len() / 2]
        };
        prop_assert!(med(&hi) < med(&lo));
    }
}
