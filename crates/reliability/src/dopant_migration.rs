//! Dopant migration under electrical stress — the in-situ-TEM experiment
//! of the paper, virtualized.
//!
//! Section II.A: "As shown from the simulations, internal doping of CNT is
//! more stable than external doping." Section IV.B plans "TEM measurements
//! of operating CNT interconnects in situ, to study dopant migration and
//! CNT degradation at high current densities." Fig. 3 is the STEM image of
//! Pt dopants *inside* an opened tube.
//!
//! Model: dopants perform a biased 1-D random walk along the tube. Hop
//! attempts occur at `ν = ν0·exp(−E_b/kT)`; the electron-wind force tilts
//! the hop probability in proportion to the current density. Dopants that
//! reach an open tube end escape. Internal dopants sit in deeper binding
//! wells than external adsorbates, hence their stability.

use crate::{Error, Result};
use cnt_units::consts::K_B_EV;
use cnt_units::rand_ext;
use cnt_units::si::{CurrentDensity, Length, Temperature, Time};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Where the dopant sits relative to the tube wall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DopantSite {
    /// Confined inside the tube (Fig. 3): deep binding well.
    Internal,
    /// Adsorbed on the outer wall: shallow well, easily stripped.
    External,
}

impl DopantSite {
    /// Binding (hop-barrier) energy, eV. At 105 °C these give hop rates of
    /// ~5×10⁻⁵ /s (internal — essentially frozen over a 1000 h stress) and
    /// ~50 /s (external — mobile), which is what makes internal doping the
    /// stable variant.
    pub fn binding_energy_ev(self) -> f64 {
        match self {
            DopantSite::Internal => 1.3,
            DopantSite::External => 0.85,
        }
    }
}

/// Parameters of a dopant-stability stress test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressTest {
    /// Tube length.
    pub tube_length: Length,
    /// Number of dopants at t = 0 (uniformly distributed).
    pub dopant_count: usize,
    /// Dopant site type.
    pub site: DopantSite,
    /// Operating temperature.
    pub temperature: Temperature,
    /// Drive current density (wind force source).
    pub current_density: CurrentDensity,
    /// Stress duration.
    pub duration: Time,
}

impl StressTest {
    /// Validates the test parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.tube_length.meters() <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "tube_length",
                value: self.tube_length.meters(),
            });
        }
        if self.dopant_count == 0 {
            return Err(Error::InvalidParameter {
                name: "dopant_count",
                value: 0.0,
            });
        }
        if self.duration.seconds() <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "duration",
                value: self.duration.seconds(),
            });
        }
        Ok(())
    }
}

/// Outcome of a stress test.
#[derive(Debug, Clone, PartialEq)]
pub struct RetentionResult {
    /// Fraction of dopants still inside the tube after the stress.
    pub retention: f64,
    /// Mean net displacement of surviving dopants towards the anode,
    /// metres (positive = wind direction).
    pub mean_drift: f64,
    /// Final dopant positions (metres along the tube) of survivors.
    pub final_positions: Vec<f64>,
}

/// Attempt frequency of the hop process, 1/s.
const NU_0: f64 = 1.0e13;

/// Hop distance (one lattice site), metres.
const HOP: f64 = 0.3e-9;

/// Wind-force tilt per unit current density, dimensionless per (A/m²).
/// Calibrated so 10⁸ A/cm² ≈ 10¹² A/m² gives a strong (0.3) bias.
const WIND_TILT: f64 = 3.0e-13;

/// Runs the biased-random-walk stress test.
///
/// The walk is integrated with an adaptive macro-step: each dopant makes
/// `ν·Δt` attempted hops per step (capped), with forward probability
/// `0.5·(1 + tilt)`. Escape happens at either open end.
///
/// # Errors
///
/// Propagates validation errors.
pub fn run_stress_test(test: &StressTest, seed: u64) -> Result<RetentionResult> {
    test.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let l = test.tube_length.meters();
    let nu = NU_0 * (-test.site.binding_energy_ev() / (K_B_EV * test.temperature.kelvin())).exp();
    let total_hops = (nu * test.duration.seconds()).min(2.0e5);
    let tilt = (WIND_TILT * test.current_density.amps_per_square_meter()).clamp(0.0, 0.9);
    let p_forward = 0.5 * (1.0 + tilt);

    let mut survivors = Vec::new();
    let mut drift_sum = 0.0;
    let n_hops = total_hops.round() as u64;
    for _ in 0..test.dopant_count {
        let start = rng.gen::<f64>() * l;
        let mut x = start;
        let mut alive = true;
        if n_hops > 2000 {
            // Diffusion-limit shortcut: net displacement is Gaussian with
            // mean n·(2p−1)·a and variance ≈ n·a² — then check escape via
            // the first-passage approximation of the biased walk.
            let n = n_hops as f64;
            let mean = n * (2.0 * p_forward - 1.0) * HOP;
            let sigma = n.sqrt() * HOP;
            let disp = rand_ext::normal(&mut rng, mean, sigma);
            x = start + disp;
            // Excursion beyond either end at any time ⇒ escaped. Approximate
            // with the reflection principle on the dominant (forward) side.
            let max_excursion = x.max(start) + 0.5 * sigma;
            if max_excursion >= l || x <= 0.0 || x >= l {
                alive = false;
            }
        } else {
            for _ in 0..n_hops {
                let step = if rng.gen::<f64>() < p_forward {
                    HOP
                } else {
                    -HOP
                };
                x += step;
                if x <= 0.0 || x >= l {
                    alive = false;
                    break;
                }
            }
        }
        if alive {
            drift_sum += x - start;
            survivors.push(x);
        }
    }
    let retention = survivors.len() as f64 / test.dopant_count as f64;
    let mean_drift = if survivors.is_empty() {
        0.0
    } else {
        drift_sum / survivors.len() as f64
    };
    Ok(RetentionResult {
        retention,
        mean_drift,
        final_positions: survivors,
    })
}

/// Radial dopant distribution after an insertion process — the synthetic
/// Fig. 3 STEM histogram. Internal doping concentrates Pt/Cl inside the
/// tube radius; external doping decorates the outer wall.
///
/// Returns `(bin_centers_nm, counts)` over `[0, 2·r_tube]`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for non-positive radius or zero
/// dopants/bins.
pub fn stem_radial_histogram(
    tube_radius: Length,
    site: DopantSite,
    dopants: usize,
    bins: usize,
    seed: u64,
) -> Result<(Vec<f64>, Vec<usize>)> {
    if tube_radius.meters() <= 0.0 {
        return Err(Error::InvalidParameter {
            name: "tube_radius",
            value: tube_radius.meters(),
        });
    }
    if dopants == 0 || bins == 0 {
        return Err(Error::EmptyRequest("dopants/bins"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let r = tube_radius.nanometers();
    let r_max = 2.0 * r;
    let mut counts = vec![0usize; bins];
    for _ in 0..dopants {
        let radial = match site {
            // Pt/Cl network fills the hollow core: |N(0, r/3)| truncated.
            DopantSite::Internal => {
                rand_ext::truncated_normal(&mut rng, 0.0, r / 3.0, -0.95 * r, 0.95 * r).abs()
            }
            // Adsorbates sit in the van der Waals shell just outside the wall.
            DopantSite::External => {
                rand_ext::truncated_normal(&mut rng, r + 0.34, 0.1, r + 0.05, r_max - 1e-9)
            }
        };
        let bin = ((radial / r_max) * bins as f64).floor() as usize;
        counts[bin.min(bins - 1)] += 1;
    }
    let centers = (0..bins)
        .map(|b| (b as f64 + 0.5) * r_max / bins as f64)
        .collect();
    Ok((centers, counts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_test(site: DopantSite) -> StressTest {
        StressTest {
            tube_length: Length::from_micrometers(1.0),
            dopant_count: 800,
            site,
            temperature: Temperature::from_celsius(105.0),
            current_density: CurrentDensity::from_amps_per_square_centimeter(5.0e7),
            duration: Time::from_hours(1000.0),
        }
    }

    #[test]
    fn internal_doping_is_more_stable_headline() {
        // The Section II.A claim.
        let internal = run_stress_test(&base_test(DopantSite::Internal), 1).unwrap();
        let external = run_stress_test(&base_test(DopantSite::External), 1).unwrap();
        assert!(
            internal.retention > external.retention + 0.2,
            "internal {} vs external {}",
            internal.retention,
            external.retention
        );
        assert!(internal.retention > 0.9);
    }

    #[test]
    fn higher_temperature_accelerates_loss() {
        let mut hot = base_test(DopantSite::External);
        hot.temperature = Temperature::from_celsius(250.0);
        let cold = run_stress_test(&base_test(DopantSite::External), 2).unwrap();
        let heated = run_stress_test(&hot, 2).unwrap();
        assert!(heated.retention <= cold.retention);
    }

    #[test]
    fn wind_pushes_survivors_forward() {
        let mut strong = base_test(DopantSite::External);
        strong.current_density = CurrentDensity::from_amps_per_square_centimeter(1.0e8);
        strong.duration = Time::from_seconds(1.0);
        let res = run_stress_test(&strong, 3).unwrap();
        if !res.final_positions.is_empty() {
            assert!(res.mean_drift >= 0.0, "drift {}", res.mean_drift);
        }
    }

    #[test]
    fn zero_current_preserves_more_than_stress() {
        let mut idle = base_test(DopantSite::External);
        idle.current_density = CurrentDensity::from_amps_per_square_meter(0.0);
        let stressed = run_stress_test(&base_test(DopantSite::External), 4).unwrap();
        let unstressed = run_stress_test(&idle, 4).unwrap();
        assert!(unstressed.retention >= stressed.retention);
    }

    #[test]
    fn stem_histogram_separates_internal_and_external() {
        let r = Length::from_nanometers(3.75); // the paper's d ≈ 7.5 nm tube
        let (centers, inside) =
            stem_radial_histogram(r, DopantSite::Internal, 5000, 30, 9).unwrap();
        let (_, outside) = stem_radial_histogram(r, DopantSite::External, 5000, 30, 9).unwrap();
        let r_nm = r.nanometers();
        let mass_inside = |counts: &[usize]| -> f64 {
            centers
                .iter()
                .zip(counts)
                .filter(|(c, _)| **c < r_nm)
                .map(|(_, n)| *n as f64)
                .sum::<f64>()
                / counts.iter().sum::<usize>() as f64
        };
        assert!(
            mass_inside(&inside) > 0.95,
            "internal mass {}",
            mass_inside(&inside)
        );
        assert!(
            mass_inside(&outside) < 0.05,
            "external mass {}",
            mass_inside(&outside)
        );
    }

    #[test]
    fn validation() {
        let mut bad = base_test(DopantSite::Internal);
        bad.dopant_count = 0;
        assert!(run_stress_test(&bad, 1).is_err());
        assert!(stem_radial_histogram(Length::ZERO, DopantSite::Internal, 10, 5, 1).is_err());
        assert!(
            stem_radial_histogram(Length::from_nanometers(3.0), DopantSite::Internal, 0, 5, 1)
                .is_err()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_stress_test(&base_test(DopantSite::Internal), 42).unwrap();
        let b = run_stress_test(&base_test(DopantSite::Internal), 42).unwrap();
        assert_eq!(a, b);
    }
}
