//! Electromigration lifetime: Black's equation, Blech immortality and
//! lognormal time-to-failure statistics.
//!
//! `MTTF = A·j⁻ⁿ·exp(Ea/kT)` with the copper BEOL parameters
//! (n ≈ 1.8, Ea ≈ 0.9 eV). Cu–CNT composites inherit the sp²-bonded
//! tubes' EM immunity (Section I: "CNTs are much less susceptible to
//! electromigration problems than copper interconnects"): their model
//! carries a higher activation energy and a much higher tolerable current.

use crate::{Error, Result};
use cnt_units::consts::K_B_EV;
use cnt_units::rand_ext;
use cnt_units::si::{CurrentDensity, Temperature, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Black's-equation parameter set plus lognormal spread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlackModel {
    /// Prefactor `A` chosen so that `mttf(j_ref, t_ref) = mttf_ref`.
    pub prefactor: f64,
    /// Current-density exponent `n`.
    pub exponent: f64,
    /// Activation energy, eV.
    pub activation_energy_ev: f64,
    /// Lognormal sigma of the failure-time distribution.
    pub sigma: f64,
    /// Blech product threshold `(j·L)_crit`, A/m (below: immortal).
    pub blech_product: f64,
}

impl BlackModel {
    /// Copper BEOL calibration: 10 years median at 1 MA/cm² and 105 °C,
    /// n = 1.8, Ea = 0.9 eV, σ = 0.3, (j·L)crit = 3000 A/cm ⇒ 3×10⁵ A/m.
    pub fn copper() -> Self {
        let mut m = Self {
            prefactor: 1.0,
            exponent: 1.8,
            activation_energy_ev: 0.9,
            sigma: 0.3,
            blech_product: 3.0e5,
        };
        let j_ref = CurrentDensity::from_amps_per_square_centimeter(1.0e6);
        let t_ref = Temperature::from_celsius(105.0);
        let target = Time::from_hours(10.0 * 365.25 * 24.0);
        let raw = m.median_ttf(j_ref, t_ref).hours();
        m.prefactor = target.hours() / raw;
        m
    }

    /// Cu–CNT composite calibration: the carbon network suppresses void
    /// growth — higher Ea (1.1 eV) and a 100× reference-lifetime boost at
    /// matched stress (echoing the ampacity factor of reference \[14\]).
    pub fn cu_cnt_composite() -> Self {
        let mut m = Self::copper();
        m.activation_energy_ev = 1.1;
        m.sigma = 0.25;
        m.blech_product = 3.0e6;
        // Re-anchor: 100× copper's lifetime at the same reference stress.
        let j_ref = CurrentDensity::from_amps_per_square_centimeter(1.0e6);
        let t_ref = Temperature::from_celsius(105.0);
        let cu = Self::copper().median_ttf(j_ref, t_ref).hours();
        let raw = m.median_ttf(j_ref, t_ref).hours();
        m.prefactor *= 100.0 * cu / raw;
        m
    }

    /// Median time to failure at stress `(j, t)`.
    ///
    /// # Panics
    ///
    /// Does not panic; extreme inputs saturate to 0 or infinity.
    pub fn median_ttf(&self, j: CurrentDensity, t: Temperature) -> Time {
        let jj = j.amps_per_square_meter().max(1e-30);
        let hours = self.prefactor
            * jj.powf(-self.exponent)
            * (self.activation_energy_ev / (K_B_EV * t.kelvin())).exp();
        Time::from_hours(hours)
    }

    /// `true` if a line of length `l` at density `j` is Blech-immortal
    /// (`j·L` below the critical product: back-stress stops void growth).
    pub fn is_blech_immortal(&self, j: CurrentDensity, l_meters: f64) -> bool {
        j.amps_per_square_meter() * l_meters < self.blech_product
    }

    /// Samples `n` lognormal failure times at stress `(j, t)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyRequest`] for `n == 0`.
    pub fn sample_ttf(
        &self,
        j: CurrentDensity,
        t: Temperature,
        n: usize,
        seed: u64,
    ) -> Result<Vec<Time>> {
        if n == 0 {
            return Err(Error::EmptyRequest("ttf samples"));
        }
        let median = self.median_ttf(j, t).hours();
        let mu = median.ln();
        let mut rng = StdRng::seed_from_u64(seed);
        Ok((0..n)
            .map(|_| Time::from_hours(rand_ext::lognormal(&mut rng, mu, self.sigma)))
            .collect())
    }

    /// Maximum current density for a target lifetime at temperature `t`
    /// (inverts Black's equation).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a non-positive target.
    pub fn max_current_density(&self, target: Time, t: Temperature) -> Result<CurrentDensity> {
        if target.hours() <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "target lifetime",
                value: target.hours(),
            });
        }
        let factor = self.prefactor * (self.activation_energy_ev / (K_B_EV * t.kelvin())).exp();
        let j = (factor / target.hours()).powf(1.0 / self.exponent);
        Ok(CurrentDensity::from_amps_per_square_meter(j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(ma_cm2: f64) -> CurrentDensity {
        CurrentDensity::from_amps_per_square_centimeter(ma_cm2 * 1e6)
    }

    #[test]
    fn copper_anchor_ten_years() {
        let m = BlackModel::copper();
        let mttf = m.median_ttf(j(1.0), Temperature::from_celsius(105.0));
        assert!((mttf.hours() / (10.0 * 365.25 * 24.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lifetime_falls_with_current_and_temperature() {
        let m = BlackModel::copper();
        let t = Temperature::from_celsius(105.0);
        assert!(m.median_ttf(j(2.0), t) < m.median_ttf(j(1.0), t));
        assert!(
            m.median_ttf(j(1.0), Temperature::from_celsius(150.0))
                < m.median_ttf(j(1.0), Temperature::from_celsius(105.0))
        );
        // n = 1.8: doubling j cuts life by 2^1.8 ≈ 3.48.
        let r = m.median_ttf(j(1.0), t).hours() / m.median_ttf(j(2.0), t).hours();
        assert!((r - 2.0_f64.powf(1.8)).abs() < 1e-6);
    }

    #[test]
    fn composite_outlives_copper_100x() {
        let cu = BlackModel::copper();
        let cc = BlackModel::cu_cnt_composite();
        let t = Temperature::from_celsius(105.0);
        let ratio = cc.median_ttf(j(1.0), t).hours() / cu.median_ttf(j(1.0), t).hours();
        assert!((ratio - 100.0).abs() / 100.0 < 1e-9, "ratio {ratio}");
        // The gap widens at higher temperature thanks to the larger Ea.
        let hot = Temperature::from_celsius(200.0);
        let ratio_hot = cc.median_ttf(j(1.0), hot).hours() / cu.median_ttf(j(1.0), hot).hours();
        assert!(ratio_hot < ratio, "hot {ratio_hot} vs {ratio}");
    }

    #[test]
    fn blech_immortality() {
        let m = BlackModel::copper();
        // Short line at moderate j: immortal.
        assert!(m.is_blech_immortal(j(1.0), 10e-6));
        // Long line at the same j: mortal.
        assert!(!m.is_blech_immortal(j(1.0), 100e-6));
        // The composite tolerates a 10× higher Blech product.
        assert!(BlackModel::cu_cnt_composite().is_blech_immortal(j(1.0), 100e-6));
    }

    #[test]
    fn sample_statistics_match_model() {
        let m = BlackModel::copper();
        let t = Temperature::from_celsius(105.0);
        let ts = m.sample_ttf(j(1.0), t, 4000, 3).unwrap();
        let mut hours: Vec<f64> = ts.iter().map(|t| t.hours()).collect();
        hours.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = hours[hours.len() / 2];
        let expect = m.median_ttf(j(1.0), t).hours();
        assert!(
            (med / expect - 1.0).abs() < 0.05,
            "median {med} vs {expect}"
        );
        assert!(m.sample_ttf(j(1.0), t, 0, 1).is_err());
    }

    #[test]
    fn inverse_black_roundtrip() {
        let m = BlackModel::copper();
        let t = Temperature::from_celsius(105.0);
        let target = Time::from_hours(5000.0);
        let jmax = m.max_current_density(target, t).unwrap();
        let back = m.median_ttf(jmax, t);
        assert!((back.hours() / target.hours() - 1.0).abs() < 1e-9);
        assert!(m.max_current_density(Time::from_hours(-1.0), t).is_err());
    }
}
