//! Electromigration, ampacity, test-structure layouts and dopant-stability
//! models.
//!
//! Section IV.A of the paper designs a full-wafer electromigration (EM)
//! test layout (Fig. 13) to benchmark Cu–CNT composites against copper
//! BEOL metallization "with the focus on reliability improvement for small
//! dimensions regarding ampacity and electromigration resistance"; the
//! introduction quantifies the headline gap (CNT bundles carry 10⁹ A/cm²
//! versus the 10⁶ A/cm² EM limit of copper). Section II.A and Fig. 3
//! motivate dopant-stability studies (internal versus external doping).
//!
//! * [`em`] — Black's-equation lifetimes, Blech immortality, lognormal
//!   time-to-failure sampling;
//! * [`ampacity`] — material current limits and the §I "Table 1" numbers;
//! * [`layout`] — the Fig. 13a test-structure generator;
//! * [`wafer_char`] — full-wafer virtual electrical characterization
//!   (Fig. 13b);
//! * [`dopant_migration`] — biased-random-walk dopant escape, internal vs
//!   external stability, and the Fig. 3 STEM radial histogram.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ampacity;
pub mod breakdown;
pub mod dopant_migration;
pub mod em;
pub mod layout;
pub mod wafer_char;

pub use em::BlackModel;

use core::fmt;

/// Errors produced by the reliability models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A parameter was outside its physical domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// An empty request (no structures, no samples…).
    EmptyRequest(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter { name, value } => {
                write!(f, "parameter {name} out of physical domain: {value}")
            }
            Error::EmptyRequest(what) => write!(f, "empty request: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-level result alias.
pub type Result<T> = core::result::Result<T, Error>;
