//! Full-wafer virtual electrical characterization (the paper's Fig. 13b:
//! "first 300 mm wafer patterned with the Cu reference test structure" —
//! "the aim is to do a full wafer electrical characterization to enable
//! the transfer from lab to manufacturing").
//!
//! A die grid is laid over a 300 mm wafer; every die carries the Fig. 13a
//! test layout; per-die film thickness and resistivity vary with a radial
//! trend plus noise; each stressed structure gets a sampled EM lifetime.
//! The output is the per-die resistance/MTTF map and a yield summary that
//! benchmarks the Cu reference against the Cu–CNT composite.

use crate::em::BlackModel;
use crate::layout::TestStructure;
use crate::{Error, Result};
use cnt_units::math;
use cnt_units::rand_ext;
use cnt_units::si::{CurrentDensity, Length, Temperature, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Wafer-level characterization settings.
#[derive(Debug, Clone, PartialEq)]
pub struct WaferCharSetup {
    /// Wafer diameter, metres (300 mm default).
    pub wafer_diameter: f64,
    /// Die edge length, metres.
    pub die_size: f64,
    /// Nominal film resistivity, Ω·m.
    pub resistivity: f64,
    /// Nominal film thickness.
    pub thickness: Length,
    /// Per-via resistance, ohms.
    pub via_resistance: f64,
    /// Radial resistivity variation (fraction, centre → edge).
    pub radial_variation: f64,
    /// Per-die random sigma (fraction).
    pub noise: f64,
    /// EM model for lifetime sampling.
    pub em_model: BlackModel,
    /// Stress current density for the EM test.
    pub stress_j: CurrentDensity,
    /// Stress temperature.
    pub stress_t: Temperature,
}

impl WaferCharSetup {
    /// The copper reference wafer of Fig. 13b.
    pub fn copper_reference() -> Self {
        Self {
            wafer_diameter: 0.3,
            die_size: 0.02,
            resistivity: 2.2e-8, // damascene Cu with size effects
            thickness: Length::from_nanometers(120.0),
            via_resistance: 2.0,
            radial_variation: 0.06,
            noise: 0.02,
            em_model: BlackModel::copper(),
            stress_j: CurrentDensity::from_amps_per_square_centimeter(2.0e6),
            stress_t: Temperature::from_celsius(250.0),
        }
    }

    /// The Cu–CNT composite wafer benchmarked against the reference.
    pub fn composite() -> Self {
        Self {
            resistivity: 3.0e-8, // slightly resistive trade-off (§II.C)
            em_model: BlackModel::cu_cnt_composite(),
            ..Self::copper_reference()
        }
    }
}

/// Electrical result of one die.
#[derive(Debug, Clone, PartialEq)]
pub struct DieResult {
    /// Die centre x, metres from wafer centre.
    pub x: f64,
    /// Die centre y, metres from wafer centre.
    pub y: f64,
    /// Measured resistance of the reference single-line structure, ohms.
    pub line_resistance: f64,
    /// Sampled EM time to failure of the stressed line.
    pub ttf: Time,
}

/// Wafer-level summary.
#[derive(Debug, Clone, PartialEq)]
pub struct WaferCharReport {
    /// Per-die results.
    pub dies: Vec<DieResult>,
    /// Median line resistance, ohms.
    pub median_resistance: f64,
    /// Resistance CV (σ/µ).
    pub resistance_cv: f64,
    /// Median time to failure.
    pub median_ttf: Time,
    /// Fraction of dies whose TTF beats the target lifetime.
    pub em_yield: f64,
}

/// Runs the full-wafer characterization of a reference single-line
/// structure from the layout.
///
/// # Errors
///
/// * [`Error::InvalidParameter`] for degenerate geometry;
/// * [`Error::EmptyRequest`] when no die fits on the wafer or the layout
///   carries no stressable line.
pub fn characterize_wafer(
    setup: &WaferCharSetup,
    structure: &TestStructure,
    lifetime_target: Time,
    seed: u64,
) -> Result<WaferCharReport> {
    structure.validate()?;
    if setup.wafer_diameter <= 0.0 || setup.die_size <= 0.0 {
        return Err(Error::InvalidParameter {
            name: "wafer/die size",
            value: setup.die_size,
        });
    }
    let stressed = structure
        .stressed_length()
        .ok_or(Error::EmptyRequest("structure is not EM-stressable"))?;

    let mut rng = StdRng::seed_from_u64(seed);
    let r_wafer = setup.wafer_diameter / 2.0;
    let n_across = (setup.wafer_diameter / setup.die_size).floor() as i64;
    let mut dies = Vec::new();
    for gy in -n_across / 2..=n_across / 2 {
        for gx in -n_across / 2..=n_across / 2 {
            let x = gx as f64 * setup.die_size;
            let y = gy as f64 * setup.die_size;
            let r = (x * x + y * y).sqrt();
            if r + setup.die_size / 2.0 > r_wafer * 0.95 {
                continue; // edge exclusion
            }
            let rel = r / r_wafer;
            let local_rho = setup.resistivity
                * (1.0
                    + setup.radial_variation * rel * rel
                    + rand_ext::normal(&mut rng, 0.0, setup.noise));
            let resistance =
                structure.predicted_resistance(local_rho, setup.thickness, setup.via_resistance);
            // Blech-immortal structures get the target lifetime ×100 as a
            // sentinel "no failure observed".
            let ttf = if setup
                .em_model
                .is_blech_immortal(setup.stress_j, stressed.meters())
            {
                Time::from_hours(lifetime_target.hours() * 100.0)
            } else {
                let median = setup.em_model.median_ttf(setup.stress_j, setup.stress_t);
                Time::from_hours(rand_ext::lognormal(
                    &mut rng,
                    median.hours().ln(),
                    setup.em_model.sigma,
                ))
            };
            dies.push(DieResult {
                x,
                y,
                line_resistance: resistance,
                ttf,
            });
        }
    }
    if dies.is_empty() {
        return Err(Error::EmptyRequest("no dies fit on the wafer"));
    }

    let rs: Vec<f64> = dies.iter().map(|d| d.line_resistance).collect();
    let ttfs: Vec<f64> = dies.iter().map(|d| d.ttf.hours()).collect();
    let median_resistance = math::median(&rs).expect("non-empty");
    let mean_r = math::mean(&rs).expect("non-empty");
    let std_r = math::std_dev(&rs).unwrap_or(0.0);
    let median_ttf = Time::from_hours(math::median(&ttfs).expect("non-empty"));
    let yield_frac = ttfs
        .iter()
        .filter(|&&t| t >= lifetime_target.hours())
        .count() as f64
        / ttfs.len() as f64;

    Ok(WaferCharReport {
        dies,
        median_resistance,
        resistance_cv: std_r / mean_r,
        median_ttf,
        em_yield: yield_frac,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_line() -> TestStructure {
        TestStructure::SingleLine {
            width: Length::from_nanometers(100.0),
            length: Length::from_micrometers(800.0),
            angle_degrees: 0.0,
        }
    }

    #[test]
    fn wafer_has_a_sensible_die_population() {
        let rep = characterize_wafer(
            &WaferCharSetup::copper_reference(),
            &reference_line(),
            Time::from_hours(1000.0),
            1,
        )
        .unwrap();
        // 300 mm wafer with 20 mm dies: on the order of 100–180 usable dies.
        assert!(
            (80..220).contains(&rep.dies.len()),
            "{} dies",
            rep.dies.len()
        );
        assert!(rep.median_resistance > 0.0);
        assert!(rep.resistance_cv > 0.0 && rep.resistance_cv < 0.2);
    }

    #[test]
    fn composite_beats_copper_on_em_yield_fig13_goal() {
        let line = reference_line();
        let target = Time::from_hours(2000.0);
        let cu = characterize_wafer(&WaferCharSetup::copper_reference(), &line, target, 7).unwrap();
        let cc = characterize_wafer(&WaferCharSetup::composite(), &line, target, 7).unwrap();
        assert!(
            cc.median_ttf.hours() > 10.0 * cu.median_ttf.hours(),
            "composite median {} vs Cu {}",
            cc.median_ttf.hours(),
            cu.median_ttf.hours()
        );
        assert!(cc.em_yield >= cu.em_yield);
    }

    #[test]
    fn radial_trend_shows_in_resistance_map() {
        let mut setup = WaferCharSetup::copper_reference();
        setup.noise = 0.0;
        let rep = characterize_wafer(&setup, &reference_line(), Time::from_hours(1.0), 2).unwrap();
        let r_wafer = setup.wafer_diameter / 2.0;
        let center: Vec<f64> = rep
            .dies
            .iter()
            .filter(|d| (d.x * d.x + d.y * d.y).sqrt() < 0.3 * r_wafer)
            .map(|d| d.line_resistance)
            .collect();
        let edge: Vec<f64> = rep
            .dies
            .iter()
            .filter(|d| (d.x * d.x + d.y * d.y).sqrt() > 0.6 * r_wafer)
            .map(|d| d.line_resistance)
            .collect();
        let mc = math::mean(&center).unwrap();
        let me = math::mean(&edge).unwrap();
        assert!(me > mc, "edge {me} vs centre {mc}");
    }

    #[test]
    fn immortal_short_lines_always_yield() {
        let short = TestStructure::SingleLine {
            width: Length::from_nanometers(100.0),
            length: Length::from_micrometers(10.0), // jL below Blech product
            angle_degrees: 0.0,
        };
        let rep = characterize_wafer(
            &WaferCharSetup::copper_reference(),
            &short,
            Time::from_hours(5000.0),
            3,
        )
        .unwrap();
        assert!((rep.em_yield - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_paths() {
        let comb = TestStructure::Comb {
            fingers: 10,
            width: Length::from_nanometers(100.0),
            length: Length::from_micrometers(10.0),
            gap: Length::from_nanometers(100.0),
        };
        assert!(characterize_wafer(
            &WaferCharSetup::copper_reference(),
            &comb,
            Time::from_hours(1.0),
            1
        )
        .is_err());
        let mut bad = WaferCharSetup::copper_reference();
        bad.die_size = -1.0;
        assert!(characterize_wafer(&bad, &reference_line(), Time::from_hours(1.0), 1).is_err());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = characterize_wafer(
            &WaferCharSetup::copper_reference(),
            &reference_line(),
            Time::from_hours(100.0),
            5,
        )
        .unwrap();
        let b = characterize_wafer(
            &WaferCharSetup::copper_reference(),
            &reference_line(),
            Time::from_hours(100.0),
            5,
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
