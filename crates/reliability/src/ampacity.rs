//! Material ampacity: the current-carrying numbers of the paper's
//! introduction, reproduced as a small model ("Table 1" of the experiment
//! index — the paper states them in prose).
//!
//! * Copper: EM-limited to 10⁶ A/cm²; a 100 nm × 50 nm wire carries 50 µA.
//! * CNT: ~10⁹ A/cm² demonstrated on metallic SWCNT bundles; a 1 nm tube
//!   carries 20–25 µA.
//! * A minimum CNT density of 0.096 nm⁻² is needed for resistance parity.
//! * Cu–CNT composite: up to 100× copper (reference \[14\]).

use crate::{Error, Result};
use cnt_units::consts::{CNT_DENSITY_FLOOR, JMAX_CNT, JMAX_CU};
use cnt_units::si::{Area, Current, CurrentDensity, Length};

/// Interconnect conductor material for ampacity purposes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConductorMaterial {
    /// Damascene copper.
    Copper,
    /// Pure CNT (bundle or individual tube).
    Cnt,
    /// Cu–CNT composite with the given CNT volume fraction.
    Composite {
        /// CNT volume fraction in `[0, 0.74]`.
        cnt_volume_fraction: f64,
    },
}

impl ConductorMaterial {
    /// Sustainable current density of the material.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a composite fraction outside
    /// `[0, 0.74]`.
    pub fn max_current_density(&self) -> Result<CurrentDensity> {
        let j = match self {
            ConductorMaterial::Copper => JMAX_CU,
            ConductorMaterial::Cnt => JMAX_CNT,
            ConductorMaterial::Composite {
                cnt_volume_fraction,
            } => {
                if !(0.0..=0.74).contains(cnt_volume_fraction) {
                    return Err(Error::InvalidParameter {
                        name: "cnt_volume_fraction",
                        value: *cnt_volume_fraction,
                    });
                }
                // Exponential interpolation hitting 100× Cu at 45 % CNT
                // (Subramaniam et al., reference [14] of the paper), capped
                // by the pure-CNT limit.
                (JMAX_CU * (cnt_volume_fraction * 100.0_f64.ln() / 0.45).exp()).min(JMAX_CNT)
            }
        };
        Ok(CurrentDensity::from_amps_per_square_meter(j))
    }

    /// Maximum current through a rectangular cross-section.
    ///
    /// # Errors
    ///
    /// Propagates [`ConductorMaterial::max_current_density`] errors.
    pub fn max_current(&self, width: Length, height: Length) -> Result<Current> {
        Ok(self.max_current_density()? * (width * height))
    }
}

/// Maximum current of a single CNT of diameter `d` (solid-disc footprint
/// at the demonstrated 10⁹ A/cm² + ballistic saturation cap ≈ 25 µA).
pub fn single_cnt_max_current(diameter: Length) -> Current {
    let d = diameter.meters();
    let area = Area::from_square_meters(core::f64::consts::PI * d * d / 4.0);
    let j_limited = CurrentDensity::from_amps_per_square_meter(JMAX_CNT) * area;
    // Electron–phonon scattering saturates a metallic SWCNT near 25 µA
    // (paper: "a 1 nm diameter CNT can carry up to 20-25 µA").
    let saturation = Current::from_microamps(25.0);
    // The area-limited value wins for thin tubes; saturation for thick ones.
    if d <= 1.1e-9 {
        j_limited.max(Current::from_microamps(20.0)).min(saturation)
    } else {
        saturation
    }
}

/// Number of 1 nm CNTs needed to replace a Cu wire of the given
/// cross-section at its EM limit.
pub fn cnt_count_for_cu_parity(width: Length, height: Length) -> usize {
    let cu = ConductorMaterial::Copper
        .max_current(width, height)
        .expect("copper has no parameters to validate");
    let per_tube = single_cnt_max_current(Length::from_nanometers(1.0));
    (cu.amps() / per_tube.amps()).ceil() as usize
}

/// The ITRS-derived density floor for resistance (not ampacity) parity:
/// 0.096 tubes/nm² (Section I).
pub fn cnt_density_floor_per_nm2() -> f64 {
    CNT_DENSITY_FLOOR / 1e18
}

/// `true` if an areal density (tubes/m²) meets the resistance-parity floor.
pub fn meets_density_floor(tubes_per_m2: f64) -> bool {
    tubes_per_m2 >= CNT_DENSITY_FLOOR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_intro_numbers() {
        // Cu 100 nm × 50 nm carries 50 µA.
        let i_cu = ConductorMaterial::Copper
            .max_current(
                Length::from_nanometers(100.0),
                Length::from_nanometers(50.0),
            )
            .unwrap();
        assert!((i_cu.microamps() - 50.0).abs() < 1e-9);
        // A 1 nm CNT carries 20–25 µA.
        let i_cnt = single_cnt_max_current(Length::from_nanometers(1.0));
        assert!(
            (20.0..=25.0).contains(&i_cnt.microamps()),
            "{}",
            i_cnt.microamps()
        );
        // Three orders of magnitude in current density.
        let j_cnt = ConductorMaterial::Cnt.max_current_density().unwrap();
        let j_cu = ConductorMaterial::Copper.max_current_density().unwrap();
        assert!(
            (j_cnt.amps_per_square_meter() / j_cu.amps_per_square_meter() - 1000.0).abs() < 1e-6
        );
    }

    #[test]
    fn a_few_cnts_match_a_copper_wire() {
        // "From a reliability perspective, a few CNTs are enough to match
        // the current carrying capacity of a typical Cu interconnect."
        let n = cnt_count_for_cu_parity(
            Length::from_nanometers(100.0),
            Length::from_nanometers(50.0),
        );
        assert!((2..=4).contains(&n), "needed {n} tubes");
    }

    #[test]
    fn density_floor() {
        assert!((cnt_density_floor_per_nm2() - 0.096).abs() < 1e-12);
        assert!(meets_density_floor(0.1 * 1e18));
        assert!(!meets_density_floor(0.05 * 1e18));
    }

    #[test]
    fn composite_interpolates_to_100x() {
        let base = ConductorMaterial::Composite {
            cnt_volume_fraction: 0.0,
        }
        .max_current_density()
        .unwrap();
        assert!((base.amps_per_square_meter() - JMAX_CU).abs() < 1e-3);
        let best = ConductorMaterial::Composite {
            cnt_volume_fraction: 0.45,
        }
        .max_current_density()
        .unwrap();
        assert!((best.amps_per_square_meter() / JMAX_CU - 100.0).abs() < 1e-6);
        assert!(ConductorMaterial::Composite {
            cnt_volume_fraction: 0.9
        }
        .max_current_density()
        .is_err());
    }

    #[test]
    fn thick_tubes_saturate() {
        let thin = single_cnt_max_current(Length::from_nanometers(1.0));
        let thick = single_cnt_max_current(Length::from_nanometers(10.0));
        assert!(thick.microamps() <= 25.0 + 1e-9);
        assert!(thick.microamps() >= thin.microamps());
    }
}
