//! High-current degradation of MWCNTs: shell-by-shell electrical
//! breakdown.
//!
//! The paper plans in-situ TEM of "CNT degradation at high current
//! densities" (Section IV.B) and cites Collins et al. (its reference \[2\]),
//! who showed that over-stressed MWCNTs fail one shell at a time, each
//! step removing a quantized slice of current. This module simulates that
//! staircase: shells carry current in parallel; when a shell's current
//! exceeds its oxidation-limited capacity it burns out, the remaining
//! shells redistribute, and the process repeats.

use crate::{Error, Result};
use cnt_units::si::{Current, Voltage};

/// A multi-wall tube under current stress.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownSim {
    /// Per-shell low-bias conductance, siemens (outermost first).
    shell_conductance: Vec<f64>,
    /// Per-shell maximum current before burnout.
    shell_capacity: Current,
}

/// One event in a voltage-ramp stress test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownEvent {
    /// Bias at which the shell failed.
    pub voltage: Voltage,
    /// Total current just before the failure.
    pub current_before: Current,
    /// Total current just after (the staircase drop).
    pub current_after: Current,
    /// Shells still alive after the event.
    pub shells_remaining: usize,
}

impl BreakdownSim {
    /// A uniform MWCNT: `shells` shells of equal conductance
    /// `g_per_shell`, each failing at `shell_capacity` (≈ 20–25 µA,
    /// Collins et al.).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for zero shells or
    /// non-positive conductance/capacity.
    pub fn uniform(shells: usize, g_per_shell: f64, shell_capacity: Current) -> Result<Self> {
        if shells == 0 {
            return Err(Error::InvalidParameter {
                name: "shells",
                value: 0.0,
            });
        }
        if g_per_shell <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "g_per_shell",
                value: g_per_shell,
            });
        }
        if shell_capacity.amps() <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "shell_capacity",
                value: shell_capacity.amps(),
            });
        }
        Ok(Self {
            shell_conductance: vec![g_per_shell; shells],
            shell_capacity,
        })
    }

    /// Shells still intact.
    pub fn shells(&self) -> usize {
        self.shell_conductance.len()
    }

    /// Total current at bias `v` with the current shell population.
    pub fn current_at(&self, v: Voltage) -> Current {
        let g: f64 = self.shell_conductance.iter().sum();
        Current::from_amps(g * v.volts())
    }

    /// Ramps the bias from 0 to `v_max`, burning shells as their current
    /// capacity is exceeded (the outermost — highest-conductance — shell
    /// fails first). Returns the breakdown events in order.
    ///
    /// The tube may survive the ramp (fewer events than shells) or fail
    /// completely (events == initial shells).
    pub fn ramp(&mut self, v_max: Voltage) -> Vec<BreakdownEvent> {
        let mut events = Vec::new();
        loop {
            if self.shell_conductance.is_empty() {
                return events;
            }
            // The next failure: the shell with the largest conductance
            // carries the most current; it fails when i_shell = g·V hits
            // the capacity, i.e. at V_fail = capacity / g_max.
            let (idx, &g_max) = self
                .shell_conductance
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite conductance"))
                .expect("non-empty");
            let v_fail = self.shell_capacity.amps() / g_max;
            if v_fail > v_max.volts() {
                return events; // survives the ramp
            }
            let before = self.current_at(Voltage::from_volts(v_fail));
            self.shell_conductance.remove(idx);
            let after = self.current_at(Voltage::from_volts(v_fail));
            events.push(BreakdownEvent {
                voltage: Voltage::from_volts(v_fail),
                current_before: before,
                current_after: after,
                shells_remaining: self.shell_conductance.len(),
            });
        }
    }

    /// The safe operating voltage: just below the first shell failure.
    pub fn safe_voltage(&self) -> Voltage {
        let g_max = self
            .shell_conductance
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max);
        if g_max == 0.0 {
            return Voltage::from_volts(f64::INFINITY);
        }
        Voltage::from_volts(self.shell_capacity.amps() / g_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tube(shells: usize) -> BreakdownSim {
        // 50 µS per shell (a ~1 µm segment), 25 µA capacity.
        BreakdownSim::uniform(shells, 50e-6, Current::from_microamps(25.0)).unwrap()
    }

    #[test]
    fn staircase_has_one_step_per_shell() {
        let mut t = tube(8);
        let events = t.ramp(Voltage::from_volts(10.0));
        assert_eq!(events.len(), 8, "all shells burn in a 10 V ramp");
        assert_eq!(t.shells(), 0);
        // Steps drop the current each time.
        for e in &events {
            assert!(e.current_after < e.current_before);
        }
        // Shell count decreases monotonically.
        for w in events.windows(2) {
            assert_eq!(w[0].shells_remaining, w[1].shells_remaining + 1);
        }
    }

    #[test]
    fn uniform_shells_fail_at_the_same_bias() {
        // Equal conductance ⇒ equal shell current ⇒ the cascade happens
        // at a single bias (the classic avalanche at fixed V stress).
        let mut t = tube(5);
        let events = t.ramp(Voltage::from_volts(10.0));
        let v0 = events[0].voltage.volts();
        for e in &events {
            assert!((e.voltage.volts() - v0).abs() < 1e-12);
        }
    }

    #[test]
    fn gentle_ramp_spares_the_tube() {
        let mut t = tube(8);
        let safe = t.safe_voltage();
        let events = t.ramp(Voltage::from_volts(safe.volts() * 0.99));
        assert!(events.is_empty());
        assert_eq!(t.shells(), 8);
    }

    #[test]
    fn total_current_quantized_by_shell_capacity() {
        // Just before first failure each shell carries exactly its
        // capacity: total = shells × 25 µA.
        let mut t = tube(6);
        let events = t.ramp(Voltage::from_volts(10.0));
        let first = events[0];
        assert!((first.current_before.microamps() - 6.0 * 25.0).abs() < 1e-9);
    }

    #[test]
    fn more_shells_carry_more_before_dying() {
        let peak = |shells: usize| {
            let mut t = tube(shells);
            t.ramp(Voltage::from_volts(10.0))[0]
                .current_before
                .microamps()
        };
        assert!(peak(12) > peak(6));
    }

    #[test]
    fn validation() {
        assert!(BreakdownSim::uniform(0, 50e-6, Current::from_microamps(25.0)).is_err());
        assert!(BreakdownSim::uniform(5, 0.0, Current::from_microamps(25.0)).is_err());
        assert!(BreakdownSim::uniform(5, 50e-6, Current::from_amps(0.0)).is_err());
    }
}
