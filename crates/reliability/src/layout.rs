//! Electromigration test-layout generator (the paper's Fig. 13a).
//!
//! "Apart from single line structures varying width, length and angle also
//! multi-line structures, comb structures, extrusion monitors and via test
//! patterns are included. To emulate advanced nodes, part of the layout is
//! designed for E-beam lithography to generate lines with 50 nm widths."
//!
//! Each generated structure knows its geometry and can predict its
//! electrical resistance from a material resistivity, which is what the
//! full-wafer characterization (Fig. 13b) consumes.

use crate::{Error, Result};
use cnt_units::si::Length;

/// One test structure of the EM layout.
#[derive(Debug, Clone, PartialEq)]
pub enum TestStructure {
    /// A single line of given width/length, routed at `angle_degrees`
    /// (0/45/90 in the classic layouts).
    SingleLine {
        /// Line width.
        width: Length,
        /// Line length.
        length: Length,
        /// Routing angle in degrees.
        angle_degrees: f64,
    },
    /// `count` parallel lines at the given pitch (EM crowding / coupling).
    MultiLine {
        /// Number of lines.
        count: usize,
        /// Line width.
        width: Length,
        /// Line length.
        length: Length,
        /// Centre-to-centre pitch.
        pitch: Length,
    },
    /// An interdigitated comb for leakage/extrusion detection.
    Comb {
        /// Fingers per side.
        fingers: usize,
        /// Finger width.
        width: Length,
        /// Finger length.
        length: Length,
        /// Gap between opposing combs.
        gap: Length,
    },
    /// A via chain of `count` vias between two metal levels.
    ViaChain {
        /// Number of vias.
        count: usize,
        /// Via side length.
        via_size: Length,
        /// Connecting-segment length per link.
        link_length: Length,
        /// Metal line width.
        width: Length,
    },
    /// An extrusion monitor: a stressed line flanked by detector rails.
    ExtrusionMonitor {
        /// Stressed-line width.
        width: Length,
        /// Stressed-line length.
        length: Length,
        /// Detector gap.
        gap: Length,
    },
}

impl TestStructure {
    /// Short type tag for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            TestStructure::SingleLine { .. } => "single_line",
            TestStructure::MultiLine { .. } => "multi_line",
            TestStructure::Comb { .. } => "comb",
            TestStructure::ViaChain { .. } => "via_chain",
            TestStructure::ExtrusionMonitor { .. } => "extrusion_monitor",
        }
    }

    /// Validates geometric sanity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive dimensions or
    /// zero counts.
    pub fn validate(&self) -> Result<()> {
        let bad = |name: &'static str, value: f64| Err(Error::InvalidParameter { name, value });
        match self {
            TestStructure::SingleLine { width, length, .. } => {
                if width.meters() <= 0.0 {
                    return bad("width", width.meters());
                }
                if length.meters() <= 0.0 {
                    return bad("length", length.meters());
                }
            }
            TestStructure::MultiLine {
                count,
                width,
                pitch,
                length,
            } => {
                if *count == 0 {
                    return bad("count", 0.0);
                }
                if width.meters() <= 0.0 {
                    return bad("width", width.meters());
                }
                if length.meters() <= 0.0 {
                    return bad("length", length.meters());
                }
                if pitch.meters() < width.meters() {
                    return bad("pitch (must be ≥ width)", pitch.meters());
                }
            }
            TestStructure::Comb {
                fingers,
                width,
                length,
                gap,
            } => {
                if *fingers == 0 {
                    return bad("fingers", 0.0);
                }
                if width.meters() <= 0.0 || length.meters() <= 0.0 || gap.meters() <= 0.0 {
                    return bad("comb geometry", gap.meters());
                }
            }
            TestStructure::ViaChain {
                count,
                via_size,
                link_length,
                width,
            } => {
                if *count == 0 {
                    return bad("count", 0.0);
                }
                if via_size.meters() <= 0.0 || link_length.meters() <= 0.0 || width.meters() <= 0.0
                {
                    return bad("via chain geometry", via_size.meters());
                }
            }
            TestStructure::ExtrusionMonitor { width, length, gap } => {
                if width.meters() <= 0.0 || length.meters() <= 0.0 || gap.meters() <= 0.0 {
                    return bad("extrusion geometry", gap.meters());
                }
            }
        }
        Ok(())
    }

    /// Predicted two-terminal resistance for a film of the given sheet
    /// properties: `resistivity` (Ω·m), `thickness` (m) and, for via
    /// chains, a per-via resistance.
    pub fn predicted_resistance(
        &self,
        resistivity: f64,
        thickness: Length,
        via_resistance: f64,
    ) -> f64 {
        let sheet = resistivity / thickness.meters(); // Ω/sq
        match self {
            TestStructure::SingleLine { width, length, .. } => {
                sheet * length.meters() / width.meters()
            }
            TestStructure::MultiLine {
                count,
                width,
                length,
                ..
            } => sheet * length.meters() / width.meters() / *count as f64,
            TestStructure::Comb { .. } => f64::INFINITY, // leakage monitor: open by design
            TestStructure::ViaChain {
                count,
                link_length,
                width,
                ..
            } => {
                *count as f64 * via_resistance
                    + *count as f64 * sheet * link_length.meters() / width.meters()
            }
            TestStructure::ExtrusionMonitor { width, length, .. } => {
                sheet * length.meters() / width.meters()
            }
        }
    }

    /// Stressed-line length relevant for the Blech criterion (`None` for
    /// structures that are not EM-stressed lines).
    pub fn stressed_length(&self) -> Option<Length> {
        match self {
            TestStructure::SingleLine { length, .. }
            | TestStructure::MultiLine { length, .. }
            | TestStructure::ExtrusionMonitor { length, .. } => Some(*length),
            TestStructure::ViaChain {
                count, link_length, ..
            } => Some(*link_length * *count as f64),
            TestStructure::Comb { .. } => None,
        }
    }
}

/// The standard EM characterization layout of Fig. 13a: single lines over
/// widths (50 nm e-beam up to 1 µm), lengths and angles; multi-line and
/// comb structures; via chains; extrusion monitors.
pub fn standard_em_layout() -> Vec<TestStructure> {
    let mut v = Vec::new();
    for &w_nm in &[50.0, 100.0, 200.0, 500.0, 1000.0] {
        for &l_um in &[10.0, 100.0, 800.0] {
            for &angle in &[0.0, 45.0, 90.0] {
                v.push(TestStructure::SingleLine {
                    width: Length::from_nanometers(w_nm),
                    length: Length::from_micrometers(l_um),
                    angle_degrees: angle,
                });
            }
        }
    }
    for &n in &[5usize, 17] {
        v.push(TestStructure::MultiLine {
            count: n,
            width: Length::from_nanometers(100.0),
            length: Length::from_micrometers(100.0),
            pitch: Length::from_nanometers(200.0),
        });
    }
    for &fingers in &[20usize, 50] {
        v.push(TestStructure::Comb {
            fingers,
            width: Length::from_nanometers(100.0),
            length: Length::from_micrometers(50.0),
            gap: Length::from_nanometers(100.0),
        });
    }
    for &n in &[10usize, 100, 1000] {
        v.push(TestStructure::ViaChain {
            count: n,
            via_size: Length::from_nanometers(60.0),
            link_length: Length::from_micrometers(1.0),
            width: Length::from_nanometers(100.0),
        });
    }
    v.push(TestStructure::ExtrusionMonitor {
        width: Length::from_nanometers(100.0),
        length: Length::from_micrometers(250.0),
        gap: Length::from_nanometers(80.0),
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_layout_is_complete_and_valid() {
        let layout = standard_em_layout();
        // 5 widths × 3 lengths × 3 angles + 2 + 2 + 3 + 1 structures.
        assert_eq!(layout.len(), 45 + 8);
        for s in &layout {
            s.validate().unwrap();
        }
        // All five families present.
        for kind in [
            "single_line",
            "multi_line",
            "comb",
            "via_chain",
            "extrusion_monitor",
        ] {
            assert!(layout.iter().any(|s| s.kind() == kind), "missing {kind}");
        }
        // E-beam 50 nm lines present (the advanced-node part).
        assert!(layout.iter().any(|s| matches!(
            s,
            TestStructure::SingleLine { width, .. } if (width.nanometers() - 50.0).abs() < 1e-9
        )));
    }

    #[test]
    fn resistance_predictions_scale_correctly() {
        let rho = 2.0e-8;
        let t = Length::from_nanometers(100.0);
        let line = TestStructure::SingleLine {
            width: Length::from_nanometers(100.0),
            length: Length::from_micrometers(100.0),
            angle_degrees: 0.0,
        };
        // R = ρL/(w·t) = 2e-8·1e-4/(1e-7·1e-7) = 200 Ω.
        let r = line.predicted_resistance(rho, t, 0.0);
        assert!((r - 200.0).abs() < 1e-9, "R = {r}");
        // Five parallel lines: one fifth.
        let multi = TestStructure::MultiLine {
            count: 5,
            width: Length::from_nanometers(100.0),
            length: Length::from_micrometers(100.0),
            pitch: Length::from_nanometers(200.0),
        };
        assert!((multi.predicted_resistance(rho, t, 0.0) - 40.0).abs() < 1e-9);
        // Via chain adds per-via resistance.
        let chain = TestStructure::ViaChain {
            count: 100,
            via_size: Length::from_nanometers(60.0),
            link_length: Length::from_micrometers(1.0),
            width: Length::from_nanometers(100.0),
        };
        let r_chain = chain.predicted_resistance(rho, t, 2.0);
        assert!(r_chain > 200.0, "chain includes 100 × 2 Ω vias: {r_chain}");
        // Combs are open.
        let comb = TestStructure::Comb {
            fingers: 20,
            width: Length::from_nanometers(100.0),
            length: Length::from_micrometers(50.0),
            gap: Length::from_nanometers(100.0),
        };
        assert!(comb.predicted_resistance(rho, t, 0.0).is_infinite());
    }

    #[test]
    fn validation_rejects_degenerates() {
        assert!(TestStructure::SingleLine {
            width: Length::ZERO,
            length: Length::from_micrometers(1.0),
            angle_degrees: 0.0,
        }
        .validate()
        .is_err());
        assert!(TestStructure::MultiLine {
            count: 3,
            width: Length::from_nanometers(200.0),
            length: Length::from_micrometers(1.0),
            pitch: Length::from_nanometers(100.0), // pitch < width
        }
        .validate()
        .is_err());
        assert!(TestStructure::ViaChain {
            count: 0,
            via_size: Length::from_nanometers(60.0),
            link_length: Length::from_micrometers(1.0),
            width: Length::from_nanometers(100.0),
        }
        .validate()
        .is_err());
    }

    #[test]
    fn stressed_lengths() {
        let layout = standard_em_layout();
        for s in &layout {
            match s {
                TestStructure::Comb { .. } => assert!(s.stressed_length().is_none()),
                _ => assert!(s.stressed_length().unwrap().meters() > 0.0),
            }
        }
    }
}
