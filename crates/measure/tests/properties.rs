//! Property-based tests of the virtual measurement lab.

use cnt_measure::iv::{iv_sweep, CntDevice};
use cnt_measure::tlm::{fit_tlm, run_tlm, TlmExperiment};
use cnt_units::si::{Current, Length, Resistance, Voltage};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn noise_free_tlm_recovers_any_truth(
        rc in 0.0_f64..1e6,
        rpul_kohm_um in 0.1_f64..1e3,
    ) {
        let exp = TlmExperiment {
            lengths: (1..=6).map(|k| Length::from_micrometers(k as f64)).collect(),
            contact_resistance: rc,
            resistance_per_length: rpul_kohm_um * 1e3 / 1e-6,
            noise: 0.0,
        };
        let fit = run_tlm(&exp, 0).unwrap();
        prop_assert!((fit.contact_resistance - rc).abs() <= 1e-6 * rc.max(1.0));
        prop_assert!(
            (fit.resistance_per_length - exp.resistance_per_length).abs()
                <= 1e-6 * exp.resistance_per_length
        );
    }

    #[test]
    fn tlm_fit_never_panics_on_positive_data(
        data in prop::collection::vec((0.1_f64..10.0, 1.0_f64..1e6), 3..12),
    ) {
        let pts: Vec<(Length, Resistance)> = data
            .iter()
            .enumerate()
            .map(|(k, (l, r))| {
                // Strictly increasing lengths avoid the degenerate case.
                (
                    Length::from_micrometers(l + k as f64 * 10.0),
                    Resistance::from_ohms(*r),
                )
            })
            .collect();
        let fit = fit_tlm(&pts).unwrap();
        prop_assert!(fit.r_squared.is_finite());
    }

    #[test]
    fn iv_current_odd_and_saturating(
        r_kohm in 1.0_f64..500.0,
        v in 0.01_f64..10.0,
    ) {
        let d = CntDevice {
            resistance: Resistance::from_kilo_ohms(r_kohm),
            saturation_current: Current::from_microamps(25.0),
        };
        let ip = d.current_at(Voltage::from_volts(v)).amps();
        let im = d.current_at(Voltage::from_volts(-v)).amps();
        prop_assert!((ip + im).abs() < 1e-18);
        prop_assert!(ip.abs() < 25e-6);
        // Below the ohmic value.
        prop_assert!(ip <= v / (r_kohm * 1e3) + 1e-18);
    }

    #[test]
    fn iv_sweep_is_reproducible(seed in 0u64..200) {
        let d = CntDevice {
            resistance: Resistance::from_kilo_ohms(40.0),
            saturation_current: Current::from_microamps(25.0),
        };
        let a = iv_sweep(&d, Voltage::from_volts(1.0), 21, 0.05, seed).unwrap();
        let b = iv_sweep(&d, Voltage::from_volts(1.0), 21, 0.05, seed).unwrap();
        prop_assert_eq!(a, b);
    }
}
