//! Virtual measurement lab: transmission-line-method (TLM) contact
//! resistance extraction and I–V characterization.
//!
//! Section IV.B of the paper: "The resistance of a CNT line always
//! consists of two parts, the contact resistance and the resistance of the
//! CNT itself. For obtaining the contact resistance and CNT resistance per
//! unit length, the transmission line measurement technique can be used
//! \[23\]. MWCNTs of different lengths are contacted, and the resistance of
//! the resulting structure is measured. By correlating line length with
//! total resistance, contact resistance and CNT resistance per unit length
//! can be extracted." — that is [`tlm`].
//!
//! Fig. 2d shows the electrical characterization of a side-contacted
//! MWCNT before and after PtCl₄ doping — the I–V sweep machinery for that
//! experiment is [`iv`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod iv;
pub mod tlm;

pub use tlm::{TlmExperiment, TlmFit};

use core::fmt;

/// Errors produced by the virtual measurement lab.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A parameter was outside its physical domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Too few measurement points for the requested extraction.
    TooFewPoints {
        /// Points supplied.
        got: usize,
        /// Minimum required.
        min: usize,
    },
    /// The regression degenerated (e.g. identical lengths).
    DegenerateFit(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter { name, value } => {
                write!(f, "parameter {name} out of physical domain: {value}")
            }
            Error::TooFewPoints { got, min } => {
                write!(f, "needs at least {min} measurement points, got {got}")
            }
            Error::DegenerateFit(msg) => write!(f, "degenerate fit: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-level result alias.
pub type Result<T> = core::result::Result<T, Error>;
