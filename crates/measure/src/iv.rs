//! I–V characterization of CNT devices (the paper's Fig. 2d: a
//! side-contacted MWCNT before and after PtCl₄ doping).
//!
//! The device model combines a bias-independent contact pair, the tube
//! resistance, and the high-field current saturation of metallic CNTs
//! (electron–phonon scattering caps a metallic SWCNT near 25 µA,
//! reference \[7\] of the paper): `I(V) = V / (R + |V|/I_sat)`.

use crate::{Error, Result};
use cnt_units::rand_ext;
use cnt_units::si::{Current, Resistance, Voltage};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A two-terminal CNT device under test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CntDevice {
    /// Total low-bias resistance (contacts + tube), ohms.
    pub resistance: Resistance,
    /// High-field saturation current (per device), amperes.
    pub saturation_current: Current,
}

impl CntDevice {
    /// Validates the device parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive values.
    pub fn validate(&self) -> Result<()> {
        if self.resistance.ohms() <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "resistance",
                value: self.resistance.ohms(),
            });
        }
        if self.saturation_current.amps() <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "saturation_current",
                value: self.saturation_current.amps(),
            });
        }
        Ok(())
    }

    /// Ideal (noise-free) current at bias `v`.
    pub fn current_at(&self, v: Voltage) -> Current {
        let r = self.resistance.ohms();
        let i_sat = self.saturation_current.amps();
        Current::from_amps(v.volts() / (r + v.volts().abs() / i_sat))
    }

    /// Differential resistance `dV/dI` at bias `v`.
    pub fn differential_resistance(&self, v: Voltage) -> Resistance {
        let h = 1e-6;
        let i1 = self.current_at(Voltage::from_volts(v.volts() + h)).amps();
        let i0 = self.current_at(Voltage::from_volts(v.volts() - h)).amps();
        Resistance::from_ohms(2.0 * h / (i1 - i0))
    }
}

/// One I–V sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct IvCurve {
    /// Swept points `(V, I)`.
    pub points: Vec<(Voltage, Current)>,
}

impl IvCurve {
    /// Low-bias resistance from the smallest nonzero bias points.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooFewPoints`] if the sweep has fewer than 3
    /// points.
    pub fn low_bias_resistance(&self) -> Result<Resistance> {
        if self.points.len() < 3 {
            return Err(Error::TooFewPoints {
                got: self.points.len(),
                min: 3,
            });
        }
        // Least-squares slope through the origin over the inner third.
        let n = self.points.len();
        let inner: Vec<&(Voltage, Current)> = {
            let mut sorted: Vec<&(Voltage, Current)> = self.points.iter().collect();
            sorted.sort_by(|a, b| {
                a.0.volts()
                    .abs()
                    .partial_cmp(&b.0.volts().abs())
                    .expect("finite")
            });
            sorted.into_iter().take((n / 3).max(3)).collect()
        };
        let num: f64 = inner.iter().map(|(v, i)| v.volts() * i.amps()).sum();
        let den: f64 = inner.iter().map(|(v, _)| v.volts() * v.volts()).sum();
        if den == 0.0 {
            return Err(Error::InvalidParameter {
                name: "sweep (all points at V = 0)",
                value: 0.0,
            });
        }
        Ok(Resistance::from_ohms(den / num))
    }
}

/// Sweeps a device from `-v_max` to `+v_max` in `points` steps with
/// multiplicative current noise.
///
/// # Errors
///
/// Propagates device validation; rejects `points < 3` and negative noise.
pub fn iv_sweep(
    device: &CntDevice,
    v_max: Voltage,
    points: usize,
    noise: f64,
    seed: u64,
) -> Result<IvCurve> {
    device.validate()?;
    if points < 3 {
        return Err(Error::TooFewPoints {
            got: points,
            min: 3,
        });
    }
    if noise < 0.0 {
        return Err(Error::InvalidParameter {
            name: "noise",
            value: noise,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let pts = (0..points)
        .map(|k| {
            let v = Voltage::from_volts(
                -v_max.volts() + 2.0 * v_max.volts() * k as f64 / (points - 1) as f64,
            );
            let ideal = device.current_at(v).amps();
            let i = ideal * (1.0 + rand_ext::normal(&mut rng, 0.0, noise));
            (v, Current::from_amps(i))
        })
        .collect();
    Ok(IvCurve { points: pts })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(r_kohm: f64) -> CntDevice {
        CntDevice {
            resistance: Resistance::from_kilo_ohms(r_kohm),
            saturation_current: Current::from_microamps(25.0),
        }
    }

    #[test]
    fn ohmic_at_low_bias_saturating_at_high() {
        let d = device(40.0);
        let low = d.current_at(Voltage::from_millivolts(10.0));
        // Essentially V/R at 10 mV.
        assert!((low.amps() - 10e-3 / 40e3).abs() / (10e-3 / 40e3) < 0.01);
        // At huge bias the current approaches (but never exceeds) I_sat.
        let high = d.current_at(Voltage::from_volts(50.0));
        assert!(high.microamps() < 25.0);
        assert!(high.microamps() > 20.0);
        // Differential resistance grows with bias.
        assert!(
            d.differential_resistance(Voltage::from_volts(3.0)).ohms()
                > d.differential_resistance(Voltage::from_volts(0.0)).ohms()
        );
    }

    #[test]
    fn iv_curve_is_odd_symmetric() {
        let d = device(40.0);
        let curve = iv_sweep(&d, Voltage::from_volts(2.0), 201, 0.0, 1).unwrap();
        let n = curve.points.len();
        for k in 0..n / 2 {
            let (v1, i1) = curve.points[k];
            let (v2, i2) = curve.points[n - 1 - k];
            assert!((v1.volts() + v2.volts()).abs() < 1e-12);
            assert!((i1.amps() + i2.amps()).abs() < 1e-15);
        }
    }

    #[test]
    fn low_bias_extraction_recovers_r() {
        // The sweep must stay well below I_sat·R ≈ 1.4 V for the low-bias
        // window to be genuinely ohmic.
        let d = device(55.0);
        let curve = iv_sweep(&d, Voltage::from_millivolts(100.0), 101, 0.01, 3).unwrap();
        let r = curve.low_bias_resistance().unwrap();
        assert!(
            (r.kilo_ohms() - 55.0).abs() / 55.0 < 0.05,
            "{}",
            r.kilo_ohms()
        );
    }

    #[test]
    fn fig2d_doping_lowers_resistance() {
        // Pristine MWCNT ~120 kΩ; PtCl₄ doping cuts the tube contribution.
        let pristine = device(120.0);
        let doped = device(45.0);
        let rp = iv_sweep(&pristine, Voltage::from_volts(1.0), 101, 0.02, 5)
            .unwrap()
            .low_bias_resistance()
            .unwrap();
        let rd = iv_sweep(&doped, Voltage::from_volts(1.0), 101, 0.02, 5)
            .unwrap()
            .low_bias_resistance()
            .unwrap();
        assert!(
            rd.ohms() < 0.5 * rp.ohms(),
            "doped {} vs pristine {}",
            rd.ohms(),
            rp.ohms()
        );
    }

    #[test]
    fn validation() {
        let mut bad = device(10.0);
        bad.resistance = Resistance::from_ohms(0.0);
        assert!(iv_sweep(&bad, Voltage::from_volts(1.0), 11, 0.0, 1).is_err());
        let d = device(10.0);
        assert!(iv_sweep(&d, Voltage::from_volts(1.0), 2, 0.0, 1).is_err());
        assert!(iv_sweep(&d, Voltage::from_volts(1.0), 11, -0.5, 1).is_err());
        let tiny = IvCurve {
            points: vec![(Voltage::from_volts(0.0), Current::from_amps(0.0))],
        };
        assert!(tiny.low_bias_resistance().is_err());
    }
}
