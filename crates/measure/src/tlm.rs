//! Transmission-line-method (TLM) extraction of contact resistance
//! (Reeves & Harrison, reference \[23\] of the paper).
//!
//! Devices of several channel lengths share nominally identical contacts;
//! total resistance follows `R(L) = 2·R_c + r·L`. A straight-line fit
//! yields the per-length resistance `r` (slope) and the contact resistance
//! `R_c` (half the intercept), with standard errors from the regression.

use crate::{Error, Result};
use cnt_units::math::{self, LinearFit};
use cnt_units::rand_ext;
use cnt_units::si::{Length, Resistance};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Ground truth + instrument description of a TLM experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TlmExperiment {
    /// Channel lengths of the test devices.
    pub lengths: Vec<Length>,
    /// True single-contact resistance, ohms.
    pub contact_resistance: f64,
    /// True per-length resistance, Ω/m.
    pub resistance_per_length: f64,
    /// Multiplicative measurement noise sigma (fraction of each reading).
    pub noise: f64,
}

impl TlmExperiment {
    /// The paper-flavoured default: MWCNT segments of 0.5–5 µm with
    /// 20 kΩ contacts and ~10 kΩ/µm of tube resistance, 2 % readout noise.
    pub fn mwcnt_default() -> Self {
        Self {
            lengths: [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0]
                .iter()
                .map(|&um| Length::from_micrometers(um))
                .collect(),
            contact_resistance: 20e3,
            resistance_per_length: 10e3 / 1e-6,
            noise: 0.02,
        }
    }

    /// Validates the experiment description.
    ///
    /// # Errors
    ///
    /// [`Error::TooFewPoints`] for fewer than 3 lengths,
    /// [`Error::InvalidParameter`] for negative truths/noise.
    pub fn validate(&self) -> Result<()> {
        if self.lengths.len() < 3 {
            return Err(Error::TooFewPoints {
                got: self.lengths.len(),
                min: 3,
            });
        }
        if self.contact_resistance < 0.0 {
            return Err(Error::InvalidParameter {
                name: "contact_resistance",
                value: self.contact_resistance,
            });
        }
        if self.resistance_per_length <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "resistance_per_length",
                value: self.resistance_per_length,
            });
        }
        if self.noise < 0.0 {
            return Err(Error::InvalidParameter {
                name: "noise",
                value: self.noise,
            });
        }
        Ok(())
    }

    /// The relative noise draws of one seeded measurement run, one per
    /// length, in device order — exactly the draws [`Self::measure`]
    /// makes. Splitting the (serial, cheap) RNG pass from the per-device
    /// arithmetic lets callers evaluate devices independently (e.g. on a
    /// thread pool) while keeping the seeded stream byte-identical.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn noise_draws(&self, seed: u64) -> Result<Vec<f64>> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(self
            .lengths
            .iter()
            .map(|_| rand_ext::normal(&mut rng, 0.0, self.noise))
            .collect())
    }

    /// The measured resistance of device `index` given its relative noise
    /// draw (from [`Self::noise_draws`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn measurement(&self, index: usize, noise_draw: f64) -> (Length, Resistance) {
        let l = self.lengths[index];
        let ideal = 2.0 * self.contact_resistance + self.resistance_per_length * l.meters();
        let noisy = ideal * (1.0 + noise_draw);
        (l, Resistance::from_ohms(noisy))
    }

    /// Generates the noisy measured resistances, one per length.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn measure(&self, seed: u64) -> Result<Vec<(Length, Resistance)>> {
        let draws = self.noise_draws(seed)?;
        Ok(draws
            .into_iter()
            .enumerate()
            .map(|(i, draw)| self.measurement(i, draw))
            .collect())
    }
}

/// Extracted TLM parameters with confidence information.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TlmFit {
    /// Extracted single-contact resistance, ohms.
    pub contact_resistance: f64,
    /// 1-σ standard error of the contact resistance, ohms.
    pub contact_stderr: f64,
    /// Extracted per-length resistance, Ω/m.
    pub resistance_per_length: f64,
    /// 1-σ standard error of the per-length resistance, Ω/m.
    pub per_length_stderr: f64,
    /// Regression R².
    pub r_squared: f64,
}

impl TlmFit {
    /// `true` when `truth` lies within `n_sigma` of the extracted contact
    /// resistance.
    pub fn contact_within(&self, truth: f64, n_sigma: f64) -> bool {
        (self.contact_resistance - truth).abs() <= n_sigma * self.contact_stderr.max(1e-12)
    }
}

/// Fits TLM data (`R(L) = 2·R_c + r·L`).
///
/// # Errors
///
/// * [`Error::TooFewPoints`] for fewer than 3 points;
/// * [`Error::DegenerateFit`] when all lengths coincide.
pub fn fit_tlm(data: &[(Length, Resistance)]) -> Result<TlmFit> {
    if data.len() < 3 {
        return Err(Error::TooFewPoints {
            got: data.len(),
            min: 3,
        });
    }
    let x: Vec<f64> = data.iter().map(|(l, _)| l.meters()).collect();
    let y: Vec<f64> = data.iter().map(|(_, r)| r.ohms()).collect();
    let LinearFit {
        intercept,
        slope,
        intercept_stderr,
        slope_stderr,
        r_squared,
    } = math::linear_fit(&x, &y).ok_or(Error::DegenerateFit("identical channel lengths"))?;
    Ok(TlmFit {
        contact_resistance: intercept / 2.0,
        contact_stderr: intercept_stderr / 2.0,
        resistance_per_length: slope,
        per_length_stderr: slope_stderr,
        r_squared,
    })
}

/// One-call convenience: run the experiment and fit it.
///
/// # Errors
///
/// Propagates generation and fitting errors.
pub fn run_tlm(experiment: &TlmExperiment, seed: u64) -> Result<TlmFit> {
    fit_tlm(&experiment.measure(seed)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_free_extraction_is_exact() {
        let mut exp = TlmExperiment::mwcnt_default();
        exp.noise = 0.0;
        let fit = run_tlm(&exp, 1).unwrap();
        assert!((fit.contact_resistance - 20e3).abs() < 1e-6);
        assert!((fit.resistance_per_length - 1e10).abs() / 1e10 < 1e-12);
        assert!(fit.r_squared > 0.999_999_9);
    }

    #[test]
    fn noisy_extraction_recovers_truth_within_ci() {
        let exp = TlmExperiment::mwcnt_default();
        let mut hits = 0;
        for seed in 0..40 {
            let fit = run_tlm(&exp, seed).unwrap();
            if fit.contact_within(20e3, 3.0) {
                hits += 1;
            }
        }
        // 3σ interval should capture the truth almost always.
        assert!(hits >= 37, "only {hits}/40 within 3σ");
    }

    #[test]
    fn more_lengths_tighten_the_interval() {
        let few = TlmExperiment {
            lengths: [1.0, 2.0, 3.0]
                .iter()
                .map(|&um| Length::from_micrometers(um))
                .collect(),
            ..TlmExperiment::mwcnt_default()
        };
        let avg_stderr = |e: &TlmExperiment| -> f64 {
            (0..30)
                .map(|s| run_tlm(e, s).unwrap().contact_stderr)
                .sum::<f64>()
                / 30.0
        };
        let many = TlmExperiment {
            lengths: (1..=14)
                .map(|k| Length::from_micrometers(0.4 * k as f64))
                .collect(),
            ..TlmExperiment::mwcnt_default()
        };
        assert!(avg_stderr(&many) < avg_stderr(&few));
    }

    #[test]
    fn validation_and_degenerate_fits() {
        let mut bad = TlmExperiment::mwcnt_default();
        bad.lengths.truncate(2);
        assert!(bad.measure(1).is_err());
        let mut bad = TlmExperiment::mwcnt_default();
        bad.resistance_per_length = 0.0;
        assert!(bad.measure(1).is_err());
        let mut bad = TlmExperiment::mwcnt_default();
        bad.noise = -0.1;
        assert!(bad.measure(1).is_err());

        let same_l: Vec<(Length, Resistance)> = (0..4)
            .map(|i| {
                (
                    Length::from_micrometers(2.0),
                    Resistance::from_ohms(40e3 + i as f64),
                )
            })
            .collect();
        assert!(matches!(fit_tlm(&same_l), Err(Error::DegenerateFit(_))));
        assert!(fit_tlm(&same_l[..2]).is_err());
    }

    #[test]
    fn doped_tube_shows_lower_slope() {
        // Doping reduces the per-length resistance but not the contacts
        // (externally doped side contacts keep their transfer length).
        let pristine = TlmExperiment::mwcnt_default();
        let doped = TlmExperiment {
            resistance_per_length: pristine.resistance_per_length / 3.0,
            ..pristine.clone()
        };
        let fp = run_tlm(&pristine, 9).unwrap();
        let fd = run_tlm(&doped, 9).unwrap();
        assert!(fd.resistance_per_length < 0.5 * fp.resistance_per_length);
        // Contacts statistically unchanged.
        assert!(
            (fd.contact_resistance - fp.contact_resistance).abs()
                < 4.0 * (fd.contact_stderr + fp.contact_stderr)
        );
    }
}
