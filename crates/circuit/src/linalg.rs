//! Dense linear algebra for the MNA engine: LU factorization with partial
//! pivoting.
//!
//! Circuit matrices in this workspace stay small (a few hundred unknowns:
//! inverters plus RC ladders), where a cache-friendly dense LU beats a
//! sparse solver in both code size and constant factors. Factorizations
//! are reused across transient steps of linear circuits.

use crate::{Error, Result};

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    /// Writes entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] = v;
    }

    /// Adds `v` into entry `(r, c)` — the MNA "stamp" primitive.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] += v;
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Dense matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|r| {
                let row = &self.data[r * self.n..(r + 1) * self.n];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// Factors the matrix in place (Doolittle LU with partial pivoting).
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] when no usable pivot exists.
    pub fn lu_factor(mut self) -> Result<LuFactors> {
        let n = self.n;
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Partial pivot.
            let mut best = col;
            let mut best_val = self.get(col, col).abs();
            for r in col + 1..n {
                let v = self.get(r, col).abs();
                if v > best_val {
                    best = r;
                    best_val = v;
                }
            }
            if best_val < 1e-300 {
                return Err(Error::SingularMatrix { row: col });
            }
            if best != col {
                for c in 0..n {
                    let tmp = self.get(col, c);
                    self.set(col, c, self.get(best, c));
                    self.set(best, c, tmp);
                }
                perm.swap(col, best);
            }
            let pivot = self.get(col, col);
            for r in col + 1..n {
                let factor = self.get(r, col) / pivot;
                self.set(r, col, factor);
                if factor != 0.0 {
                    for c in col + 1..n {
                        let v = self.get(r, c) - factor * self.get(col, c);
                        self.set(r, c, v);
                    }
                }
            }
        }
        Ok(LuFactors { lu: self, perm })
    }
}

/// LU factorization with its row permutation.
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: DenseMatrix,
    perm: Vec<usize>,
}

impl LuFactors {
    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    // Index loops kept as-is: iterator rewrites would regroup the float
    // accumulation and change bit-exact solver output.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.n;
        assert_eq!(b.len(), n);
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution (unit lower triangle).
        for r in 1..n {
            let mut acc = x[r];
            for c in 0..r {
                acc -= self.lu.get(r, c) * x[c];
            }
            x[r] = acc;
        }
        // Back substitution.
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in r + 1..n {
                acc -= self.lu.get(r, c) * x[c];
            }
            x[r] = acc / self.lu.get(r, r);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_rows(rows: &[&[f64]]) -> DenseMatrix {
        let n = rows.len();
        let mut m = DenseMatrix::zeros(n);
        for (r, row) in rows.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                m.set(r, c, *v);
            }
        }
        m
    }

    #[test]
    fn solves_small_system_exactly() {
        let a = from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]);
        let x_true = [1.0, -2.0, 3.0];
        let b = a.mul_vec(&x_true);
        let x = a.lu_factor().unwrap().solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.lu_factor().unwrap().solve(&[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(a.lu_factor(), Err(Error::SingularMatrix { .. })));
    }

    #[test]
    fn factor_reuse_multiple_rhs() {
        let a = from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let f = a.clone().lu_factor().unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [5.0, -2.0]] {
            let x = f.solve(&b);
            let back = a.mul_vec(&x);
            assert!((back[0] - b[0]).abs() < 1e-12);
            assert!((back[1] - b[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn stamp_and_clear() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.5);
        m.add(0, 0, 0.5);
        assert_eq!(m.get(0, 0), 2.0);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.dim(), 2);
    }

    #[test]
    fn random_system_roundtrip() {
        // Deterministic pseudo-random fill; checks residual of a 30×30 solve.
        let n = 30;
        let mut m = DenseMatrix::zeros(n);
        let mut seed = 123456789u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, next());
            }
            m.add(r, r, 5.0); // diagonal dominance ⇒ nonsingular
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = m.clone().lu_factor().unwrap().solve(&b);
        let back = m.mul_vec(&x);
        for (bi, yi) in b.iter().zip(&back) {
            assert!((bi - yi).abs() < 1e-9);
        }
    }
}
