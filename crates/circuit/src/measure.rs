//! Waveform measurements: crossing times, propagation delay, rise/fall
//! times — the `.measure` cards of classic SPICE decks.

use crate::{Error, Result};

/// Edge direction for threshold crossings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Signal crosses the threshold upwards.
    Rising,
    /// Signal crosses the threshold downwards.
    Falling,
    /// Either direction.
    Any,
}

/// First time `wave` crosses `threshold` in the given direction at or
/// after `t_start`, linearly interpolated between samples.
///
/// # Errors
///
/// Returns [`Error::InvalidOptions`] if no crossing exists.
pub fn crossing_time(wave: &[(f64, f64)], threshold: f64, edge: Edge, t_start: f64) -> Result<f64> {
    for w in wave.windows(2) {
        let (t0, v0) = w[0];
        let (t1, v1) = w[1];
        if t1 < t_start {
            continue;
        }
        let rising = v0 < threshold && v1 >= threshold;
        let falling = v0 > threshold && v1 <= threshold;
        let hit = match edge {
            Edge::Rising => rising,
            Edge::Falling => falling,
            Edge::Any => rising || falling,
        };
        if hit {
            let frac = if (v1 - v0).abs() < f64::MIN_POSITIVE {
                0.0
            } else {
                (threshold - v0) / (v1 - v0)
            };
            let t = t0 + frac * (t1 - t0);
            if t >= t_start {
                return Ok(t);
            }
        }
    }
    Err(Error::InvalidOptions("no threshold crossing found"))
}

/// 50 %-to-50 % propagation delay between an input and an output waveform
/// swinging between `v_low` and `v_high`. The output crossing is searched
/// *after* the input crossing (in either direction), so inverting stages
/// measure correctly.
///
/// # Errors
///
/// Returns [`Error::InvalidOptions`] when either waveform never crosses
/// its midpoint.
pub fn propagation_delay(
    input: &[(f64, f64)],
    output: &[(f64, f64)],
    v_low: f64,
    v_high: f64,
) -> Result<f64> {
    let mid = 0.5 * (v_low + v_high);
    let t_in = crossing_time(input, mid, Edge::Any, 0.0)?;
    let t_out = crossing_time(output, mid, Edge::Any, t_in)?;
    Ok(t_out - t_in)
}

/// 10 %–90 % rise time of a waveform swinging from `v_low` to `v_high`.
///
/// # Errors
///
/// Returns [`Error::InvalidOptions`] when the waveform does not complete
/// the transition.
pub fn rise_time(wave: &[(f64, f64)], v_low: f64, v_high: f64) -> Result<f64> {
    let swing = v_high - v_low;
    let t10 = crossing_time(wave, v_low + 0.1 * swing, Edge::Rising, 0.0)?;
    let t90 = crossing_time(wave, v_low + 0.9 * swing, Edge::Rising, t10)?;
    Ok(t90 - t10)
}

/// 90 %–10 % fall time of a waveform swinging from `v_high` to `v_low`.
///
/// # Errors
///
/// Returns [`Error::InvalidOptions`] when the waveform does not complete
/// the transition.
pub fn fall_time(wave: &[(f64, f64)], v_low: f64, v_high: f64) -> Result<f64> {
    let swing = v_high - v_low;
    let t90 = crossing_time(wave, v_low + 0.9 * swing, Edge::Falling, 0.0)?;
    let t10 = crossing_time(wave, v_low + 0.1 * swing, Edge::Falling, t90)?;
    Ok(t10 - t90)
}

/// Relative overshoot above the final value: `(max − final)/swing` for a
/// waveform settling from `v_initial` towards `v_final`. Zero for a
/// monotone response; ~1 for a lossless LC step.
///
/// # Errors
///
/// Returns [`Error::InvalidOptions`] for an empty waveform or zero swing.
pub fn overshoot(wave: &[(f64, f64)], v_initial: f64, v_final: f64) -> Result<f64> {
    if wave.is_empty() {
        return Err(Error::InvalidOptions("empty waveform"));
    }
    let swing = v_final - v_initial;
    if swing == 0.0 {
        return Err(Error::InvalidOptions("zero swing"));
    }
    let extreme = if swing > 0.0 {
        wave.iter()
            .map(|(_, v)| *v)
            .fold(f64::NEG_INFINITY, f64::max)
    } else {
        wave.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min)
    };
    Ok(((extreme - v_final) / swing).max(0.0))
}

/// Time after which the waveform stays within `±tolerance·swing` of
/// `v_final` for the rest of the record.
///
/// # Errors
///
/// Returns [`Error::InvalidOptions`] if the waveform never settles or is
/// empty.
pub fn settling_time(
    wave: &[(f64, f64)],
    v_initial: f64,
    v_final: f64,
    tolerance: f64,
) -> Result<f64> {
    if wave.is_empty() {
        return Err(Error::InvalidOptions("empty waveform"));
    }
    let band = tolerance * (v_final - v_initial).abs();
    if band <= 0.0 {
        return Err(Error::InvalidOptions("zero settling band"));
    }
    // Walk backwards to the last out-of-band sample.
    let mut last_violation: Option<usize> = None;
    for (i, (_, v)) in wave.iter().enumerate() {
        if (v - v_final).abs() > band {
            last_violation = Some(i);
        }
    }
    match last_violation {
        None => Ok(wave[0].0),
        Some(i) if i + 1 < wave.len() => Ok(wave[i + 1].0),
        Some(_) => Err(Error::InvalidOptions("waveform never settles in-band")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Vec<(f64, f64)> {
        // 0 → 1 V linear ramp over 10 ns, sampled every ns.
        (0..=10)
            .map(|k| (k as f64 * 1e-9, k as f64 * 0.1))
            .collect()
    }

    #[test]
    fn crossing_interpolates_linearly() {
        let w = ramp();
        let t = crossing_time(&w, 0.55, Edge::Rising, 0.0).unwrap();
        assert!((t - 5.5e-9).abs() < 1e-15);
        assert!(crossing_time(&w, 0.55, Edge::Falling, 0.0).is_err());
        assert!(crossing_time(&w, 2.0, Edge::Any, 0.0).is_err());
    }

    #[test]
    fn start_time_filter() {
        // Triangle: up then down.
        let mut w = ramp();
        w.extend((1..=10).map(|k| (10e-9 + k as f64 * 1e-9, 1.0 - k as f64 * 0.1)));
        let up = crossing_time(&w, 0.5, Edge::Any, 0.0).unwrap();
        let down = crossing_time(&w, 0.5, Edge::Any, 11e-9).unwrap();
        assert!(up < 6e-9);
        assert!(down > 14e-9);
    }

    #[test]
    fn delay_between_shifted_edges() {
        let input: Vec<(f64, f64)> = (0..=100)
            .map(|k| {
                let t = k as f64 * 1e-11;
                (t, if t > 1e-10 { 1.0 } else { 0.0 })
            })
            .collect();
        let output: Vec<(f64, f64)> = (0..=100)
            .map(|k| {
                let t = k as f64 * 1e-11;
                (t, if t > 5e-10 { 0.0 } else { 1.0 })
            })
            .collect();
        // Inverting stage: input rises at ~0.1 ns, output falls at ~0.5 ns.
        let d = propagation_delay(&input, &output, 0.0, 1.0).unwrap();
        assert!((d - 4e-10).abs() < 2e-11, "delay {d}");
    }

    #[test]
    fn overshoot_and_settling_of_damped_ring() {
        // Damped oscillation settling to 1.0.
        let wave: Vec<(f64, f64)> = (0..=400)
            .map(|k| {
                let t = k as f64 * 1e-9;
                let v = 1.0 - (-t / 50e-9).exp() * (t / 10e-9).cos();
                (t, v)
            })
            .collect();
        let os = overshoot(&wave, 0.0, 1.0).unwrap();
        assert!(os > 0.2 && os < 1.0, "overshoot {os}");
        let ts = settling_time(&wave, 0.0, 1.0, 0.05).unwrap();
        assert!(ts > 50e-9 && ts < 350e-9, "settling {ts}");
        // Monotone response: zero overshoot, settles early.
        let mono: Vec<(f64, f64)> = (0..=100)
            .map(|k| {
                let t = k as f64 * 1e-9;
                (t, 1.0 - (-t / 10e-9).exp())
            })
            .collect();
        assert_eq!(overshoot(&mono, 0.0, 1.0).unwrap(), 0.0);
        assert!(settling_time(&mono, 0.0, 1.0, 0.05).unwrap() < 50e-9);
    }

    #[test]
    fn overshoot_and_settling_error_paths() {
        assert!(overshoot(&[], 0.0, 1.0).is_err());
        assert!(overshoot(&[(0.0, 0.5)], 1.0, 1.0).is_err());
        assert!(settling_time(&[], 0.0, 1.0, 0.05).is_err());
        // Never settles: last sample still out of band.
        let bad = vec![(0.0, 0.0), (1.0, 5.0)];
        assert!(settling_time(&bad, 0.0, 1.0, 0.05).is_err());
        // Falling swing works too.
        let down: Vec<(f64, f64)> = (0..=100)
            .map(|k| {
                let t = k as f64;
                (t, (-t / 10.0).exp())
            })
            .collect();
        assert_eq!(overshoot(&down, 1.0, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn rise_and_fall_times_of_ramp() {
        let w = ramp();
        let tr = rise_time(&w, 0.0, 1.0).unwrap();
        assert!((tr - 8e-9).abs() < 1e-12, "rise {tr}");
        let mut down: Vec<(f64, f64)> = ramp().into_iter().map(|(t, v)| (t, 1.0 - v)).collect();
        down.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let tf = fall_time(&down, 0.0, 1.0).unwrap();
        assert!((tf - 8e-9).abs() < 1e-12, "fall {tf}");
    }
}
