//! Circuit data model and builder API.
//!
//! A [`Circuit`] is a bag of elements over interned nodes. Node `"0"`
//! (alias `"gnd"`) is the ground reference. Element constructors validate
//! values eagerly (C-VALIDATE) and reject duplicate names so netlists stay
//! debuggable.

use crate::mosfet::MosfetModel;
use crate::waveform::Waveform;
use crate::{Error, Result};
use std::collections::HashMap;

/// Opaque node handle returned by [`Circuit::node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Index into voltage vectors (ground = 0).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One circuit element.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Element {
    Resistor {
        name: String,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    },
    Capacitor {
        name: String,
        a: NodeId,
        b: NodeId,
        farads: f64,
    },
    Inductor {
        name: String,
        a: NodeId,
        b: NodeId,
        henries: f64,
    },
    VSource {
        name: String,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
    },
    ISource {
        name: String,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
    },
    Mosfet {
        name: String,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        model: MosfetModel,
    },
}

impl Element {
    pub(crate) fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::Inductor { name, .. }
            | Element::VSource { name, .. }
            | Element::ISource { name, .. }
            | Element::Mosfet { name, .. } => name,
        }
    }
}

/// A circuit under construction (and the input to the analyses).
///
/// # Example
///
/// ```
/// use cnt_circuit::circuit::Circuit;
/// use cnt_circuit::waveform::Waveform;
///
/// let mut c = Circuit::new();
/// let a = c.node("a");
/// c.add_vsource("V1", a, Circuit::GND, Waveform::Dc(1.0))?;
/// c.add_resistor("R1", a, Circuit::GND, 50.0)?;
/// assert_eq!(c.node_count(), 2); // ground + "a"
/// # Ok::<(), cnt_circuit::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_lookup: HashMap<String, NodeId>,
    pub(crate) elements: Vec<Element>,
    element_names: HashMap<String, usize>,
}

impl Circuit {
    /// The ground node (always present, index 0).
    pub const GND: NodeId = NodeId(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut c = Self {
            node_names: vec!["0".to_string()],
            node_lookup: HashMap::new(),
            elements: Vec::new(),
            element_names: HashMap::new(),
        };
        c.node_lookup.insert("0".into(), NodeId(0));
        c.node_lookup.insert("gnd".into(), NodeId(0));
        c
    }

    /// Interns a node by name, creating it on first use. `"0"` and `"gnd"`
    /// always refer to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_lookup.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.node_lookup.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] if the node has never been created.
    pub fn find_node(&self, name: &str) -> Result<NodeId> {
        self.node_lookup
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownNode {
                name: name.to_string(),
            })
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// All node names in id order (ground first).
    pub fn node_names(&self) -> Vec<&str> {
        self.node_names.iter().map(String::as_str).collect()
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// `true` if the circuit contains nonlinear devices (MOSFETs).
    pub fn has_nonlinear(&self) -> bool {
        self.elements
            .iter()
            .any(|e| matches!(e, Element::Mosfet { .. }))
    }

    fn register(&mut self, e: Element) -> Result<()> {
        let name = e.name().to_string();
        if self.element_names.contains_key(&name) {
            return Err(Error::DuplicateElement { name });
        }
        self.element_names.insert(name, self.elements.len());
        self.elements.push(e);
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidValue`] for non-positive or non-finite resistance;
    /// [`Error::DuplicateElement`] on name reuse.
    pub fn add_resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) -> Result<()> {
        if !ohms.is_finite() || ohms <= 0.0 {
            return Err(Error::InvalidValue {
                element: name.to_string(),
                value: ohms,
            });
        }
        self.register(Element::Resistor {
            name: name.to_string(),
            a,
            b,
            ohms,
        })
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidValue`] for negative or non-finite capacitance;
    /// [`Error::DuplicateElement`] on name reuse.
    pub fn add_capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) -> Result<()> {
        if !farads.is_finite() || farads < 0.0 {
            return Err(Error::InvalidValue {
                element: name.to_string(),
                value: farads,
            });
        }
        self.register(Element::Capacitor {
            name: name.to_string(),
            a,
            b,
            farads,
        })
    }

    /// Adds an inductor.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidValue`] for non-positive or non-finite inductance;
    /// [`Error::DuplicateElement`] on name reuse.
    pub fn add_inductor(&mut self, name: &str, a: NodeId, b: NodeId, henries: f64) -> Result<()> {
        if !henries.is_finite() || henries <= 0.0 {
            return Err(Error::InvalidValue {
                element: name.to_string(),
                value: henries,
            });
        }
        self.register(Element::Inductor {
            name: name.to_string(),
            a,
            b,
            henries,
        })
    }

    /// Adds an independent voltage source (positive terminal `p`).
    ///
    /// # Errors
    ///
    /// Propagates waveform validation; [`Error::DuplicateElement`] on name
    /// reuse.
    pub fn add_vsource(&mut self, name: &str, p: NodeId, n: NodeId, wave: Waveform) -> Result<()> {
        wave.validate()?;
        self.register(Element::VSource {
            name: name.to_string(),
            p,
            n,
            wave,
        })
    }

    /// Adds an independent current source (current flows from `p` through
    /// the source to `n`).
    ///
    /// # Errors
    ///
    /// Propagates waveform validation; [`Error::DuplicateElement`] on name
    /// reuse.
    pub fn add_isource(&mut self, name: &str, p: NodeId, n: NodeId, wave: Waveform) -> Result<()> {
        wave.validate()?;
        self.register(Element::ISource {
            name: name.to_string(),
            p,
            n,
            wave,
        })
    }

    /// Adds a MOSFET (drain, gate, source; bulk is tied to source in this
    /// level-1 model).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidValue`] for non-positive geometry or `kp`;
    /// [`Error::DuplicateElement`] on name reuse.
    pub fn add_mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        model: MosfetModel,
    ) -> Result<()> {
        if model.width <= 0.0 || model.length <= 0.0 || model.kp <= 0.0 {
            return Err(Error::InvalidValue {
                element: name.to_string(),
                value: model.width.min(model.length).min(model.kp),
            });
        }
        self.register(Element::Mosfet {
            name: name.to_string(),
            d,
            g,
            s,
            model,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), Circuit::GND);
        assert_eq!(c.node("gnd"), Circuit::GND);
        assert_eq!(c.node_count(), 1);
        assert_eq!(c.node_name(Circuit::GND), "0");
    }

    #[test]
    fn node_interning_is_stable() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_ne!(a, b);
        assert_eq!(c.node("a"), a);
        assert_eq!(c.find_node("b").unwrap(), b);
        assert!(c.find_node("zz").is_err());
    }

    #[test]
    fn element_validation() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert!(c.add_resistor("R1", a, Circuit::GND, -5.0).is_err());
        assert!(c.add_resistor("R1", a, Circuit::GND, f64::NAN).is_err());
        assert!(c.add_capacitor("C1", a, Circuit::GND, -1e-15).is_err());
        assert!(c.add_inductor("L1", a, Circuit::GND, 0.0).is_err());
        c.add_resistor("R1", a, Circuit::GND, 5.0).unwrap();
        // Duplicate name rejected even across element kinds.
        assert!(matches!(
            c.add_capacitor("R1", a, Circuit::GND, 1e-15),
            Err(Error::DuplicateElement { .. })
        ));
        assert_eq!(c.element_count(), 1);
    }

    #[test]
    fn nonlinearity_detection() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R1", a, Circuit::GND, 5.0).unwrap();
        assert!(!c.has_nonlinear());
        c.add_mosfet(
            "M1",
            a,
            Circuit::GND,
            Circuit::GND,
            crate::mosfet::MosfetModel::nmos_45nm(),
        )
        .unwrap();
        assert!(c.has_nonlinear());
    }

    #[test]
    fn bad_mosfet_geometry_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let mut m = crate::mosfet::MosfetModel::nmos_45nm();
        m.width = 0.0;
        assert!(c.add_mosfet("M1", a, a, Circuit::GND, m).is_err());
    }
}
