//! DC operating point and transient analysis (the MNA engine).
//!
//! Unknown vector: node voltages (ground excluded) followed by branch
//! currents of voltage sources and inductors. Nonlinear devices enter
//! through Newton iteration with companion (linearized) stamps. The
//! transient integrator is selectable between backward Euler and the
//! trapezoidal rule — one of the ablations called out in DESIGN.md §6.

use crate::circuit::{Circuit, Element, NodeId};
use crate::linalg::DenseMatrix;
use crate::mosfet::{MosfetModel, Polarity};
use crate::{Error, Result};

/// Minimum conductance added across MOSFET channels for Newton robustness.
const GMIN: f64 = 1e-12;

/// Transient integration scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integrator {
    /// First-order, L-stable; damps ringing (default).
    BackwardEuler,
    /// Second-order, A-stable; preserves energy better.
    Trapezoidal,
}

/// Transient analysis options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranOptions {
    /// End time, seconds.
    pub t_stop: f64,
    /// Fixed time step, seconds.
    pub dt: f64,
    /// Integration scheme.
    pub integrator: Integrator,
    /// Newton iteration cap per step.
    pub max_newton: usize,
    /// Newton voltage convergence tolerance, volts.
    pub v_tol: f64,
    /// Start from the DC operating point (default) or from all-zeros.
    pub from_dc: bool,
}

impl TranOptions {
    /// Convenience constructor with defaults (backward Euler, DC start).
    pub fn new(t_stop: f64, dt: f64) -> Self {
        Self {
            t_stop,
            dt,
            integrator: Integrator::BackwardEuler,
            max_newton: 60,
            v_tol: 1e-6,
            from_dc: true,
        }
    }

    /// Switches to the trapezoidal integrator.
    pub fn trapezoidal(mut self) -> Self {
        self.integrator = Integrator::Trapezoidal;
        self
    }
}

/// DC operating-point result.
#[derive(Debug, Clone)]
pub struct DcResult {
    names: Vec<String>,
    voltages: Vec<f64>,
}

impl DcResult {
    /// Voltage of a node by name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown names.
    pub fn voltage(&self, node: &str) -> Result<f64> {
        self.names
            .iter()
            .position(|n| n == node)
            .map(|i| self.voltages[i])
            .ok_or_else(|| Error::UnknownNode {
                name: node.to_string(),
            })
    }

    /// All node voltages in node-id order (ground first).
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }
}

/// Transient result: sampled node voltages over time.
#[derive(Debug, Clone)]
pub struct TranResult {
    names: Vec<String>,
    times: Vec<f64>,
    /// `data[step][node_index]`.
    data: Vec<Vec<f64>>,
}

impl TranResult {
    /// Sampled time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Node index by name.
    fn index(&self, node: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == node)
            .ok_or_else(|| Error::UnknownNode {
                name: node.to_string(),
            })
    }

    /// Voltage samples of one node.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown names.
    pub fn voltage(&self, node: &str) -> Result<Vec<f64>> {
        let i = self.index(node)?;
        Ok(self.data.iter().map(|row| row[i]).collect())
    }

    /// `(time, voltage)` pairs of one node — the input format of the
    /// [`crate::measure`] helpers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown names.
    pub fn waveform(&self, node: &str) -> Result<Vec<(f64, f64)>> {
        let i = self.index(node)?;
        Ok(self
            .times
            .iter()
            .zip(&self.data)
            .map(|(t, row)| (*t, row[i]))
            .collect())
    }

    /// Final voltage of one node.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown names.
    pub fn final_voltage(&self, node: &str) -> Result<f64> {
        let i = self.index(node)?;
        Ok(self.data.last().map(|row| row[i]).unwrap_or(0.0))
    }
}

/// Internal assembly workspace.
struct Assembler {
    /// Number of non-ground nodes.
    n_nodes: usize,
    /// Branch index of each V-source / inductor element (by element order).
    branch_of: Vec<Option<usize>>,
    /// Total unknowns.
    n_unknowns: usize,
}

impl Assembler {
    fn new(circuit: &Circuit) -> Self {
        let n_nodes = circuit.node_count() - 1;
        let mut branch_of = vec![None; circuit.elements.len()];
        let mut next = 0;
        for (idx, e) in circuit.elements.iter().enumerate() {
            if matches!(e, Element::VSource { .. } | Element::Inductor { .. }) {
                branch_of[idx] = Some(n_nodes + next);
                next += 1;
            }
        }
        Self {
            n_nodes,
            branch_of,
            n_unknowns: n_nodes + next,
        }
    }

    /// Row/column of a node (None = ground).
    #[inline]
    fn node_row(&self, n: NodeId) -> Option<usize> {
        if n.index() == 0 {
            None
        } else {
            Some(n.index() - 1)
        }
    }

    fn stamp_conductance(&self, m: &mut DenseMatrix, a: NodeId, b: NodeId, g: f64) {
        let ra = self.node_row(a);
        let rb = self.node_row(b);
        if let Some(i) = ra {
            m.add(i, i, g);
        }
        if let Some(j) = rb {
            m.add(j, j, g);
        }
        if let (Some(i), Some(j)) = (ra, rb) {
            m.add(i, j, -g);
            m.add(j, i, -g);
        }
    }

    fn stamp_current(&self, b: &mut [f64], into: NodeId, i: f64) {
        if let Some(r) = self.node_row(into) {
            b[r] += i;
        }
    }

    /// Assembles the resistive Jacobian `G(x)` and source vector `b(x, t)`
    /// such that the linearized KCL reads `G·x = b`.
    fn assemble_resistive(
        &self,
        circuit: &Circuit,
        x: &[f64],
        t: f64,
        g: &mut DenseMatrix,
        b: &mut [f64],
    ) {
        g.clear();
        b.iter_mut().for_each(|v| *v = 0.0);
        let volt = |n: NodeId| -> f64 {
            match self.node_row(n) {
                None => 0.0,
                Some(r) => x[r],
            }
        };
        for (idx, e) in circuit.elements.iter().enumerate() {
            match e {
                Element::Resistor { a, b: nb, ohms, .. } => {
                    self.stamp_conductance(g, *a, *nb, 1.0 / ohms);
                }
                Element::Capacitor { .. } => {}
                Element::Inductor { a, b: nb, .. } => {
                    let br = self.branch_of[idx].expect("inductor branch assigned");
                    // Node KCL: branch current leaves a, enters b.
                    if let Some(r) = self.node_row(*a) {
                        g.add(r, br, 1.0);
                    }
                    if let Some(r) = self.node_row(*nb) {
                        g.add(r, br, -1.0);
                    }
                    // Branch voltage equation handled in the C matrix
                    // (v_a − v_b = L·di/dt); resistive part:
                    if let Some(c) = self.node_row(*a) {
                        g.add(br, c, 1.0);
                    }
                    if let Some(c) = self.node_row(*nb) {
                        g.add(br, c, -1.0);
                    }
                    // Note: the L·di/dt term lives in the reactive matrix.
                }
                Element::VSource { p, n, wave, .. } => {
                    let br = self.branch_of[idx].expect("vsource branch assigned");
                    if let Some(r) = self.node_row(*p) {
                        g.add(r, br, 1.0);
                    }
                    if let Some(r) = self.node_row(*n) {
                        g.add(r, br, -1.0);
                    }
                    if let Some(c) = self.node_row(*p) {
                        g.add(br, c, 1.0);
                    }
                    if let Some(c) = self.node_row(*n) {
                        g.add(br, c, -1.0);
                    }
                    b[br] += wave.value_at(t);
                }
                Element::ISource { p, n, wave, .. } => {
                    let i = wave.value_at(t);
                    self.stamp_current(b, *p, -i);
                    self.stamp_current(b, *n, i);
                }
                Element::Mosfet {
                    d,
                    g: gate,
                    s,
                    model,
                    ..
                } => {
                    self.stamp_mosfet(g, b, *d, *gate, *s, model, &volt);
                }
            }
        }
    }

    /// Stamps the companion model of one MOSFET at the bias point given by
    /// the voltage closure.
    #[allow(clippy::too_many_arguments)]
    fn stamp_mosfet(
        &self,
        g: &mut DenseMatrix,
        b: &mut [f64],
        d: NodeId,
        gate: NodeId,
        s: NodeId,
        model: &MosfetModel,
        volt: &dyn Fn(NodeId) -> f64,
    ) {
        let sign = match model.polarity {
            Polarity::Nmos => 1.0,
            Polarity::Pmos => -1.0,
        };
        // Effective frame: v = sign·V; pick effective drain/source so
        // vds_eff ≥ 0 (the level-1 device is source/drain symmetric).
        let (de, se) = if sign * volt(d) >= sign * volt(s) {
            (d, s)
        } else {
            (s, d)
        };
        let vgs_eff = sign * (volt(gate) - volt(se));
        let vds_eff = sign * (volt(de) - volt(se));
        let lin = model.evaluate(vgs_eff, vds_eff);
        // Companion current source (effective frame).
        let ieq_eff = lin.id - lin.gm * vgs_eff - lin.gds * vds_eff;

        // Conductance stamps are identical in both frames; the equivalent
        // current source flips with the polarity sign.
        let (rd, rg, rs) = (self.node_row(de), self.node_row(gate), self.node_row(se));
        // i(D→S) = gm·(Vg − Vs) + gds·(Vd − Vs) + sign·Ieq.
        if let Some(i) = rd {
            if let Some(c) = rg {
                g.add(i, c, lin.gm);
            }
            if let Some(c) = rd {
                g.add(i, c, lin.gds);
            }
            if let Some(c) = rs {
                g.add(i, c, -(lin.gm + lin.gds));
            }
            b[i] -= sign * ieq_eff;
        }
        if let Some(i) = rs {
            if let Some(c) = rg {
                g.add(i, c, -lin.gm);
            }
            if let Some(c) = rd {
                g.add(i, c, -lin.gds);
            }
            if let Some(c) = rs {
                g.add(i, c, lin.gm + lin.gds);
            }
            b[i] += sign * ieq_eff;
        }
        // Convergence aid.
        self.stamp_conductance(g, de, se, GMIN);
    }

    /// Assembles the reactive matrix `C` (constant: capacitors, gate caps,
    /// inductor branches).
    fn assemble_reactive(&self, circuit: &Circuit, c: &mut DenseMatrix) {
        c.clear();
        for (idx, e) in circuit.elements.iter().enumerate() {
            match e {
                Element::Capacitor { a, b, farads, .. } => {
                    self.stamp_capacitance(c, *a, *b, *farads);
                }
                Element::Inductor { henries, .. } => {
                    let br = self.branch_of[idx].expect("inductor branch assigned");
                    // Branch equation: v_a − v_b − L·di/dt = 0.
                    c.add(br, br, -henries);
                }
                Element::Mosfet { d, g, s, model, .. } => {
                    self.stamp_capacitance(c, *g, *s, model.cgs);
                    self.stamp_capacitance(c, *g, *d, model.cgd);
                }
                _ => {}
            }
        }
    }

    fn stamp_capacitance(&self, m: &mut DenseMatrix, a: NodeId, b: NodeId, f: f64) {
        self.stamp_conductance(m, a, b, f);
    }
}

impl Circuit {
    /// Computes the DC operating point (capacitors open, inductors short).
    ///
    /// # Errors
    ///
    /// [`Error::NoConvergence`] if Newton stalls;
    /// [`Error::SingularMatrix`] for floating nodes or source loops.
    pub fn dc_operating_point(&self) -> Result<DcResult> {
        let asm = Assembler::new(self);
        let n = asm.n_unknowns;
        let mut x = vec![0.0; n];
        let mut g = DenseMatrix::zeros(n);
        let mut b = vec![0.0; n];
        let max_iter = 200;
        for it in 0..max_iter {
            asm.assemble_resistive(self, &x, 0.0, &mut g, &mut b);
            // Inductors at DC: short → their branch equation degenerates to
            // v_a − v_b = 0, which assemble_resistive already produced
            // (the L·di/dt term lives in C and is absent here). Good.
            let lu = g.clone().lu_factor()?;
            let x_new = lu.solve(&b);
            if !self.has_nonlinear() {
                // Linear system: the first solve is exact.
                return Ok(self.pack_dc(&asm, &x_new));
            }
            let mut delta = 0.0f64;
            for i in 0..n {
                delta = delta.max((x_new[i] - x[i]).abs());
            }
            // Damping: clamp huge Newton steps on the *node voltages* only
            // (branch currents may legitimately be large).
            for i in 0..n {
                let step = if i < asm.n_nodes {
                    (x_new[i] - x[i]).clamp(-2.0, 2.0)
                } else {
                    x_new[i] - x[i]
                };
                x[i] += step;
            }
            if delta < 1e-9 {
                return Ok(self.pack_dc(&asm, &x));
            }
            if delta < 1e-7 && it > 3 {
                return Ok(self.pack_dc(&asm, &x));
            }
        }
        Err(Error::NoConvergence {
            context: "dc".to_string(),
            iterations: max_iter,
        })
    }

    fn pack_dc(&self, asm: &Assembler, x: &[f64]) -> DcResult {
        let mut voltages = vec![0.0; self.node_count()];
        voltages[1..=asm.n_nodes].copy_from_slice(&x[..asm.n_nodes]);
        DcResult {
            names: self.node_names().iter().map(|s| s.to_string()).collect(),
            voltages,
        }
    }

    /// Runs a fixed-step transient analysis.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidOptions`] for non-positive times;
    /// [`Error::NoConvergence`] / [`Error::SingularMatrix`] from the
    /// per-step Newton solves.
    pub fn transient(&self, options: &TranOptions) -> Result<TranResult> {
        if options.dt <= 0.0 || options.t_stop <= 0.0 || options.t_stop < options.dt {
            return Err(Error::InvalidOptions("need 0 < dt <= t_stop"));
        }
        let asm = Assembler::new(self);
        let n = asm.n_unknowns;
        let nonlinear = self.has_nonlinear();
        let h = options.dt;

        let mut c_mat = DenseMatrix::zeros(n);
        asm.assemble_reactive(self, &mut c_mat);

        // Initial state.
        let mut x = vec![0.0; n];
        if options.from_dc {
            let dc = self.dc_operating_point()?;
            x[..asm.n_nodes].copy_from_slice(&dc.voltages()[1..=asm.n_nodes]);
            // Branch currents of the DC solution are recomputed implicitly
            // in the first step; starting them at zero is harmless for the
            // fixed-step integrators used here.
        }

        let mut g = DenseMatrix::zeros(n);
        let mut b = vec![0.0; n];

        // For linear circuits the Jacobian is constant: factor once.
        let trap = options.integrator == Integrator::Trapezoidal;
        let cdt_scale = if trap { 2.0 / h } else { 1.0 / h };

        let mut lu_cache = None;
        if !nonlinear {
            asm.assemble_resistive(self, &x, 0.0, &mut g, &mut b);
            let mut j = g.clone();
            add_scaled(&mut j, &c_mat, cdt_scale);
            lu_cache = Some(j.lu_factor()?);
        }

        let steps = (options.t_stop / h).round() as usize;
        let mut times = Vec::with_capacity(steps + 1);
        let mut data = Vec::with_capacity(steps + 1);
        times.push(0.0);
        data.push(self.sample(&asm, &x));

        // Trapezoidal needs f(x_n) = G·x_n − b_n from the previous step.
        let mut f_prev = {
            asm.assemble_resistive(self, &x, 0.0, &mut g, &mut b);
            let gx = g.mul_vec(&x);
            gx.iter().zip(&b).map(|(a, s)| a - s).collect::<Vec<f64>>()
        };

        for step in 1..=steps {
            let t = step as f64 * h;
            let mut x_new = x.clone();
            let mut converged = !nonlinear;

            // rhs base: C/h·x_n (BE) or 2C/h·x_n − f_prev (TRAP).
            let cx = c_mat.mul_vec(&x);

            if let Some(lu) = &lu_cache {
                // Linear fast path: rhs = b(t) + scale·C·x_n (− f_prev for TRAP).
                asm.assemble_resistive(self, &x, t, &mut g, &mut b);
                let mut rhs = b.clone();
                for i in 0..n {
                    rhs[i] += cdt_scale * cx[i];
                    if trap {
                        rhs[i] -= f_prev[i];
                    }
                }
                x_new = lu.solve(&rhs);
            } else {
                // Newton loop.
                for _it in 0..options.max_newton {
                    asm.assemble_resistive(self, &x_new, t, &mut g, &mut b);
                    let mut j = g.clone();
                    add_scaled(&mut j, &c_mat, cdt_scale);
                    let mut rhs = b.clone();
                    for i in 0..n {
                        rhs[i] += cdt_scale * cx[i];
                        if trap {
                            rhs[i] -= f_prev[i];
                        }
                    }
                    let lu = j.lu_factor()?;
                    let x_next = lu.solve(&rhs);
                    let mut delta = 0.0f64;
                    for i in 0..n {
                        delta = delta.max((x_next[i] - x_new[i]).abs());
                    }
                    x_new = x_next;
                    if delta < options.v_tol {
                        converged = true;
                        break;
                    }
                }
                if !converged {
                    return Err(Error::NoConvergence {
                        context: format!("transient t={t:.3e}"),
                        iterations: options.max_newton,
                    });
                }
            }

            if trap {
                // f(x_{n+1}) for the next step.
                asm.assemble_resistive(self, &x_new, t, &mut g, &mut b);
                let gx = g.mul_vec(&x_new);
                for i in 0..n {
                    f_prev[i] = gx[i] - b[i];
                }
            }

            x = x_new;
            times.push(t);
            data.push(self.sample(&asm, &x));
        }

        Ok(TranResult {
            names: self.node_names().iter().map(|s| s.to_string()).collect(),
            times,
            data,
        })
    }

    fn sample(&self, asm: &Assembler, x: &[f64]) -> Vec<f64> {
        let mut row = vec![0.0; self.node_count()];
        row[1..=asm.n_nodes].copy_from_slice(&x[..asm.n_nodes]);
        row
    }

    /// Builds the small-signal system for AC analysis: the conductance
    /// Jacobian `G` linearized at the DC operating point, the reactive
    /// matrix `C`, and the RHS pattern with the named voltage source as a
    /// unit phasor (all other independent sources zeroed).
    ///
    /// Returns `(G row-major, C row-major, b, n_unknowns)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn small_signal_system(
        &self,
        source: &str,
    ) -> Result<(Vec<f64>, Vec<f64>, Vec<f64>, usize)> {
        let asm = Assembler::new(self);
        let n = asm.n_unknowns;

        // Locate the AC source's branch row.
        let mut branch_row = None;
        for (idx, e) in self.elements.iter().enumerate() {
            if let Element::VSource { name, .. } = e {
                if name == source {
                    branch_row = asm.branch_of[idx];
                }
            }
        }
        let branch_row = branch_row.ok_or_else(|| Error::UnknownNode {
            name: format!("voltage source '{source}'"),
        })?;

        // Bias point (zeros suffice for linear circuits).
        let mut x = vec![0.0; n];
        if self.has_nonlinear() {
            let dc = self.dc_operating_point()?;
            x[..asm.n_nodes].copy_from_slice(&dc.voltages()[1..=asm.n_nodes]);
        }

        let mut g = DenseMatrix::zeros(n);
        let mut b_dc = vec![0.0; n];
        asm.assemble_resistive(self, &x, 0.0, &mut g, &mut b_dc);
        let mut c = DenseMatrix::zeros(n);
        asm.assemble_reactive(self, &mut c);

        let mut g_flat = vec![0.0; n * n];
        let mut c_flat = vec![0.0; n * n];
        for r in 0..n {
            for col in 0..n {
                g_flat[r * n + col] = g.get(r, col);
                c_flat[r * n + col] = c.get(r, col);
            }
        }
        let mut b = vec![0.0; n];
        b[branch_row] = 1.0;
        Ok((g_flat, c_flat, b, n))
    }
}

/// `a += s·b` entrywise.
fn add_scaled(a: &mut DenseMatrix, b: &DenseMatrix, s: f64) {
    let n = a.dim();
    for r in 0..n {
        for c in 0..n {
            let v = b.get(r, c);
            if v != 0.0 {
                a.add(r, c, s * v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn resistive_divider_dc() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let mid = c.node("mid");
        c.add_vsource("V1", vin, Circuit::GND, Waveform::Dc(3.0))
            .unwrap();
        c.add_resistor("R1", vin, mid, 2e3).unwrap();
        c.add_resistor("R2", mid, Circuit::GND, 1e3).unwrap();
        let dc = c.dc_operating_point().unwrap();
        assert!((dc.voltage("mid").unwrap() - 1.0).abs() < 1e-9);
        assert!((dc.voltage("in").unwrap() - 3.0).abs() < 1e-9);
        assert!(dc.voltage("none").is_err());
    }

    #[test]
    fn floating_node_is_singular() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let d = c.node("d");
        c.add_vsource("V1", a, Circuit::GND, Waveform::Dc(1.0))
            .unwrap();
        c.add_resistor("R1", a, Circuit::GND, 1e3).unwrap();
        // Nodes b and d form an island with no path to the rest.
        c.add_resistor("R2", b, d, 1e3).unwrap();
        assert!(matches!(
            c.dc_operating_point(),
            Err(Error::SingularMatrix { .. })
        ));
    }

    #[test]
    fn rc_step_response_be_and_trap() {
        for trap in [false, true] {
            let mut c = Circuit::new();
            let vin = c.node("in");
            let vout = c.node("out");
            c.add_vsource("Vs", vin, Circuit::GND, Waveform::step(1.0))
                .unwrap();
            c.add_resistor("R1", vin, vout, 1e3).unwrap();
            c.add_capacitor("C1", vout, Circuit::GND, 1e-9).unwrap();
            let mut opts = TranOptions::new(5e-6, 5e-9);
            if trap {
                opts = opts.trapezoidal();
            }
            let tr = c.transient(&opts).unwrap();
            let w = tr.waveform("out").unwrap();
            // Value at t = τ = 1 µs should be 1 − e⁻¹.
            let v_tau = w.iter().find(|(t, _)| *t >= 1e-6).unwrap().1;
            assert!(
                (v_tau - (1.0 - (-1.0f64).exp())).abs() < 5e-3,
                "trap={trap}: v(τ) = {v_tau}"
            );
            // Settles to 1 − e⁻⁵ after five time constants.
            assert!((tr.final_voltage("out").unwrap() - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn rl_circuit_current_rise() {
        // V—R—L to ground: i(t) = V/R(1 − e^{−tR/L}), v_L decays.
        let mut c = Circuit::new();
        let vin = c.node("in");
        let mid = c.node("mid");
        c.add_vsource("Vs", vin, Circuit::GND, Waveform::step(1.0))
            .unwrap();
        c.add_resistor("R1", vin, mid, 1e3).unwrap();
        c.add_inductor("L1", mid, Circuit::GND, 1e-3).unwrap();
        // τ = L/R = 1 µs.
        let tr = c.transient(&TranOptions::new(5e-6, 5e-9)).unwrap();
        let w = tr.waveform("mid").unwrap();
        let v_tau = w.iter().find(|(t, _)| *t >= 1e-6).unwrap().1;
        // v_mid = V·e^{−t/τ} (voltage across the inductor).
        assert!((v_tau - (-1.0f64).exp()).abs() < 5e-3, "v(τ) = {v_tau}");
        // e⁻⁵ ≈ 0.0067 remains after five time constants.
        assert!(tr.final_voltage("mid").unwrap().abs() < 1e-2);
    }

    #[test]
    fn inverter_dc_transfer() {
        use crate::mosfet::MosfetModel;
        let vdd_v = 1.0;
        let eval = |vin_v: f64| -> f64 {
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let vin = c.node("in");
            let vout = c.node("out");
            c.add_vsource("Vdd", vdd, Circuit::GND, Waveform::Dc(vdd_v))
                .unwrap();
            c.add_vsource("Vin", vin, Circuit::GND, Waveform::Dc(vin_v))
                .unwrap();
            c.add_mosfet("Mn", vout, vin, Circuit::GND, MosfetModel::nmos_45nm())
                .unwrap();
            c.add_mosfet("Mp", vout, vin, vdd, MosfetModel::pmos_45nm())
                .unwrap();
            // Small load keeps the output defined in all regions.
            c.add_resistor("Rload", vout, Circuit::GND, 1e9).unwrap();
            c.dc_operating_point().unwrap().voltage("out").unwrap()
        };
        let low_in = eval(0.0);
        let high_in = eval(1.0);
        assert!(low_in > 0.95, "inverter output high: {low_in}");
        assert!(high_in < 0.05, "inverter output low: {high_in}");
        // Transfer is monotonically decreasing.
        let mid1 = eval(0.45);
        let mid2 = eval(0.55);
        assert!(mid1 > mid2, "{mid1} vs {mid2}");
    }

    #[test]
    fn inverter_transient_switches() {
        use crate::mosfet::MosfetModel;
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource("Vdd", vdd, Circuit::GND, Waveform::Dc(1.0))
            .unwrap();
        c.add_vsource(
            "Vin",
            vin,
            Circuit::GND,
            Waveform::edge(0.0, 1.0, 20e-12, 10e-12),
        )
        .unwrap();
        c.add_mosfet("Mn", vout, vin, Circuit::GND, MosfetModel::nmos_45nm())
            .unwrap();
        c.add_mosfet("Mp", vout, vin, vdd, MosfetModel::pmos_45nm())
            .unwrap();
        c.add_capacitor("Cl", vout, Circuit::GND, 1e-15).unwrap();
        let tr = c.transient(&TranOptions::new(500e-12, 0.5e-12)).unwrap();
        let first = tr.voltage("out").unwrap()[0];
        let last = tr.final_voltage("out").unwrap();
        assert!(first > 0.95, "starts high: {first}");
        assert!(last < 0.05, "ends low: {last}");
    }

    #[test]
    fn option_validation() {
        let c = Circuit::new();
        assert!(c.transient(&TranOptions::new(-1.0, 1e-9)).is_err());
        assert!(c.transient(&TranOptions::new(1e-9, 0.0)).is_err());
    }

    #[test]
    fn trapezoidal_preserves_ringing_that_backward_euler_damps() {
        // Second-order, A-stable TRAP keeps the overshoot of a high-Q RLC
        // step response; L-stable BE artificially damps it. This is the
        // integrator ablation of DESIGN.md §6.
        let build = || {
            let mut c = Circuit::new();
            let vin = c.node("in");
            let a = c.node("a");
            let b = c.node("b");
            c.add_vsource("Vs", vin, Circuit::GND, Waveform::step(1.0))
                .unwrap();
            c.add_resistor("R1", vin, a, 1.0).unwrap();
            c.add_inductor("L1", a, b, 1e-6).unwrap();
            c.add_capacitor("C1", b, Circuit::GND, 1e-9).unwrap();
            c
        };
        // Period 2π√(LC) ≈ 199 ns; step 5 ns ≈ 40 points per period.
        let opts = TranOptions::new(1e-6, 5e-9);
        let peak = |w: &[(f64, f64)]| w.iter().map(|p| p.1).fold(f64::MIN, f64::max);
        let be = build().transient(&opts).unwrap().waveform("b").unwrap();
        let tr = build()
            .transient(&opts.trapezoidal())
            .unwrap()
            .waveform("b")
            .unwrap();
        let peak_be = peak(&be);
        let peak_tr = peak(&tr);
        // Ideal overshoot for Q ≈ 31.6 is ≈ 1.95.
        assert!(peak_tr > 1.8, "TRAP keeps the overshoot: {peak_tr}");
        assert!(peak_tr > peak_be + 0.05, "TRAP {peak_tr} vs BE {peak_be}");
    }
}
