//! Distributed interconnect-line builders.
//!
//! The delay benchmark of the paper (Fig. 11) loads inverters with MWCNT
//! interconnects modelled as distributed RC lines (Eqs. 4–5 give the total
//! R and C; the compact-model crate computes them). This module expands a
//! total (R, C[, L]) into a π-segment ladder inside a [`Circuit`].

use crate::circuit::{Circuit, NodeId};
use crate::{Error, Result};

/// Electrical totals of a line to be expanded into a ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineTotals {
    /// Total series resistance, ohms.
    pub resistance: f64,
    /// Total shunt capacitance, farads.
    pub capacitance: f64,
    /// Total series inductance, henries (0 = RC only).
    pub inductance: f64,
}

impl LineTotals {
    /// RC-only totals.
    pub fn rc(resistance: f64, capacitance: f64) -> Self {
        Self {
            resistance,
            capacitance,
            inductance: 0.0,
        }
    }

    /// Elmore delay estimate `0.38·R·C + …` for a distributed line driven
    /// by a source with resistance `r_drv` into a load `c_load`:
    /// `t_50 ≈ 0.69·(r_drv·(C + c_load) + R·c_load) + 0.38·R·C`.
    pub fn elmore_delay(&self, r_drv: f64, c_load: f64) -> f64 {
        0.69 * (r_drv * (self.capacitance + c_load) + self.resistance * c_load)
            + 0.38 * self.resistance * self.capacitance
    }
}

/// Expands a distributed line into `segments` π-sections between `input`
/// and `output`. Internal nodes are named `"<prefix>_n<k>"`. Returns the
/// list of created internal node ids.
///
/// Each π-section carries `R/n` (and `L/n` when present) in series with
/// half the section capacitance at each of its two ends, which makes the
/// ladder symmetric and second-order accurate in `1/n`.
///
/// # Errors
///
/// * [`Error::InvalidOptions`] if `segments == 0`;
/// * [`Error::InvalidValue`] for non-positive R or negative C/L.
///
/// # Example
///
/// ```
/// use cnt_circuit::prelude::*;
/// use cnt_circuit::line::{add_distributed_line, LineTotals};
///
/// let mut c = Circuit::new();
/// let a = c.node("a");
/// let b = c.node("b");
/// add_distributed_line(&mut c, "ln", a, b, LineTotals::rc(1e3, 1e-13), 8)?;
/// assert!(c.element_count() >= 16);
/// # Ok::<(), cnt_circuit::Error>(())
/// ```
pub fn add_distributed_line(
    circuit: &mut Circuit,
    prefix: &str,
    input: NodeId,
    output: NodeId,
    totals: LineTotals,
    segments: usize,
) -> Result<Vec<NodeId>> {
    if segments == 0 {
        return Err(Error::InvalidOptions("need at least one line segment"));
    }
    if totals.resistance <= 0.0 {
        return Err(Error::InvalidValue {
            element: format!("{prefix} (resistance)"),
            value: totals.resistance,
        });
    }
    if totals.capacitance < 0.0 || totals.inductance < 0.0 {
        return Err(Error::InvalidValue {
            element: format!("{prefix} (reactance)"),
            value: totals.capacitance.min(totals.inductance),
        });
    }
    let n = segments as f64;
    let r_seg = totals.resistance / n;
    let c_seg = totals.capacitance / n;
    let l_seg = totals.inductance / n;

    let mut internal = Vec::new();
    let mut prev = input;
    for k in 0..segments {
        let next = if k + 1 == segments {
            output
        } else {
            let id = circuit.node(&format!("{prefix}_n{}", k + 1));
            internal.push(id);
            id
        };
        // Half capacitance at the section entry.
        if c_seg > 0.0 {
            circuit.add_capacitor(&format!("{prefix}_ca{k}"), prev, Circuit::GND, c_seg / 2.0)?;
        }
        if l_seg > 0.0 {
            // Series R then L through an extra internal node.
            let mid = circuit.node(&format!("{prefix}_m{k}"));
            circuit.add_resistor(&format!("{prefix}_r{k}"), prev, mid, r_seg)?;
            circuit.add_inductor(&format!("{prefix}_l{k}"), mid, next, l_seg)?;
        } else {
            circuit.add_resistor(&format!("{prefix}_r{k}"), prev, next, r_seg)?;
        }
        // Half capacitance at the section exit.
        if c_seg > 0.0 {
            circuit.add_capacitor(&format!("{prefix}_cb{k}"), next, Circuit::GND, c_seg / 2.0)?;
        }
        prev = next;
    }
    Ok(internal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::TranOptions;
    use crate::waveform::Waveform;

    #[test]
    fn rejects_bad_parameters() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert!(add_distributed_line(&mut c, "l", a, b, LineTotals::rc(1e3, 1e-13), 0).is_err());
        assert!(add_distributed_line(&mut c, "l", a, b, LineTotals::rc(-1.0, 1e-13), 4).is_err());
        assert!(add_distributed_line(&mut c, "l", a, b, LineTotals::rc(1e3, -1e-13), 4).is_err());
    }

    #[test]
    fn dc_resistance_of_ladder_equals_total() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GND, Waveform::Dc(1.0))
            .unwrap();
        add_distributed_line(&mut c, "l", a, b, LineTotals::rc(10e3, 1e-13), 7).unwrap();
        c.add_resistor("Rterm", b, Circuit::GND, 10e3).unwrap();
        let dc = c.dc_operating_point().unwrap();
        // Divider: 10k line + 10k terminator ⇒ 0.5 V at the output.
        assert!((dc.voltage("b").unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn step_delay_approaches_distributed_limit_with_segments() {
        // 50 % delay of an ideally driven distributed RC line ≈ 0.38·RC.
        // A single ideally-driven π-section gives 0.69·R·(C/2) ≈ 0.345·RC
        // (its input half-capacitance hangs across the source), so the
        // ladder converges to the distributed limit from *below*.
        let delay_for = |segments: usize| -> f64 {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            c.add_vsource("V1", a, Circuit::GND, Waveform::step(1.0))
                .unwrap();
            add_distributed_line(&mut c, "l", a, b, LineTotals::rc(1e3, 1e-12), segments).unwrap();
            let tr = c.transient(&TranOptions::new(8e-9, 4e-12)).unwrap();
            let w = tr.waveform("b").unwrap();
            w.iter().find(|(_, v)| *v >= 0.5).map(|(t, _)| *t).unwrap()
        };
        let d1 = delay_for(1);
        let d16 = delay_for(16);
        let rc = 1e3 * 1e-12;
        assert!(
            (d1 - 0.345 * rc).abs() / (0.345 * rc) < 0.1,
            "d1 = {d1}, expected ≈ {}",
            0.345 * rc
        );
        assert!(
            (d16 - 0.38 * rc).abs() / (0.38 * rc) < 0.1,
            "d16 = {d16}, expected ≈ {}",
            0.38 * rc
        );
        assert!(d16 > d1, "ladder converges to 0.38·RC from below");
    }

    #[test]
    fn rlc_line_builds_and_runs() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GND, Waveform::step(1.0))
            .unwrap();
        add_distributed_line(
            &mut c,
            "l",
            a,
            b,
            LineTotals {
                resistance: 100.0,
                capacitance: 1e-13,
                inductance: 1e-10,
            },
            4,
        )
        .unwrap();
        c.add_resistor("Rterm", b, Circuit::GND, 1e6).unwrap();
        let tr = c.transient(&TranOptions::new(2e-9, 1e-12)).unwrap();
        let last = tr.final_voltage("b").unwrap();
        assert!((last - 1.0).abs() < 0.01, "settles to 1: {last}");
    }

    #[test]
    fn elmore_estimate_tracks_simulation() {
        let totals = LineTotals::rc(5e3, 2e-13);
        let r_drv = 1e3;
        let c_load = 5e-14;
        let est = totals.elmore_delay(r_drv, c_load);

        let mut c = Circuit::new();
        let src = c.node("src");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", src, Circuit::GND, Waveform::step(1.0))
            .unwrap();
        c.add_resistor("Rdrv", src, a, r_drv).unwrap();
        add_distributed_line(&mut c, "l", a, b, totals, 12).unwrap();
        c.add_capacitor("Cload", b, Circuit::GND, c_load).unwrap();
        let tr = c.transient(&TranOptions::new(3e-8, 1e-11)).unwrap();
        let w = tr.waveform("b").unwrap();
        let t50 = w.iter().find(|(_, v)| *v >= 0.5).map(|(t, _)| *t).unwrap();
        assert!(
            (t50 - est).abs() / est < 0.25,
            "simulated {t50:.3e} vs Elmore {est:.3e}"
        );
    }
}
