//! SPICE-like netlist parser.
//!
//! Consumes the "SPICE-like format" the paper's TCAD flow emits
//! (Section III.B) — which in this workspace is produced by
//! `cnt-fields::netlist::NetlistWriter` — plus hand-written decks with
//! sources and MOSFETs. Supported cards:
//!
//! ```text
//! * comment
//! R<name> n1 n2 <value>
//! C<name> n1 n2 <value>
//! L<name> n1 n2 <value>
//! V<name> n+ n- <dc value> | PULSE(v0 v1 delay rise fall width period) | PWL(t1 v1 t2 v2 …)
//! I<name> n+ n- <dc value>
//! M<name> d g s NMOS45|PMOS45 [W=<value>] [L=<value>]
//! .end
//! ```
//!
//! Values accept engineering suffixes (`f p n u µ m k meg g t`) as in
//! SPICE (`MEG` = 1e6, `m` = 1e-3).

use crate::circuit::Circuit;
use crate::mosfet::MosfetModel;
use crate::waveform::Waveform;
use crate::{Error, Result};

/// Parses a netlist into a [`Circuit`].
///
/// # Errors
///
/// Returns [`Error::Parse`] with line information for malformed cards and
/// propagates element-construction errors.
///
/// # Example
///
/// ```
/// use cnt_circuit::parse::parse_netlist;
///
/// let c = parse_netlist("* divider\nV1 in 0 1.0\nR1 in out 1k\nR2 out 0 1k\n.end\n")?;
/// let dc = c.dc_operating_point()?;
/// assert!((dc.voltage("out")? - 0.5).abs() < 1e-9);
/// # Ok::<(), cnt_circuit::Error>(())
/// ```
pub fn parse_netlist(text: &str) -> Result<Circuit> {
    let mut circuit = Circuit::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let n = lineno + 1;
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        if line.eq_ignore_ascii_case(".end") {
            break;
        }
        if line.starts_with('.') {
            // Other dot-cards (.tran, .model …) are accepted and ignored:
            // analysis is driven through the API.
            continue;
        }
        let upper = line.chars().next().unwrap().to_ascii_uppercase();
        let tokens: Vec<&str> = tokenize(line);
        match upper {
            'R' | 'C' | 'L' => parse_two_terminal(&mut circuit, &tokens, upper, n)?,
            'V' | 'I' => parse_source(&mut circuit, &tokens, upper, line, n)?,
            'M' => parse_mosfet(&mut circuit, &tokens, n)?,
            other => {
                return Err(Error::Parse {
                    line: n,
                    message: format!("unsupported element type '{other}'"),
                })
            }
        }
    }
    Ok(circuit)
}

/// Splits on whitespace but keeps `PULSE(...)`/`PWL(...)` groups intact.
fn tokenize(line: &str) -> Vec<&str> {
    let mut tokens = Vec::new();
    let mut depth = 0usize;
    let mut start = None::<usize>;
    for (i, ch) in line.char_indices() {
        match ch {
            '(' => {
                depth += 1;
                if start.is_none() {
                    start = Some(i);
                }
            }
            ')' => depth = depth.saturating_sub(1),
            c if c.is_whitespace() && depth == 0 => {
                if let Some(s) = start.take() {
                    tokens.push(&line[s..i]);
                }
            }
            _ => {
                if start.is_none() {
                    start = Some(i);
                }
            }
        }
    }
    if let Some(s) = start {
        tokens.push(&line[s..]);
    }
    tokens
}

/// Parses a SPICE value with engineering suffix.
pub fn parse_value(s: &str) -> Option<f64> {
    let lower = s.trim().to_ascii_lowercase();
    if lower.is_empty() {
        return None;
    }
    // Longest suffixes first.
    let table: [(&str, f64); 11] = [
        ("meg", 1e6),
        ("mil", 25.4e-6),
        ("t", 1e12),
        ("g", 1e9),
        ("k", 1e3),
        ("m", 1e-3),
        ("u", 1e-6),
        ("µ", 1e-6),
        ("n", 1e-9),
        ("p", 1e-12),
        ("f", 1e-15),
    ];
    for (suffix, scale) in table {
        if let Some(stripped) = lower.strip_suffix(suffix) {
            // Guard against stripping the exponent 'e' forms like "1e-15".
            if let Ok(v) = stripped.parse::<f64>() {
                return Some(v * scale);
            }
        }
    }
    lower.parse::<f64>().ok()
}

fn need<'a>(tokens: &'a [&'a str], idx: usize, line: usize, what: &str) -> Result<&'a str> {
    tokens.get(idx).copied().ok_or_else(|| Error::Parse {
        line,
        message: format!("missing {what}"),
    })
}

fn parse_two_terminal(c: &mut Circuit, tokens: &[&str], kind: char, line: usize) -> Result<()> {
    let name = need(tokens, 0, line, "element name")?;
    let n1 = need(tokens, 1, line, "first node")?;
    let n2 = need(tokens, 2, line, "second node")?;
    let vs = need(tokens, 3, line, "value")?;
    let value = parse_value(vs).ok_or_else(|| Error::Parse {
        line,
        message: format!("bad value '{vs}'"),
    })?;
    let a = c.node(n1);
    let b = c.node(n2);
    match kind {
        'R' => c.add_resistor(name, a, b, value),
        'C' => c.add_capacitor(name, a, b, value),
        'L' => c.add_inductor(name, a, b, value),
        _ => unreachable!("caller dispatches only R/C/L"),
    }
}

fn parse_source(
    c: &mut Circuit,
    tokens: &[&str],
    kind: char,
    line_text: &str,
    line: usize,
) -> Result<()> {
    let name = need(tokens, 0, line, "source name")?;
    let np = need(tokens, 1, line, "positive node")?;
    let nn = need(tokens, 2, line, "negative node")?;
    let spec = need(tokens, 3, line, "source value")?;
    let wave = parse_waveform(spec, line_text, line)?;
    let p = c.node(np);
    let n = c.node(nn);
    match kind {
        'V' => c.add_vsource(name, p, n, wave),
        'I' => c.add_isource(name, p, n, wave),
        _ => unreachable!("caller dispatches only V/I"),
    }
}

fn parse_waveform(spec: &str, _line_text: &str, line: usize) -> Result<Waveform> {
    let upper = spec.to_ascii_uppercase();
    if let Some(args) = strip_call(&upper, spec, "PULSE") {
        let vals = parse_args(&args, line)?;
        if vals.len() != 7 {
            return Err(Error::Parse {
                line,
                message: format!("PULSE needs 7 arguments, got {}", vals.len()),
            });
        }
        return Ok(Waveform::Pulse {
            v0: vals[0],
            v1: vals[1],
            delay: vals[2],
            rise: vals[3].max(1e-15),
            fall: vals[4].max(1e-15),
            width: vals[5],
            period: vals[6],
        });
    }
    if let Some(args) = strip_call(&upper, spec, "PWL") {
        let vals = parse_args(&args, line)?;
        if vals.len() < 2 || vals.len() % 2 != 0 {
            return Err(Error::Parse {
                line,
                message: "PWL needs an even number of arguments".to_string(),
            });
        }
        let pts = vals.chunks(2).map(|c| (c[0], c[1])).collect();
        return Ok(Waveform::Pwl(pts));
    }
    if let Some(args) = strip_call(&upper, spec, "SIN") {
        let vals = parse_args(&args, line)?;
        if vals.len() < 3 {
            return Err(Error::Parse {
                line,
                message: "SIN needs offset, amplitude, frequency".to_string(),
            });
        }
        return Ok(Waveform::Sin {
            offset: vals[0],
            ampl: vals[1],
            freq: vals[2],
            delay: vals.get(3).copied().unwrap_or(0.0),
        });
    }
    parse_value(spec)
        .map(Waveform::Dc)
        .ok_or_else(|| Error::Parse {
            line,
            message: format!("bad source value '{spec}'"),
        })
}

/// If `upper` starts with `NAME(`, returns the argument substring of the
/// original `spec`.
fn strip_call(upper: &str, spec: &str, name: &str) -> Option<String> {
    if upper.starts_with(&format!("{name}(")) && spec.ends_with(')') {
        Some(spec[name.len() + 1..spec.len() - 1].to_string())
    } else {
        None
    }
}

fn parse_args(args: &str, line: usize) -> Result<Vec<f64>> {
    args.split(|c: char| c.is_whitespace() || c == ',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            parse_value(s).ok_or_else(|| Error::Parse {
                line,
                message: format!("bad numeric argument '{s}'"),
            })
        })
        .collect()
}

fn parse_mosfet(c: &mut Circuit, tokens: &[&str], line: usize) -> Result<()> {
    let name = need(tokens, 0, line, "mosfet name")?;
    let nd = need(tokens, 1, line, "drain node")?;
    let ng = need(tokens, 2, line, "gate node")?;
    let ns = need(tokens, 3, line, "source node")?;
    let model_name = need(tokens, 4, line, "model name")?.to_ascii_uppercase();
    let mut model = match model_name.as_str() {
        "NMOS45" | "NMOS" => MosfetModel::nmos_45nm(),
        "PMOS45" | "PMOS" => MosfetModel::pmos_45nm(),
        other => {
            return Err(Error::Parse {
                line,
                message: format!("unknown MOSFET model '{other}'"),
            })
        }
    };
    for t in &tokens[5..] {
        let lower = t.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("w=") {
            let w = parse_value(v).ok_or_else(|| Error::Parse {
                line,
                message: format!("bad W value '{v}'"),
            })?;
            model = model.with_width(w);
        } else if let Some(v) = lower.strip_prefix("l=") {
            model.length = parse_value(v).ok_or_else(|| Error::Parse {
                line,
                message: format!("bad L value '{v}'"),
            })?;
        } else {
            return Err(Error::Parse {
                line,
                message: format!("unknown MOSFET parameter '{t}'"),
            });
        }
    }
    let d = c.node(nd);
    let g = c.node(ng);
    let s = c.node(ns);
    c.add_mosfet(name, d, g, s, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::TranOptions;

    #[test]
    fn value_suffixes() {
        let close = |s: &str, v: f64| {
            let got = parse_value(s).unwrap_or_else(|| panic!("'{s}' should parse"));
            assert!(
                (got - v).abs() <= 1e-12 * v.abs().max(1.0),
                "'{s}' → {got}, want {v}"
            );
        };
        close("1k", 1e3);
        close("2.5meg", 2.5e6);
        close("10u", 1e-5);
        close("10µ", 1e-5);
        close("3n", 3e-9);
        close("4p", 4e-12);
        close("5f", 5e-15);
        close("1e-15", 1e-15);
        close("-0.5", -0.5);
        close("1m", 1e-3);
        assert_eq!(parse_value("bogus"), None);
        assert_eq!(parse_value(""), None);
    }

    #[test]
    fn parses_divider_and_runs_dc() {
        let c = parse_netlist("V1 in 0 2.0\nR1 in out 1k\nR2 out gnd 3k\n.end").unwrap();
        let dc = c.dc_operating_point().unwrap();
        assert!((dc.voltage("out").unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn parses_pulse_source_and_runs_transient() {
        let text = "\
* RC with pulse
V1 in 0 PULSE(0 1 0 1p 1p 1n 0)
R1 in out 1k
C1 out 0 1p
.end";
        let c = parse_netlist(text).unwrap();
        let tr = c.transient(&TranOptions::new(5e-9, 2e-12)).unwrap();
        let v = tr.final_voltage("out").unwrap();
        // After the 1 ns pulse ended, output decays towards 0.
        assert!(v < 0.2, "v = {v}");
    }

    #[test]
    fn parses_pwl_and_mosfet_cards() {
        let text = "\
Vdd vdd 0 1.0
Vin in 0 PWL(0 0 10p 0 20p 1)
Mn out in 0 NMOS45 W=180n
Mp out in vdd PMOS45 W=360n
.end";
        let c = parse_netlist(text).unwrap();
        assert!(c.has_nonlinear());
        assert_eq!(c.element_count(), 4);
    }

    #[test]
    fn error_reporting_with_line_numbers() {
        let err = parse_netlist("R1 a b\n").unwrap_err();
        assert!(matches!(err, Error::Parse { line: 1, .. }));
        let err = parse_netlist("V1 a 0 1.0\nQ1 a b c\n").unwrap_err();
        assert!(matches!(err, Error::Parse { line: 2, .. }));
        let err = parse_netlist("V1 a 0 PULSE(0 1)\n").unwrap_err();
        assert!(matches!(err, Error::Parse { line: 1, .. }));
        let err = parse_netlist("M1 d g s BJT\n").unwrap_err();
        assert!(matches!(err, Error::Parse { line: 1, .. }));
    }

    #[test]
    fn ignores_comments_and_dot_cards() {
        let c = parse_netlist("* hi\n.tran 1n 10n\nR1 a 0 1k\n.end\nR2 never 0 1k").unwrap();
        assert_eq!(c.element_count(), 1);
    }

    #[test]
    fn roundtrip_with_fields_netlist_format() {
        // The exact shape NetlistWriter emits.
        let text = "\
* extracted parasitics
* coupling capacitances from field solution
Cc_m1_in_m1_out m1_in m1_out 2.5e-17
Cg_m1_in m1_in 0 1.1e-16
Rline m1_in m1_out 1.29e4
.end";
        let c = parse_netlist(text).unwrap();
        assert_eq!(c.element_count(), 3);
        assert!(c.find_node("m1_in").is_ok());
        assert!(c.find_node("m1_out").is_ok());
    }
}
