//! Independent-source waveforms.

use crate::{Error, Result};

/// Time-dependent value of a voltage or current source.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// SPICE-style pulse train.
    Pulse {
        /// Initial value.
        v0: f64,
        /// Pulsed value.
        v1: f64,
        /// Delay before the first edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Pulse width at `v1`, seconds.
        width: f64,
        /// Period (0 = single pulse), seconds.
        period: f64,
    },
    /// Piecewise-linear: sorted `(time, value)` points, clamped outside.
    Pwl(Vec<(f64, f64)>),
    /// Sinusoid `offset + ampl·sin(2πf(t − delay))` for `t ≥ delay`.
    Sin {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency, Hz.
        freq: f64,
        /// Start delay, seconds.
        delay: f64,
    },
}

impl Waveform {
    /// An ideal step from 0 to `v` at `t = 0` with a 1 ps edge.
    pub fn step(v: f64) -> Self {
        Waveform::Pulse {
            v0: 0.0,
            v1: v,
            delay: 0.0,
            rise: 1e-12,
            fall: 1e-12,
            width: f64::INFINITY,
            period: 0.0,
        }
    }

    /// A single rising edge from `v0` to `v1` after `delay`, with the given
    /// rise time — the stimulus used by the delay benchmarks.
    pub fn edge(v0: f64, v1: f64, delay: f64, rise: f64) -> Self {
        Waveform::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall: rise,
            width: f64::INFINITY,
            period: 0.0,
        }
    }

    /// Validates internal consistency (sorted PWL, positive pulse times).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidWaveform`] describing the violation.
    pub fn validate(&self) -> Result<()> {
        match self {
            Waveform::Dc(_) => Ok(()),
            Waveform::Pulse {
                rise, fall, width, ..
            } => {
                if *rise <= 0.0 || *fall <= 0.0 {
                    return Err(Error::InvalidWaveform("pulse edges must be positive"));
                }
                if *width < 0.0 {
                    return Err(Error::InvalidWaveform("pulse width must be non-negative"));
                }
                Ok(())
            }
            Waveform::Pwl(pts) => {
                if pts.is_empty() {
                    return Err(Error::InvalidWaveform("PWL needs at least one point"));
                }
                if pts.windows(2).any(|w| w[1].0 <= w[0].0) {
                    return Err(Error::InvalidWaveform("PWL times must strictly increase"));
                }
                Ok(())
            }
            Waveform::Sin { freq, .. } => {
                if *freq <= 0.0 {
                    return Err(Error::InvalidWaveform("sine frequency must be positive"));
                }
                Ok(())
            }
        }
    }

    /// Evaluates the waveform at time `t` (seconds).
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v0;
                }
                let mut tau = t - delay;
                if *period > 0.0 {
                    tau %= period;
                }
                if tau < *rise {
                    v0 + (v1 - v0) * tau / rise
                } else if tau < rise + width {
                    *v1
                } else if tau < rise + width + fall {
                    v1 - (v1 - v0) * (tau - rise - width) / fall
                } else {
                    *v0
                }
            }
            Waveform::Pwl(pts) => {
                if t <= pts[0].0 {
                    return pts[0].1;
                }
                let last = pts[pts.len() - 1];
                if t >= last.0 {
                    return last.1;
                }
                let idx = pts.partition_point(|p| p.0 < t);
                let (t0, v0) = pts[idx - 1];
                let (t1, v1) = pts[idx];
                v0 + (v1 - v0) * (t - t0) / (t1 - t0)
            }
            Waveform::Sin {
                offset,
                ampl,
                freq,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + ampl * (2.0 * core::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_flat() {
        let w = Waveform::Dc(1.2);
        assert_eq!(w.value_at(0.0), 1.2);
        assert_eq!(w.value_at(1e9), 1.2);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn pulse_edges_and_plateau() {
        let w = Waveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 1e-9,
            period: 0.0,
        };
        assert_eq!(w.value_at(0.0), 0.0);
        assert!((w.value_at(1.05e-9) - 0.5).abs() < 1e-9); // mid-rise
        assert_eq!(w.value_at(1.5e-9), 1.0); // plateau
        assert!((w.value_at(2.15e-9) - 0.5).abs() < 1e-9); // mid-fall
        assert_eq!(w.value_at(5e-9), 0.0);
    }

    #[test]
    fn periodic_pulse_repeats() {
        let w = Waveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 0.0,
            rise: 1e-12,
            fall: 1e-12,
            width: 0.5e-9,
            period: 1e-9,
        };
        assert_eq!(w.value_at(0.25e-9), 1.0);
        assert_eq!(w.value_at(0.75e-9), 0.0);
        assert_eq!(w.value_at(1.25e-9), 1.0);
        assert_eq!(w.value_at(7.75e-9), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (3.0, -2.0)]);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert!((w.value_at(0.5) - 1.0).abs() < 1e-12);
        assert!((w.value_at(2.0) - 0.0).abs() < 1e-12);
        assert_eq!(w.value_at(10.0), -2.0);
    }

    #[test]
    fn validation_catches_bad_shapes() {
        assert!(Waveform::Pwl(vec![]).validate().is_err());
        assert!(Waveform::Pwl(vec![(0.0, 1.0), (0.0, 2.0)])
            .validate()
            .is_err());
        assert!(Waveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 1e-12,
            width: 1.0,
            period: 0.0,
        }
        .validate()
        .is_err());
        assert!(Waveform::Sin {
            offset: 0.0,
            ampl: 1.0,
            freq: -1.0,
            delay: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn step_and_edge_helpers() {
        let s = Waveform::step(1.0);
        assert_eq!(s.value_at(0.0), 0.0);
        assert_eq!(s.value_at(1e-11), 1.0);
        let e = Waveform::edge(0.2, 0.8, 1e-9, 2e-10);
        assert_eq!(e.value_at(0.0), 0.2);
        assert!((e.value_at(1.1e-9) - 0.5).abs() < 1e-9);
        assert_eq!(e.value_at(1e-6), 0.8);
    }

    #[test]
    fn sine_basics() {
        let w = Waveform::Sin {
            offset: 0.5,
            ampl: 0.5,
            freq: 1e9,
            delay: 0.0,
        };
        assert!((w.value_at(0.0) - 0.5).abs() < 1e-12);
        assert!((w.value_at(0.25e-9) - 1.0).abs() < 1e-9);
    }
}
