//! Small-signal AC analysis.
//!
//! Solves `(G + jωC)·x = b` over a frequency sweep, with `G` linearized
//! at the DC operating point (so MOSFET stages analyze correctly around
//! bias). This extends the Fig. 11 benchmark to the frequency domain:
//! the bandwidth of a doped MWCNT interconnect rises with its channel
//! count just as its delay falls.

use crate::circuit::Circuit;
use crate::{Error, Result};

/// A complex number for the AC solver (kept private to the crate).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct Cx {
    re: f64,
    im: f64,
}

impl Cx {
    const ZERO: Cx = Cx { re: 0.0, im: 0.0 };

    fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    fn abs2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    fn mul(self, o: Cx) -> Cx {
        Cx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    fn sub(self, o: Cx) -> Cx {
        Cx::new(self.re - o.re, self.im - o.im)
    }

    fn div(self, o: Cx) -> Cx {
        let d = o.abs2();
        Cx::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

/// Dense complex LU with partial pivoting (by magnitude).
// Index loops kept as-is: the elimination order is part of the numerics.
#[allow(clippy::needless_range_loop)]
fn solve_complex(mut a: Vec<Vec<Cx>>, mut b: Vec<Cx>) -> Result<Vec<Cx>> {
    let n = b.len();
    for col in 0..n {
        let mut best = col;
        let mut best_mag = a[col][col].abs2();
        for r in col + 1..n {
            let m = a[r][col].abs2();
            if m > best_mag {
                best = r;
                best_mag = m;
            }
        }
        if best_mag < 1e-300 {
            return Err(Error::SingularMatrix { row: col });
        }
        a.swap(col, best);
        b.swap(col, best);
        let pivot = a[col][col];
        for r in col + 1..n {
            if a[r][col].abs2() == 0.0 {
                continue;
            }
            let f = a[r][col].div(pivot);
            for c in col..n {
                let v = a[r][c].sub(f.mul(a[col][c]));
                a[r][c] = v;
            }
            b[r] = b[r].sub(f.mul(b[col]));
        }
    }
    let mut x = vec![Cx::ZERO; n];
    for r in (0..n).rev() {
        let mut acc = b[r];
        for c in r + 1..n {
            acc = acc.sub(a[r][c].mul(x[c]));
        }
        x[r] = acc.div(a[r][r]);
    }
    Ok(x)
}

/// One point of an AC transfer sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcPoint {
    /// Frequency, Hz.
    pub frequency: f64,
    /// |H(jω)| at the probed node (relative to the 1 V source phasor).
    pub magnitude: f64,
    /// Phase in degrees.
    pub phase_degrees: f64,
}

/// Result of an AC sweep at one probe node.
#[derive(Debug, Clone, PartialEq)]
pub struct AcSweep {
    /// Sweep points in frequency order.
    pub points: Vec<AcPoint>,
}

impl AcSweep {
    /// The −3 dB bandwidth: first frequency where |H| falls below
    /// `1/√2` of the DC (first-point) magnitude.
    pub fn bandwidth(&self) -> Option<f64> {
        let h0 = self.points.first()?.magnitude;
        let target = h0 / 2f64.sqrt();
        self.points
            .iter()
            .find(|p| p.magnitude < target)
            .map(|p| p.frequency)
    }
}

impl Circuit {
    /// Small-signal transfer function from voltage source `source` (set
    /// to a 1 V phasor; every other independent source is zeroed) to the
    /// node named `probe`, over the given frequencies.
    ///
    /// MOSFETs are linearized at the DC operating point first.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownNode`] for an unknown source or probe;
    /// * [`Error::SingularMatrix`] / [`Error::NoConvergence`] from the
    ///   underlying solves;
    /// * [`Error::InvalidOptions`] for an empty frequency list.
    pub fn ac_transfer(&self, source: &str, probe: &str, freqs: &[f64]) -> Result<AcSweep> {
        if freqs.is_empty() {
            return Err(Error::InvalidOptions("empty frequency list"));
        }
        let probe_id = self.find_node(probe)?;
        let (g_real, c_real, b_pattern, n) = self.small_signal_system(source)?;

        let mut points = Vec::with_capacity(freqs.len());
        for &f in freqs {
            if f < 0.0 {
                return Err(Error::InvalidOptions("negative frequency"));
            }
            let omega = 2.0 * core::f64::consts::PI * f;
            let mut a = vec![vec![Cx::ZERO; n]; n];
            for r in 0..n {
                for c in 0..n {
                    let gre = g_real[r * n + c];
                    let cim = omega * c_real[r * n + c];
                    if gre != 0.0 || cim != 0.0 {
                        a[r][c] = Cx::new(gre, cim);
                    }
                }
            }
            let b: Vec<Cx> = b_pattern.iter().map(|&v| Cx::new(v, 0.0)).collect();
            let x = solve_complex(a, b)?;
            let v = if probe_id.index() == 0 {
                Cx::ZERO
            } else {
                x[probe_id.index() - 1]
            };
            points.push(AcPoint {
                frequency: f,
                magnitude: v.abs2().sqrt(),
                phase_degrees: v.im.atan2(v.re).to_degrees(),
            });
        }
        Ok(AcSweep { points })
    }
}

/// A logarithmic frequency grid from `f_start` to `f_stop` with
/// `points_per_decade` samples per decade.
///
/// # Errors
///
/// Returns [`Error::InvalidOptions`] for a non-positive range or zero
/// density.
pub fn log_frequency_grid(f_start: f64, f_stop: f64, points_per_decade: usize) -> Result<Vec<f64>> {
    if f_start <= 0.0 || f_stop <= f_start || points_per_decade == 0 {
        return Err(Error::InvalidOptions("invalid log frequency grid"));
    }
    let decades = (f_stop / f_start).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    Ok((0..n)
        .map(|k| f_start * 10f64.powf(k as f64 * decades / (n - 1) as f64))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn rc_lowpass_bandwidth_matches_analytic() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("Vs", a, Circuit::GND, Waveform::Dc(0.0))
            .unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_capacitor("C1", b, Circuit::GND, 1e-9).unwrap();
        // f_3dB = 1/(2πRC) ≈ 159.2 kHz.
        let freqs = log_frequency_grid(1e3, 1e8, 200).unwrap();
        let sweep = c.ac_transfer("Vs", "b", &freqs).unwrap();
        let bw = sweep.bandwidth().unwrap();
        let analytic = 1.0 / (2.0 * core::f64::consts::PI * 1e3 * 1e-9);
        assert!(
            (bw - analytic).abs() / analytic < 0.05,
            "bw {bw} vs {analytic}"
        );
        // Near-DC gain is unity (the 1 kHz point sits 2×10⁻⁵ below 1),
        // and the phase heads to −90°.
        assert!((sweep.points[0].magnitude - 1.0).abs() < 1e-3);
        assert!(sweep.points.last().unwrap().phase_degrees < -80.0);
    }

    #[test]
    fn rlc_series_resonance_peaks() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = c.node("m");
        let b = c.node("b");
        c.add_vsource("Vs", a, Circuit::GND, Waveform::Dc(0.0))
            .unwrap();
        c.add_resistor("R1", a, m, 10.0).unwrap();
        c.add_inductor("L1", m, b, 1e-6).unwrap();
        c.add_capacitor("C1", b, Circuit::GND, 1e-9).unwrap();
        // f0 = 1/(2π√(LC)) ≈ 5.03 MHz; output peaks above unity (Q > 1).
        let freqs = log_frequency_grid(1e5, 1e8, 100).unwrap();
        let sweep = c.ac_transfer("Vs", "b", &freqs).unwrap();
        let peak = sweep
            .points
            .iter()
            .max_by(|x, y| x.magnitude.partial_cmp(&y.magnitude).unwrap())
            .unwrap();
        let f0 = 1.0 / (2.0 * core::f64::consts::PI * (1e-6_f64 * 1e-9).sqrt());
        assert!(peak.magnitude > 2.0, "resonant peak {}", peak.magnitude);
        assert!(
            (peak.frequency - f0).abs() / f0 < 0.1,
            "peak at {} vs f0 {}",
            peak.frequency,
            f0
        );
    }

    #[test]
    fn inverter_small_signal_gain_at_midrail() {
        use crate::mosfet::MosfetModel;
        // Biased near its switching threshold an inverter is an amplifier:
        // |H| > 1 at low frequency.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let vout = c.node("out");
        // Bias at the switching threshold V_M ≈ 0.497 V (where both
        // devices saturate); off-threshold one device enters triode and
        // the gain collapses.
        c.add_vsource("Vdd", vdd, Circuit::GND, Waveform::Dc(1.0))
            .unwrap();
        c.add_vsource("Vin", vin, Circuit::GND, Waveform::Dc(0.497))
            .unwrap();
        c.add_mosfet("Mn", vout, vin, Circuit::GND, MosfetModel::nmos_45nm())
            .unwrap();
        c.add_mosfet("Mp", vout, vin, vdd, MosfetModel::pmos_45nm())
            .unwrap();
        c.add_capacitor("Cl", vout, Circuit::GND, 1e-15).unwrap();
        let sweep = c.ac_transfer("Vin", "out", &[1e6]).unwrap();
        assert!(
            sweep.points[0].magnitude > 2.0,
            "gain {}",
            sweep.points[0].magnitude
        );
    }

    #[test]
    fn grid_and_error_paths() {
        let g = log_frequency_grid(1e3, 1e6, 10).unwrap();
        assert!((g[0] - 1e3).abs() < 1e-9);
        assert!((g.last().unwrap() - 1e6).abs() < 1e-3);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
        assert!(log_frequency_grid(0.0, 1e6, 10).is_err());
        assert!(log_frequency_grid(1e6, 1e3, 10).is_err());

        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("Vs", a, Circuit::GND, Waveform::Dc(0.0))
            .unwrap();
        c.add_resistor("R1", a, Circuit::GND, 1e3).unwrap();
        assert!(c.ac_transfer("Vs", "nope", &[1e3]).is_err());
        assert!(c.ac_transfer("nope", "a", &[1e3]).is_err());
        assert!(c.ac_transfer("Vs", "a", &[]).is_err());
        assert!(c.ac_transfer("Vs", "a", &[-1.0]).is_err());
        // Probing ground returns zero.
        let z = c.ac_transfer("Vs", "0", &[1e3]).unwrap();
        assert_eq!(z.points[0].magnitude, 0.0);
    }
}
