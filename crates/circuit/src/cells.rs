//! Standard cells for the Fig. 11 benchmark: CMOS inverters.

use crate::circuit::{Circuit, NodeId};
use crate::mosfet::MosfetModel;
use crate::Result;

/// An inverter cell description: its device cards and supply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InverterCell {
    /// NMOS card.
    pub nmos: MosfetModel,
    /// PMOS card.
    pub pmos: MosfetModel,
    /// Supply voltage, volts.
    pub vdd: f64,
}

impl InverterCell {
    /// The 45 nm benchmark inverter of the paper's Fig. 11 (VDD = 1 V).
    pub fn inv_45nm() -> Self {
        Self {
            nmos: MosfetModel::nmos_45nm(),
            pmos: MosfetModel::pmos_45nm(),
            vdd: 1.0,
        }
    }

    /// Returns a drive-strength-scaled copy (widths × `factor`).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.nmos = self.nmos.with_width(self.nmos.width * factor);
        self.pmos = self.pmos.with_width(self.pmos.width * factor);
        self
    }

    /// Effective switching resistance estimate `VDD / (2·I_on)` — used by
    /// Elmore-style delay estimates.
    pub fn drive_resistance(&self) -> f64 {
        let i_on = self.nmos.on_current(self.vdd);
        self.vdd / (2.0 * i_on)
    }

    /// Input capacitance estimate (sum of the gate capacitances).
    pub fn input_capacitance(&self) -> f64 {
        self.nmos.cgs + self.nmos.cgd + self.pmos.cgs + self.pmos.cgd
    }

    /// Instantiates the inverter into `circuit` between `input` and
    /// `output`, drawing from supply node `vdd`.
    ///
    /// # Errors
    ///
    /// Propagates element-registration errors (duplicate names…).
    pub fn instantiate(
        &self,
        circuit: &mut Circuit,
        name: &str,
        input: NodeId,
        output: NodeId,
        vdd: NodeId,
    ) -> Result<()> {
        circuit.add_mosfet(
            &format!("{name}_mn"),
            output,
            input,
            Circuit::GND,
            self.nmos,
        )?;
        circuit.add_mosfet(&format!("{name}_mp"), output, input, vdd, self.pmos)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::TranOptions;
    use crate::waveform::Waveform;

    #[test]
    fn chain_of_two_inverters_restores_polarity() {
        let cell = InverterCell::inv_45nm();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let a = c.node("a");
        let b = c.node("b");
        let y = c.node("y");
        c.add_vsource("Vdd", vdd, Circuit::GND, Waveform::Dc(cell.vdd))
            .unwrap();
        c.add_vsource(
            "Vin",
            a,
            Circuit::GND,
            Waveform::edge(0.0, 1.0, 10e-12, 5e-12),
        )
        .unwrap();
        cell.instantiate(&mut c, "inv1", a, b, vdd).unwrap();
        cell.instantiate(&mut c, "inv2", b, y, vdd).unwrap();
        c.add_capacitor("Cl", y, Circuit::GND, 0.2e-15).unwrap();
        let tr = c.transient(&TranOptions::new(300e-12, 0.25e-12)).unwrap();
        assert!(tr.voltage("y").unwrap()[0] < 0.05, "y starts low");
        assert!(tr.final_voltage("y").unwrap() > 0.95, "y ends high");
    }

    #[test]
    fn scaling_raises_drive() {
        let base = InverterCell::inv_45nm();
        let strong = base.scaled(4.0);
        assert!(strong.drive_resistance() < base.drive_resistance() / 3.5);
        assert!(strong.input_capacitance() > base.input_capacitance() * 3.5);
    }

    #[test]
    fn drive_resistance_magnitude_is_kiloohms() {
        // 45 nm minimum inverter: a few kΩ effective drive.
        let r = InverterCell::inv_45nm().drive_resistance();
        assert!((500.0..20_000.0).contains(&r), "R_drv = {r}");
    }
}
