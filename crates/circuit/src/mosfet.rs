//! Level-1 MOSFET model with 45 nm-class presets.
//!
//! The Fig. 11/12 benchmark of the paper compares *delay ratios* between
//! doped and pristine MWCNT loads, a quantity dominated by the RC of the
//! line rather than by transistor fine structure. A square-law (level-1)
//! device with channel-length modulation and fixed gate capacitances is
//! therefore an adequate — and fully reproducible — stand-in for a 45 nm
//! PDK card.

/// MOSFET channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// n-channel.
    Nmos,
    /// p-channel.
    Pmos,
}

/// A level-1 MOSFET parameter card plus instance geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetModel {
    /// Channel polarity.
    pub polarity: Polarity,
    /// Threshold voltage magnitude, volts.
    pub vt0: f64,
    /// Transconductance parameter `k' = µ·Cox`, A/V².
    pub kp: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
    /// Channel width, metres.
    pub width: f64,
    /// Channel length, metres.
    pub length: f64,
    /// Gate–source capacitance, farads (stamped as a linear capacitor).
    pub cgs: f64,
    /// Gate–drain capacitance, farads (stamped as a linear capacitor).
    pub cgd: f64,
}

/// Small-signal linearization of the drain current at a bias point:
/// `id ≈ i_eq + gm·v_gs + gds·v_ds`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetLinearization {
    /// Drain current at the bias point, amperes (positive into the drain
    /// for NMOS).
    pub id: f64,
    /// Transconductance ∂id/∂vgs, siemens.
    pub gm: f64,
    /// Output conductance ∂id/∂vds, siemens.
    pub gds: f64,
}

impl MosfetModel {
    /// NMOS card for the 45 nm benchmark inverter (PTM-like magnitudes):
    /// `VT0 = 0.4 V`, `k' = 450 µA/V²`, `λ = 0.1 /V`, `W/L = 90 nm/45 nm`.
    pub fn nmos_45nm() -> Self {
        Self {
            polarity: Polarity::Nmos,
            vt0: 0.4,
            kp: 450e-6,
            lambda: 0.1,
            width: 90e-9,
            length: 45e-9,
            cgs: 0.06e-15,
            cgd: 0.04e-15,
        }
    }

    /// PMOS card for the 45 nm benchmark inverter: the hole-mobility
    /// deficit is compensated by a doubled width.
    pub fn pmos_45nm() -> Self {
        Self {
            polarity: Polarity::Pmos,
            vt0: 0.4,
            kp: 200e-6,
            lambda: 0.12,
            width: 180e-9,
            length: 45e-9,
            cgs: 0.12e-15,
            cgd: 0.08e-15,
        }
    }

    /// Returns a copy scaled to a different width (drive-strength sizing).
    pub fn with_width(mut self, width: f64) -> Self {
        let scale = width / self.width;
        self.cgs *= scale;
        self.cgd *= scale;
        self.width = width;
        self
    }

    /// `β = k'·W/L`.
    pub fn beta(&self) -> f64 {
        self.kp * self.width / self.length
    }

    /// Evaluates drain current and derivatives at terminal voltages
    /// (`v_gs`, `v_ds` in the device's own frame — the analysis engine
    /// handles polarity reflection and source/drain swapping).
    ///
    /// Uses the level-1 equations:
    /// cutoff `vgs ≤ vt`, triode `vds < vgs − vt`, saturation otherwise,
    /// all with `(1 + λ·vds)` channel-length modulation.
    pub fn evaluate(&self, v_gs: f64, v_ds: f64) -> MosfetLinearization {
        let beta = self.beta();
        let vov = v_gs - self.vt0;
        if vov <= 0.0 {
            return MosfetLinearization {
                id: 0.0,
                gm: 0.0,
                gds: 0.0,
            };
        }
        let clm = 1.0 + self.lambda * v_ds;
        if v_ds < vov {
            // Triode.
            let id = beta * (vov * v_ds - 0.5 * v_ds * v_ds) * clm;
            let gm = beta * v_ds * clm;
            let gds = beta * ((vov - v_ds) * clm + (vov * v_ds - 0.5 * v_ds * v_ds) * self.lambda);
            MosfetLinearization { id, gm, gds }
        } else {
            // Saturation.
            let id = 0.5 * beta * vov * vov * clm;
            let gm = beta * vov * clm;
            let gds = 0.5 * beta * vov * vov * self.lambda;
            MosfetLinearization { id, gm, gds }
        }
    }

    /// Saturation drive current at `|vgs| = |vds| = vdd` — a quick sizing
    /// helper.
    pub fn on_current(&self, vdd: f64) -> f64 {
        self.evaluate(vdd, vdd).id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cutoff_region_is_dead() {
        let m = MosfetModel::nmos_45nm();
        let l = m.evaluate(0.2, 1.0);
        assert_eq!(l.id, 0.0);
        assert_eq!(l.gm, 0.0);
        assert_eq!(l.gds, 0.0);
    }

    #[test]
    fn triode_to_saturation_continuity() {
        let m = MosfetModel::nmos_45nm();
        let vgs = 1.0;
        let vdsat = vgs - m.vt0;
        let below = m.evaluate(vgs, vdsat - 1e-9);
        let above = m.evaluate(vgs, vdsat + 1e-9);
        assert!((below.id - above.id).abs() / above.id < 1e-6);
        assert!((below.gm - above.gm).abs() / above.gm < 1e-6);
    }

    #[test]
    fn saturation_current_scales_with_width() {
        let m = MosfetModel::nmos_45nm();
        let wide = m.with_width(180e-9);
        assert!((wide.on_current(1.0) / m.on_current(1.0) - 2.0).abs() < 1e-9);
        assert!((wide.cgs / m.cgs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let m = MosfetModel::nmos_45nm();
        let h = 1e-7;
        for (vgs, vds) in [(0.8, 0.2), (0.8, 0.6), (1.0, 1.0), (0.5, 0.05)] {
            let l = m.evaluate(vgs, vds);
            let dgm = (m.evaluate(vgs + h, vds).id - m.evaluate(vgs - h, vds).id) / (2.0 * h);
            let dgds = (m.evaluate(vgs, vds + h).id - m.evaluate(vgs, vds - h).id) / (2.0 * h);
            assert!(
                (l.gm - dgm).abs() < 1e-6 * (1.0 + dgm.abs()),
                "gm at {vgs},{vds}"
            );
            assert!(
                (l.gds - dgds).abs() < 1e-6 * (1.0 + dgds.abs()),
                "gds at {vgs},{vds}"
            );
        }
    }

    #[test]
    fn nmos_out_drives_pmos_per_area() {
        let n = MosfetModel::nmos_45nm();
        let p = MosfetModel::pmos_45nm();
        // Equal drive by sizing: both cards should be within ~30 % at VDD = 1 V.
        let ratio = n.on_current(1.0) / p.on_current(1.0);
        assert!((0.7..1.5).contains(&ratio), "drive ratio {ratio}");
    }
}
