//! SPICE-like circuit simulator: modified nodal analysis, DC and transient
//! solvers, MOSFET device models and a netlist parser.
//!
//! This crate is the circuit-level substrate of the `cnt-beol` platform.
//! The paper (Uhlig et al., DATE 2018, Section III.C and Figs. 11–12)
//! benchmarks doped-MWCNT interconnects by driving distributed RC lines
//! between 45 nm-node CMOS inverters and measuring propagation delay. We
//! implement the full loop in Rust:
//!
//! * [`circuit`] — the circuit data model and builder API;
//! * [`ac`] — small-signal frequency sweeps (linearized at the DC bias);
//! * [`linalg`] — dense LU solver used by the MNA engine;
//! * [`waveform`] — independent-source waveforms (DC, pulse, PWL, sine);
//! * [`mosfet`] — level-1 MOSFET with 45 nm-class parameter presets;
//! * [`analysis`] — Newton DC operating point and BE/trapezoidal transient;
//! * [`measure`] — delay / rise-time extraction from waveforms;
//! * [`mod@line`] — distributed-RC(L) ladder builders for interconnect loads;
//! * [`cells`] — inverter cells used by the Fig. 11 benchmark;
//! * [`parse`] — SPICE-like netlist parser (consumes `cnt-fields` output).
//!
//! # Example
//!
//! ```
//! use cnt_circuit::prelude::*;
//!
//! // RC low-pass driven by a step: check the 63 % point at t = τ.
//! let mut c = Circuit::new();
//! let vin = c.node("in");
//! let vout = c.node("out");
//! c.add_vsource("Vs", vin, Circuit::GND, Waveform::step(1.0))?;
//! c.add_resistor("R1", vin, vout, 1e3)?;
//! c.add_capacitor("C1", vout, Circuit::GND, 1e-9)?;
//! let tran = c.transient(&TranOptions::new(5e-6, 1e-8))?;
//! let w = tran.waveform("out")?;
//! let v_at_tau = w.iter().find(|(t, _)| *t >= 1e-6).unwrap().1;
//! assert!((v_at_tau - 0.632).abs() < 0.01);
//! # Ok::<(), cnt_circuit::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ac;
pub mod analysis;
pub mod cells;
pub mod circuit;
pub mod linalg;
pub mod line;
pub mod measure;
pub mod mosfet;
pub mod parse;
pub mod waveform;

/// Glob import for typical simulation flows.
pub mod prelude {
    pub use crate::analysis::{DcResult, Integrator, TranOptions, TranResult};
    pub use crate::circuit::{Circuit, NodeId};
    pub use crate::measure::{propagation_delay, rise_time};
    pub use crate::mosfet::MosfetModel;
    pub use crate::waveform::Waveform;
    pub use crate::Error;
}

use core::fmt;

/// Errors produced by the circuit simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An element value was out of its physical domain.
    InvalidValue {
        /// Element name.
        element: String,
        /// Offending value.
        value: f64,
    },
    /// Duplicate element name.
    DuplicateElement {
        /// The name.
        name: String,
    },
    /// Referenced an unknown node name.
    UnknownNode {
        /// The name.
        name: String,
    },
    /// Newton iteration failed to converge.
    NoConvergence {
        /// Context (e.g. `"dc"`, `"transient t=1.2e-9"`).
        context: String,
        /// Iterations performed.
        iterations: usize,
    },
    /// The MNA matrix was singular (floating node, voltage-source loop…).
    SingularMatrix {
        /// Row index where elimination failed.
        row: usize,
    },
    /// Invalid analysis options.
    InvalidOptions(&'static str),
    /// Netlist text failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A waveform was malformed (e.g. unsorted PWL points).
    InvalidWaveform(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidValue { element, value } => {
                write!(f, "invalid value {value} for element {element}")
            }
            Error::DuplicateElement { name } => write!(f, "duplicate element name '{name}'"),
            Error::UnknownNode { name } => write!(f, "unknown node '{name}'"),
            Error::NoConvergence {
                context,
                iterations,
            } => write!(
                f,
                "{context}: Newton failed to converge in {iterations} iterations"
            ),
            Error::SingularMatrix { row } => {
                write!(
                    f,
                    "singular MNA matrix at row {row} (floating node or source loop?)"
                )
            }
            Error::InvalidOptions(msg) => write!(f, "invalid analysis options: {msg}"),
            Error::Parse { line, message } => {
                write!(f, "netlist parse error at line {line}: {message}")
            }
            Error::InvalidWaveform(msg) => write!(f, "invalid waveform: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-level result alias.
pub type Result<T> = core::result::Result<T, Error>;
