//! Property-based tests of the circuit engine: conservation laws and
//! parser totality.

use cnt_circuit::analysis::TranOptions;
use cnt_circuit::circuit::Circuit;
use cnt_circuit::line::{add_distributed_line, LineTotals};
use cnt_circuit::parse::{parse_netlist, parse_value};
use cnt_circuit::waveform::Waveform;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn voltage_divider_obeys_superposition(
        r1 in 1.0_f64..1e6,
        r2 in 1.0_f64..1e6,
        v in -10.0_f64..10.0,
    ) {
        let mut c = Circuit::new();
        let a = c.node("a");
        let mid = c.node("mid");
        c.add_vsource("V1", a, Circuit::GND, Waveform::Dc(v)).unwrap();
        c.add_resistor("R1", a, mid, r1).unwrap();
        c.add_resistor("R2", mid, Circuit::GND, r2).unwrap();
        let dc = c.dc_operating_point().unwrap();
        let expect = v * r2 / (r1 + r2);
        prop_assert!((dc.voltage("mid").unwrap() - expect).abs() < 1e-6 * expect.abs().max(1.0));
    }

    #[test]
    fn ladder_dc_drop_is_total_resistance(
        r_total in 10.0_f64..1e6,
        segments in 1_usize..24,
    ) {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GND, Waveform::Dc(1.0)).unwrap();
        add_distributed_line(&mut c, "l", a, b, LineTotals::rc(r_total, 1e-15), segments).unwrap();
        c.add_resistor("Rterm", b, Circuit::GND, r_total).unwrap();
        let dc = c.dc_operating_point().unwrap();
        // Divider with equal halves: exactly 0.5 V regardless of segments.
        prop_assert!((dc.voltage("b").unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn rc_transient_is_monotone_and_bounded(
        r in 100.0_f64..1e5,
        c_farads in 1e-13_f64..1e-9,
    ) {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GND, Waveform::step(1.0)).unwrap();
        c.add_resistor("R1", a, b, r).unwrap();
        c.add_capacitor("C1", b, Circuit::GND, c_farads).unwrap();
        let tau = r * c_farads;
        let tran = c.transient(&TranOptions::new(3.0 * tau, tau / 100.0)).unwrap();
        let w = tran.voltage("b").unwrap();
        for pair in w.windows(2) {
            prop_assert!(pair[1] >= pair[0] - 1e-9, "non-monotone RC charge");
        }
        prop_assert!(w.iter().all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
    }

    #[test]
    fn parse_value_roundtrips_plain_floats(v in -1e12_f64..1e12) {
        let s = format!("{v:e}");
        let parsed = parse_value(&s).unwrap();
        prop_assert!((parsed - v).abs() <= 1e-9 * v.abs().max(1e-12));
    }

    #[test]
    fn parser_never_panics_on_arbitrary_lines(s in "\\PC{0,60}") {
        // Totality: arbitrary garbage must produce Ok or Err, not panic.
        let _ = parse_netlist(&s);
    }

    #[test]
    fn generated_rc_netlists_always_parse(
        r in 1.0_f64..1e9,
        c_farads in 1e-18_f64..1e-6,
    ) {
        let text = format!("V1 in 0 1.0\nR1 in out {r:e}\nC1 out 0 {c_farads:e}\n.end");
        let circuit = parse_netlist(&text).unwrap();
        prop_assert_eq!(circuit.element_count(), 3);
        let dc = circuit.dc_operating_point().unwrap();
        prop_assert!((dc.voltage("out").unwrap() - 1.0).abs() < 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn trapezoidal_and_be_agree_on_fine_grids(
        r in 500.0_f64..5e4,
        c_farads in 1e-12_f64..1e-10,
    ) {
        let build = || {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            c.add_vsource("V1", a, Circuit::GND, Waveform::step(1.0)).unwrap();
            c.add_resistor("R1", a, b, r).unwrap();
            c.add_capacitor("C1", b, Circuit::GND, c_farads).unwrap();
            c
        };
        let tau = r * c_farads;
        let opts = TranOptions::new(2.0 * tau, tau / 400.0);
        let be = build().transient(&opts).unwrap().final_voltage("b").unwrap();
        let tr = build()
            .transient(&opts.trapezoidal())
            .unwrap()
            .final_voltage("b")
            .unwrap();
        prop_assert!((be - tr).abs() < 5e-3, "BE {} vs TRAP {}", be, tr);
    }
}
