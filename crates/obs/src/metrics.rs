//! Atomic metric primitives and the registry that renders them.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`s
//! resolved once at registration; recording is one or two relaxed
//! atomic operations, so instrumented hot loops pay nanoseconds and
//! never allocate. The registry itself takes a mutex only to register
//! a new name or to render — both cold paths.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) with a compare-and-swap loop.
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-boundary histogram with lock-free recording.
///
/// The default boundaries are powers of two in seconds, 2⁻²⁰ s
/// (≈ 0.95 µs) through 2⁵ s (32 s) — wide enough for a cache hit and a
/// cold XL multigrid solve on the same axis, and cheap to bucket into.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bucket bounds (inclusive, Prometheus `le` semantics),
    /// strictly increasing. An implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket observation counts; `buckets[bounds.len()]` is `+Inf`.
    buckets: Vec<AtomicU64>,
    /// Sum of observed values, as `f64` bits.
    sum_bits: AtomicU64,
}

/// The default log2 bucket bounds, in seconds.
pub fn default_seconds_bounds() -> Vec<f64> {
    (-20..=5).map(|e| (2.0f64).powi(e)).collect()
}

impl Histogram {
    /// A histogram over the given upper bounds (must be strictly
    /// increasing and non-empty); an `+Inf` bucket is added implicitly.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records a wall-time duration in seconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The upper bucket bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, `+Inf` last (same snapshot caveat as any
    /// concurrent read: buckets are loaded one by one).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimates the `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation
    /// inside the bucket holding it — the same estimate Prometheus'
    /// `histogram_quantile` computes. Returns `None` when empty.
    ///
    /// Observations beyond the last finite bound clamp to it, so the
    /// estimate is a lower bound when the tail bucket is occupied.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_counts(&self.bounds, &self.bucket_counts(), q)
    }
}

/// Quantile-by-interpolation over an explicit per-bucket count vector
/// (`+Inf` last, `counts.len() == bounds.len() + 1`). This is
/// [`Histogram::quantile`] factored out so windowed *count deltas* —
/// the time-series layer's view of a histogram over the last N seconds
/// — get the identical estimate the live histogram reports.
pub fn quantile_from_counts(bounds: &[f64], counts: &[u64], q: f64) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 || bounds.is_empty() {
        return None;
    }
    let rank = q.clamp(0.0, 1.0) * total as f64;
    let mut cum = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        let prev = cum;
        cum += c as f64;
        if cum >= rank && c > 0 {
            if i >= bounds.len() {
                // +Inf bucket: clamp to the last finite bound.
                return Some(bounds[bounds.len() - 1]);
            }
            let lo = if i == 0 { 0.0 } else { bounds[i - 1] };
            let hi = bounds[i];
            let frac = ((rank - prev) / c as f64).clamp(0.0, 1.0);
            return Some(lo + (hi - lo) * frac);
        }
    }
    Some(bounds[bounds.len() - 1])
}

/// A labeled counter family: one [`Counter`] per label value, plus an
/// optional unlabeled *base* sample for families that predate their
/// labels (the serve layer's `cnt_serve_requests_total`).
#[derive(Debug)]
pub struct CounterVec {
    label_key: String,
    emit_base: bool,
    base: Counter,
    children: Mutex<BTreeMap<String, Arc<Counter>>>,
}

impl CounterVec {
    fn new(label_key: &str, emit_base: bool) -> Self {
        Self {
            label_key: label_key.to_string(),
            emit_base,
            base: Counter::default(),
            children: Mutex::new(BTreeMap::new()),
        }
    }

    /// The counter for one label value, created on first use. Callers
    /// on hot paths should resolve once and keep the `Arc`.
    pub fn with(&self, value: &str) -> Arc<Counter> {
        let mut children = self.children.lock().expect("counter vec poisoned");
        if let Some(c) = children.get(value) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        children.insert(value.to_string(), Arc::clone(&c));
        c
    }

    /// The unlabeled base counter (rendered only when the family was
    /// registered with `emit_base`).
    pub fn base(&self) -> &Counter {
        &self.base
    }

    /// The label key the family was registered with.
    pub fn label_key(&self) -> &str {
        &self.label_key
    }

    /// Sorted `(label value, count)` snapshot.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.children
            .lock()
            .expect("counter vec poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }
}

/// A labeled gauge family over a *fixed ordered set* of label keys —
/// unlike [`CounterVec`]'s single key, a child here is addressed by one
/// value per key (`cnt_fleet_peer_state{peer="…",state="…"}` is the
/// motivating series). Children are created on first use and rendered
/// in sorted label-value order, so scrapes are deterministic.
#[derive(Debug)]
pub struct GaugeVec {
    label_keys: Vec<String>,
    children: Mutex<BTreeMap<Vec<String>, Arc<Gauge>>>,
}

impl GaugeVec {
    fn new(label_keys: &[&str]) -> Self {
        assert!(
            !label_keys.is_empty(),
            "a gauge family needs at least one label key"
        );
        Self {
            label_keys: label_keys.iter().map(|k| k.to_string()).collect(),
            children: Mutex::new(BTreeMap::new()),
        }
    }

    /// The gauge for one label-value tuple (`values` must match the
    /// registered keys in number and order), created on first use.
    /// Callers on hot paths should resolve once and keep the `Arc`.
    pub fn with(&self, values: &[&str]) -> Arc<Gauge> {
        assert_eq!(
            values.len(),
            self.label_keys.len(),
            "gauge family has keys {:?}, got {} value(s)",
            self.label_keys,
            values.len()
        );
        let mut children = self.children.lock().expect("gauge vec poisoned");
        let key: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        if let Some(g) = children.get(&key) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        children.insert(key, Arc::clone(&g));
        g
    }

    /// The label keys the family was registered with.
    pub fn label_keys(&self) -> &[String] {
        &self.label_keys
    }

    /// Sorted `(label values, value)` snapshot.
    pub fn snapshot(&self) -> Vec<(Vec<String>, f64)> {
        self.children
            .lock()
            .expect("gauge vec poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// The `{k1="v1",k2="v2"}` suffix of one child's sample line.
    fn series_suffix(&self, values: &[String]) -> String {
        let mut out = String::from("{");
        for (i, (key, value)) in self.label_keys.iter().zip(values).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(key);
            out.push('=');
            out.push_str(&label_quote(value));
        }
        out.push('}');
        out
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    CounterVec(Arc<CounterVec>),
    GaugeVec(Arc<GaugeVec>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) | Metric::CounterVec(_) => "counter",
            Metric::Gauge(_) | Metric::GaugeVec(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    help: String,
    metric: Metric,
}

/// A named collection of metrics with Prometheus-text and JSON
/// exporters. Registration is idempotent: asking for an existing name
/// returns the existing handle (and panics if the kind differs — a
/// programming error, caught in tests).
#[derive(Debug, Default)]
pub struct MetricRegistry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register<T, F, G>(&self, name: &str, help: &str, make: F, cast: G) -> Arc<T>
    where
        F: FnOnce() -> Metric,
        G: FnOnce(&Metric) -> Option<Arc<T>>,
    {
        let mut entries = self.entries.lock().expect("metric registry poisoned");
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: make(),
        });
        cast(&entry.metric).unwrap_or_else(|| {
            panic!(
                "metric {name:?} already registered as a {}",
                entry.metric.kind()
            )
        })
    }

    /// Registers (or fetches) a counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.register(
            name,
            help,
            || Metric::Counter(Arc::new(Counter::default())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.register(
            name,
            help,
            || Metric::Gauge(Arc::new(Gauge::default())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) a histogram over the default log2
    /// seconds bounds.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &default_seconds_bounds())
    }

    /// Registers (or fetches) a histogram over explicit bounds (the
    /// bounds of an existing registration win).
    pub fn histogram_with(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.register(
            name,
            help,
            || Metric::Histogram(Arc::new(Histogram::new(bounds))),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) a labeled counter family. With
    /// `emit_base`, the family also renders an unlabeled sample from
    /// [`CounterVec::base`].
    pub fn counter_vec(
        &self,
        name: &str,
        help: &str,
        label_key: &str,
        emit_base: bool,
    ) -> Arc<CounterVec> {
        self.register(
            name,
            help,
            || Metric::CounterVec(Arc::new(CounterVec::new(label_key, emit_base))),
            |m| match m {
                Metric::CounterVec(v) => Some(Arc::clone(v)),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) a labeled gauge family over a fixed
    /// ordered set of label keys (the keys of an existing registration
    /// win).
    pub fn gauge_vec(&self, name: &str, help: &str, label_keys: &[&str]) -> Arc<GaugeVec> {
        self.register(
            name,
            help,
            || Metric::GaugeVec(Arc::new(GaugeVec::new(label_keys))),
            |m| match m {
                Metric::GaugeVec(v) => Some(Arc::clone(v)),
                _ => None,
            },
        )
    }

    /// Renders every metric in the Prometheus text exposition format,
    /// names sorted, `# HELP`/`# TYPE` per family.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("metric registry poisoned");
        let mut out = String::with_capacity(1024);
        for (name, entry) in entries.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&entry.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(entry.metric.kind());
            out.push('\n');
            match &entry.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{name} {}\n", g.get()));
                }
                Metric::CounterVec(v) => {
                    if v.emit_base {
                        out.push_str(&format!("{name} {}\n", v.base.get()));
                    }
                    for (value, count) in v.snapshot() {
                        out.push_str(&format!(
                            "{name}{{{}={}}} {count}\n",
                            v.label_key,
                            label_quote(&value)
                        ));
                    }
                }
                Metric::GaugeVec(v) => {
                    for (values, value) in v.snapshot() {
                        out.push_str(&format!("{name}{} {value}\n", v.series_suffix(&values)));
                    }
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum += c;
                        let le = if i < h.bounds.len() {
                            format!("{}", h.bounds[i])
                        } else {
                            "+Inf".to_string()
                        };
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
                    }
                    out.push_str(&format!("{name}_sum {}\n", h.sum()));
                    out.push_str(&format!("{name}_count {cum}\n"));
                }
            }
        }
        out
    }

    /// Renders every metric as one line of JSON (`repro check-json`
    /// clean): `{"metrics":[{"name":…,"type":…,…},…]}`.
    pub fn render_json(&self) -> String {
        let entries = self.entries.lock().expect("metric registry poisoned");
        let mut out = String::with_capacity(1024);
        out.push_str("{\"metrics\":[");
        for (i, (name, entry)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_escape(name, &mut out);
            out.push_str(",\"type\":");
            json_escape(entry.metric.kind(), &mut out);
            match &entry.metric {
                Metric::Counter(c) => out.push_str(&format!(",\"value\":{}", c.get())),
                Metric::Gauge(g) => out.push_str(&format!(",\"value\":{}", json_num(g.get()))),
                Metric::CounterVec(v) => {
                    out.push_str(",\"label\":");
                    json_escape(&v.label_key, &mut out);
                    if v.emit_base {
                        out.push_str(&format!(",\"value\":{}", v.base.get()));
                    }
                    out.push_str(",\"values\":{");
                    for (j, (value, count)) in v.snapshot().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        json_escape(value, &mut out);
                        out.push_str(&format!(":{count}"));
                    }
                    out.push('}');
                }
                Metric::GaugeVec(v) => {
                    out.push_str(",\"labels\":[");
                    for (j, key) in v.label_keys().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        json_escape(key, &mut out);
                    }
                    out.push_str("],\"series\":[");
                    for (j, (values, value)) in v.snapshot().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str("{\"values\":[");
                        for (k, label_value) in values.iter().enumerate() {
                            if k > 0 {
                                out.push(',');
                            }
                            json_escape(label_value, &mut out);
                        }
                        out.push_str(&format!("],\"value\":{}}}", json_num(*value)));
                    }
                    out.push(']');
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let total: u64 = counts.iter().sum();
                    out.push_str(&format!(
                        ",\"count\":{total},\"sum\":{},\"buckets\":[",
                        json_num(h.sum())
                    ));
                    let mut cum = 0u64;
                    for (j, c) in counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        cum += c;
                        let le = if j < h.bounds.len() {
                            format!("{}", h.bounds[j])
                        } else {
                            "+Inf".to_string()
                        };
                        out.push_str("{\"le\":");
                        json_escape(&le, &mut out);
                        out.push_str(&format!(",\"count\":{cum}}}"));
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    /// A typed point-in-time snapshot of every series in the registry,
    /// in render order. Labeled families flatten into one entry per
    /// child, named exactly like the Prometheus sample
    /// (`name{key="value"}`), so a time-series store keyed on these
    /// names matches what a scrape of `/v1/metrics` would show.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let entries = self.entries.lock().expect("metric registry poisoned");
        let mut out = Vec::with_capacity(entries.len());
        for (name, entry) in entries.iter() {
            match &entry.metric {
                Metric::Counter(c) => out.push((name.clone(), MetricSnapshot::Counter(c.get()))),
                Metric::Gauge(g) => out.push((name.clone(), MetricSnapshot::Gauge(g.get()))),
                Metric::CounterVec(v) => {
                    if v.emit_base {
                        out.push((name.clone(), MetricSnapshot::Counter(v.base.get())));
                    }
                    for (value, count) in v.snapshot() {
                        out.push((
                            format!("{name}{{{}={}}}", v.label_key, label_quote(&value)),
                            MetricSnapshot::Counter(count),
                        ));
                    }
                }
                Metric::GaugeVec(v) => {
                    for (values, value) in v.snapshot() {
                        out.push((
                            format!("{name}{}", v.series_suffix(&values)),
                            MetricSnapshot::Gauge(value),
                        ));
                    }
                }
                Metric::Histogram(h) => out.push((
                    name.clone(),
                    MetricSnapshot::Histogram {
                        bounds: h.bounds.clone(),
                        counts: h.bucket_counts(),
                        sum: h.sum(),
                    },
                )),
            }
        }
        out
    }
}

/// One series of a [`MetricRegistry::snapshot`]: the value a scrape
/// would report at this instant, typed by family kind.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// A counter (or one labeled child of a counter family).
    Counter(u64),
    /// A gauge value.
    Gauge(f64),
    /// A histogram: cumulative-from-start bucket counts (`+Inf` last)
    /// plus the running sum.
    Histogram {
        /// Upper bucket bounds, without the implicit `+Inf`.
        bounds: Vec<f64>,
        /// Per-bucket counts, `+Inf` last.
        counts: Vec<u64>,
        /// Sum of observed values.
        sum: f64,
    },
}

/// Quotes a Prometheus label value (`\\`, `\"`, `\n` escapes).
fn label_quote(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

/// A finite JSON number for an `f64` (`null` otherwise).
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

pub(crate) fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_hold_values() {
        let r = MetricRegistry::new();
        let c = r.counter("t_total", "help");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same underlying counter.
        assert_eq!(r.counter("t_total", "help").get(), 5);

        let g = r.gauge("t_gauge", "help");
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricRegistry::new();
        r.counter("t_total", "help");
        r.gauge("t_total", "help");
    }

    #[test]
    fn histogram_buckets_respect_le_semantics() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        // Boundary values land in the bucket they bound (le = ≤).
        for v in [0.5, 1.0, 2.0, 3.0, 4.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 1, 2, 1]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 110.5).abs() < 1e-12);
    }

    #[test]
    fn default_bounds_are_log2_and_increasing() {
        let b = default_seconds_bounds();
        assert_eq!(b.len(), 26);
        assert!((b[0] - 2f64.powi(-20)).abs() < 1e-18);
        assert!((b[25] - 32.0).abs() < 1e-12);
        for w in b.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-12, "not log2 spaced");
        }
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantile");
        for _ in 0..50 {
            h.record(0.5); // bucket [0, 1]
        }
        for _ in 0..50 {
            h.record(3.0); // bucket (2, 4]
        }
        // Median sits exactly at the end of the first bucket.
        let q50 = h.quantile(0.5).unwrap();
        assert!((q50 - 1.0).abs() < 1e-9, "q50 = {q50}");
        // 75th percentile: halfway through the (2, 4] bucket.
        let q75 = h.quantile(0.75).unwrap();
        assert!((q75 - 3.0).abs() < 1e-9, "q75 = {q75}");
        // Quantiles clamp into the finite range.
        assert!(h.quantile(1.0).unwrap() <= 4.0);
        // Tail bucket clamps to the last finite bound.
        h.record(1e9);
        assert!((h.quantile(1.0).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_edge_cases_are_exact() {
        // Empty histogram: no quantile at any q, including the extremes.
        let empty = Histogram::new(&[1.0, 2.0]);
        for q in [0.0, 0.5, 0.9, 1.0] {
            assert_eq!(empty.quantile(q), None, "q={q}");
        }

        // Single finite bucket: every quantile interpolates inside [0, 1].
        let single = Histogram::new(&[1.0]);
        for _ in 0..10 {
            single.record(0.5);
        }
        let q0 = single.quantile(0.0).unwrap();
        assert!((0.0..=1.0).contains(&q0), "q0 = {q0}");
        assert!((single.quantile(0.5).unwrap() - 0.5).abs() < 1e-9);
        assert!((single.quantile(1.0).unwrap() - 1.0).abs() < 1e-9);
        // One observation past the only finite bound clamps to it.
        single.record(100.0);
        assert!((single.quantile(1.0).unwrap() - 1.0).abs() < 1e-9);

        // Exact-boundary ranks: with every observation in one bucket the
        // cumulative count hits the rank exactly at the bucket edge.
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..4 {
            h.record(1.5); // all in (1, 2]
        }
        assert!((h.quantile(1.0).unwrap() - 2.0).abs() < 1e-9, "q1 at edge");
        assert!((h.quantile(0.5).unwrap() - 1.5).abs() < 1e-9);
        // q = 0 never reaches below the occupied bucket's lower bound.
        assert!(h.quantile(0.0).unwrap() >= 1.0);

        // The free function agrees with the method on the same counts.
        assert_eq!(
            quantile_from_counts(h.bounds(), &h.bucket_counts(), 0.5),
            h.quantile(0.5)
        );
        // Degenerate inputs: no bounds or all-zero counts yield None.
        assert_eq!(quantile_from_counts(&[], &[0], 0.5), None);
        assert_eq!(quantile_from_counts(&[1.0], &[0, 0], 0.5), None);
    }

    #[test]
    fn snapshot_flattens_families_with_prometheus_names() {
        let r = MetricRegistry::new();
        r.counter("t_total", "help").add(7);
        r.gauge("t_gauge", "help").set(1.5);
        let v = r.counter_vec("t_req_total", "by status", "status", true);
        v.base().add(3);
        v.with("200").add(2);
        r.histogram_with("t_seconds", "timings", &[1.0]).record(0.5);
        let snap = r.snapshot();
        let get = |name: &str| {
            snap.iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.clone())
                .unwrap_or_else(|| panic!("no series {name} in {snap:?}"))
        };
        assert_eq!(get("t_total"), MetricSnapshot::Counter(7));
        assert_eq!(get("t_gauge"), MetricSnapshot::Gauge(1.5));
        assert_eq!(get("t_req_total"), MetricSnapshot::Counter(3));
        assert_eq!(
            get("t_req_total{status=\"200\"}"),
            MetricSnapshot::Counter(2)
        );
        match get("t_seconds") {
            MetricSnapshot::Histogram {
                bounds,
                counts,
                sum,
            } => {
                assert_eq!(bounds, vec![1.0]);
                assert_eq!(counts, vec![1, 0]);
                assert!((sum - 0.5).abs() < 1e-12);
            }
            other => panic!("t_seconds snapshotted as {other:?}"),
        }
    }

    #[test]
    fn counter_vec_renders_base_and_children() {
        let r = MetricRegistry::new();
        let v = r.counter_vec("t_requests_total", "by status", "status", true);
        v.base().add(3);
        v.with("200").add(2);
        v.with("404").inc();
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE t_requests_total counter\n"));
        assert!(text.contains("\nt_requests_total 3\n") || text.contains("t_requests_total 3\n"));
        assert!(text.contains("t_requests_total{status=\"200\"} 2\n"));
        assert!(text.contains("t_requests_total{status=\"404\"} 1\n"));
        assert_eq!(
            v.snapshot(),
            vec![("200".to_string(), 2), ("404".to_string(), 1)]
        );
    }

    #[test]
    fn gauge_vec_renders_multi_label_children() {
        let r = MetricRegistry::new();
        let v = r.gauge_vec("t_peer_state", "membership", &["peer", "state"]);
        v.with(&["127.0.0.1:9000", "up"]).set(1.0);
        v.with(&["127.0.0.1:9000", "down"]).set(0.0);
        v.with(&["127.0.0.1:9001", "up"]).set(0.0);
        // Same tuple resolves to the same underlying gauge.
        v.with(&["127.0.0.1:9001", "up"]).set(1.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE t_peer_state gauge\n"));
        assert!(text.contains("t_peer_state{peer=\"127.0.0.1:9000\",state=\"up\"} 1\n"));
        assert!(text.contains("t_peer_state{peer=\"127.0.0.1:9000\",state=\"down\"} 0\n"));
        assert!(text.contains("t_peer_state{peer=\"127.0.0.1:9001\",state=\"up\"} 1\n"));
        crate::promcheck::validate(&text).expect("multi-label gauges must pass the validator");
        // Snapshot flattens with the exact sample names a scrape shows.
        let snap = r.snapshot();
        let up = snap
            .iter()
            .find(|(n, _)| n == "t_peer_state{peer=\"127.0.0.1:9001\",state=\"up\"}")
            .expect("flattened series name");
        assert_eq!(up.1, MetricSnapshot::Gauge(1.0));
        // JSON render stays one parseable line.
        let json = r.render_json();
        assert!(json.contains("\"labels\":[\"peer\",\"state\"]"));
        assert_eq!(json.lines().count(), 1);
    }

    #[test]
    #[should_panic(expected = "keys")]
    fn gauge_vec_rejects_wrong_arity() {
        let r = MetricRegistry::new();
        let v = r.gauge_vec("t_peer_state", "membership", &["peer", "state"]);
        v.with(&["only-one"]);
    }

    #[test]
    fn prometheus_render_is_cumulative_and_valid() {
        let r = MetricRegistry::new();
        let h = r.histogram_with("t_seconds", "timings", &[0.001, 0.01, 0.1]);
        h.record(0.0005);
        h.record(0.05);
        h.record(7.0);
        r.counter("t_runs_total", "runs").inc();
        r.gauge("t_workers", "workers").set(4.0);
        let text = r.render_prometheus();
        assert!(text.contains("t_seconds_bucket{le=\"0.001\"} 1\n"));
        assert!(text.contains("t_seconds_bucket{le=\"0.01\"} 1\n"));
        assert!(text.contains("t_seconds_bucket{le=\"0.1\"} 2\n"));
        assert!(text.contains("t_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("t_seconds_count 3\n"));
        assert!(text.contains("t_workers 4\n"));
        crate::promcheck::validate(&text).expect("own render must pass the validator");
    }

    #[test]
    fn json_render_parses_as_one_object() {
        let r = MetricRegistry::new();
        r.counter("t_total", "help").add(2);
        let v = r.counter_vec("t_by_id_total", "by id", "id", false);
        v.with("fig\"12").inc();
        r.histogram_with("t_seconds", "timings", &[1.0]).record(0.5);
        let json = r.render_json();
        assert!(json.ends_with("\n") && json.starts_with("{\"metrics\":["));
        assert!(json.contains("\"fig\\\"12\":1"));
        assert!(json.contains("\"le\":\"+Inf\""));
        // Exactly one line: embedded newlines would break `check-json`
        // streaming consumers.
        assert_eq!(json.lines().count(), 1);
    }
}
