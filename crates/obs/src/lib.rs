//! `cnt-obs` — the observability core of the `cnt-beol` workspace.
//!
//! Every other layer (fields, sweep, serve, bench) records what it does
//! through this crate; nothing here depends on anything else, so the
//! instrumentation can sit below the whole stack. Three pieces:
//!
//! * [`MetricRegistry`] — named atomic [`Counter`]s, [`Gauge`]s,
//!   fixed-boundary log2-bucket [`Histogram`]s, and labeled families
//!   ([`CounterVec`], multi-label [`GaugeVec`]). Handles are `Arc`s;
//!   once resolved, the
//!   hot path is a couple of relaxed atomic operations — no locks, no
//!   allocation. [`MetricRegistry::render_prometheus`] and
//!   [`MetricRegistry::render_json`] export everything at once.
//! * [`span!`] — RAII timing spans. A guard pushes onto a thread-local
//!   stack; on drop its wall-time lands in a histogram named after the
//!   span path (`fields.vcycle` → `cnt_span_fields_vcycle_seconds`) in
//!   the [`global()`] registry. When a [`Trace`] is active on the
//!   thread, closed spans additionally fold into a per-request
//!   [`SpanNode`] tree — the flamegraph-shaped view `repro profile`
//!   prints.
//! * [`promcheck`] — a validator for the Prometheus text exposition
//!   format (`# HELP`/`# TYPE` coverage, duplicate series, histogram
//!   bucket consistency), so CI can gate `/v1/metrics` output the same
//!   way `repro check-json` gates JSON bodies.
//!
//! On top of the core sit three distributed-observability layers:
//!
//! * [`timeseries`] — [`HistoryStore`], fixed-size rings a scraper
//!   thread fills from [`MetricRegistry::snapshot`]; windowed
//!   min/max/rate and bucket-delta quantiles computed on read.
//! * [`slo`] — declarative [`SloSpec`]s (latency quantile, error rate)
//!   evaluated as multi-window burn rates against a [`HistoryStore`].
//! * [`trace_store`] — [`TraceContext`] wire ids (`X-Trace-Id` /
//!   `X-Parent-Span`) plus a bounded TTL ring of [`TraceRecord`]s, so
//!   span trees captured on different fleet instances assemble into
//!   one cross-instance tree.
//!
//! The crate is deliberately `std`-only: the build environment has no
//! crates.io access (see `crates/compat/*`), and the serve layer's
//! offline constraint extends to its telemetry.
//!
//! # Example
//!
//! ```
//! use cnt_obs::{global, span, Trace};
//!
//! let requests = global().counter("demo_requests_total", "requests seen");
//! requests.inc();
//!
//! Trace::begin();
//! {
//!     let _outer = span!("demo.handle");
//!     let _inner = span!("demo.compute");
//! }
//! let tree = Trace::end();
//! assert_eq!(tree[0].name, "demo.handle");
//! assert_eq!(tree[0].children[0].name, "demo.compute");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod promcheck;
pub mod slo;
pub mod span;
pub mod timeseries;
pub mod trace_store;

pub use metrics::{
    Counter, CounterVec, Gauge, GaugeVec, Histogram, MetricRegistry, MetricSnapshot,
};
pub use slo::{SloKind, SloReport, SloSpec, SloState};
pub use span::{fold_stacks, merge_nodes, Profile, SpanGuard, SpanNode, Trace};
pub use timeseries::{HistWindow, HistoryStore, WindowSummary};
pub use trace_store::{TraceContext, TraceRecord, TraceStore};

use std::sync::OnceLock;

/// The process-wide registry the [`span!`] system and the library
/// layers (fields, sweep) record into.
///
/// Front ends that need isolated counting (one HTTP server per test,
/// say) build their own [`MetricRegistry`] and render both.
pub fn global() -> &'static MetricRegistry {
    static GLOBAL: OnceLock<MetricRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricRegistry::new)
}
