//! RAII timing spans over a thread-local stack.
//!
//! `let _g = span!("fields.vcycle");` times the enclosing scope. On
//! drop, the elapsed wall-time is recorded into a histogram in the
//! [`global`](crate::global) registry named after the span path
//! (`fields.vcycle` → `cnt_span_fields_vcycle_seconds`), so every span
//! is a latency distribution for free. The histogram handle is cached
//! per thread after first use: steady-state cost is two `Instant`
//! reads, a hash lookup, and two relaxed atomics — no allocation, no
//! locks.
//!
//! When a [`Trace`] is active on the thread, closed spans additionally
//! fold into a [`SpanNode`] tree, merged by name per nesting level
//! (eight V-cycles become one node with `count = 8`), which is what
//! `repro profile` renders. Tracing is per-thread: spans recorded on
//! pool worker threads still land in the histograms, but only
//! calling-thread spans appear in the tree.
//!
//! Guards are panic-safe: an unwinding scope still records and pops.

use crate::metrics::Histogram;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Starts a timing span; bind the guard (`let _g = span!("a.b");`).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::span($name)
    };
}

thread_local! {
    /// Span-path → histogram handle, resolved once per thread.
    static HANDLES: RefCell<HashMap<&'static str, Arc<Histogram>>> =
        RefCell::new(HashMap::new());
    /// The active trace, if any: one frame of merged children per open
    /// traced span, `frames[0]` being the root level.
    static TRACE: RefCell<Option<TraceState>> = const { RefCell::new(None) };
}

struct TraceState {
    frames: Vec<Vec<SpanNode>>,
}

/// One aggregated node of a captured span tree: spans of the same name
/// at the same nesting level merge (summed time, summed count).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The span path (`"fields.vcycle"`).
    pub name: String,
    /// How many spans merged into this node.
    pub count: u64,
    /// Total wall-time across the merged spans, in seconds.
    pub total_s: f64,
    /// Child spans, first-seen order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Time spent in this span but not in any child, clamped to ≥ 0.
    pub fn self_s(&self) -> f64 {
        let child: f64 = self.children.iter().map(|c| c.total_s).sum();
        (self.total_s - child).max(0.0)
    }

    /// Appends this node as a JSON object (single line, no trailing
    /// newline): `{"name":…,"count":…,"total_s":…,"children":[…]}`.
    pub fn push_json(&self, out: &mut String) {
        out.push_str("{\"name\":\"");
        for c in self.name.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c => out.push(c),
            }
        }
        let total = if self.total_s.is_finite() {
            self.total_s
        } else {
            0.0
        };
        out.push_str(&format!(
            "\",\"count\":{},\"total_s\":{}",
            self.count, total
        ));
        out.push_str(",\"children\":[");
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.push_json(out);
        }
        out.push_str("]}");
    }
}

fn merge_into(list: &mut Vec<SpanNode>, node: SpanNode) {
    if let Some(existing) = list.iter_mut().find(|n| n.name == node.name) {
        existing.count += node.count;
        existing.total_s += node.total_s;
        for child in node.children {
            merge_into(&mut existing.children, child);
        }
    } else {
        list.push(node);
    }
}

/// A per-thread span-tree capture. `begin` arms it, `end` returns the
/// merged root-level nodes. Spans already open when the trace begins
/// are not captured (they still record their histograms).
pub struct Trace;

impl Trace {
    /// Arms tracing on this thread, discarding any previous capture.
    pub fn begin() {
        TRACE.with(|t| {
            *t.borrow_mut() = Some(TraceState {
                frames: vec![Vec::new()],
            });
        });
    }

    /// Whether a trace is active on this thread.
    pub fn is_active() -> bool {
        TRACE.with(|t| t.borrow().is_some())
    }

    /// Disarms tracing and returns the captured root-level nodes
    /// (empty when no trace was active). Frames of spans still open at
    /// `end` are folded into their parent level so nothing is lost.
    pub fn end() -> Vec<SpanNode> {
        TRACE.with(|t| {
            let Some(mut state) = t.borrow_mut().take() else {
                return Vec::new();
            };
            while state.frames.len() > 1 {
                let orphans = state.frames.pop().expect("frame vec checked non-empty");
                let parent = state.frames.last_mut().expect("root frame always present");
                for node in orphans {
                    merge_into(parent, node);
                }
            }
            state.frames.pop().unwrap_or_default()
        })
    }
}

/// The RAII guard [`span!`] returns; records on drop.
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    traced: bool,
}

/// Starts a span (prefer the [`span!`] macro).
pub fn span(name: &'static str) -> SpanGuard {
    let traced = TRACE
        .try_with(|t| {
            let mut t = t.borrow_mut();
            match t.as_mut() {
                Some(state) => {
                    state.frames.push(Vec::new());
                    true
                }
                None => false,
            }
        })
        .unwrap_or(false);
    SpanGuard {
        name,
        start: Instant::now(),
        traced,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        // Histogram record, via the per-thread handle cache. try_with:
        // a guard dropped during thread teardown must not panic.
        let _ = HANDLES.try_with(|handles| {
            let mut handles = handles.borrow_mut();
            let h = handles
                .entry(self.name)
                .or_insert_with(|| register_span_histogram(self.name));
            h.record_duration(elapsed);
        });
        if self.traced {
            let _ = TRACE.try_with(|t| {
                let mut t = t.borrow_mut();
                if let Some(state) = t.as_mut() {
                    let children = state.frames.pop().unwrap_or_default();
                    let node = SpanNode {
                        name: self.name.to_string(),
                        count: 1,
                        total_s: elapsed.as_secs_f64(),
                        children,
                    };
                    match state.frames.last_mut() {
                        Some(parent) => merge_into(parent, node),
                        // The trace was replaced under an open guard;
                        // re-seed the root frame rather than lose data.
                        None => state.frames.push(vec![node]),
                    }
                }
            });
        }
    }
}

fn register_span_histogram(name: &str) -> Arc<Histogram> {
    let mut metric = String::with_capacity(name.len() + 24);
    metric.push_str("cnt_span_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            metric.push(c);
        } else {
            metric.push('_');
        }
    }
    metric.push_str("_seconds");
    crate::global().histogram(&metric, &format!("wall time of the {name} span"))
}

/// Renders captured span trees as an indented text table: name, merge
/// count, total time, share of the parent's total.
pub fn render_tree_text(roots: &[SpanNode]) -> String {
    fn width(nodes: &[SpanNode], depth: usize) -> usize {
        nodes
            .iter()
            .map(|n| (2 * depth + n.name.len()).max(width(&n.children, depth + 1)))
            .max()
            .unwrap_or(0)
    }
    fn walk(nodes: &[SpanNode], depth: usize, parent_s: f64, w: usize, out: &mut String) {
        for n in nodes {
            let pct = if parent_s > 0.0 {
                100.0 * n.total_s / parent_s
            } else {
                100.0
            };
            let label = format!("{}{}", "  ".repeat(depth), n.name);
            out.push_str(&format!(
                "{label:<w$}  {:>10}  {pct:>5.1}%  x{}\n",
                fmt_secs(n.total_s),
                n.count
            ));
            walk(&n.children, depth + 1, n.total_s, w, out);
        }
    }
    let w = width(roots, 0).max(8);
    let mut out = String::new();
    walk(roots, 0, roots.iter().map(|n| n.total_s).sum(), w, &mut out);
    out
}

/// Formats seconds with an adaptive unit (`ns`/`µs`/`ms`/`s`).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn nested_spans_build_a_merged_tree() {
        Trace::begin();
        {
            let _outer = span!("test.outer");
            for _ in 0..3 {
                let _inner = span!("test.inner");
                let _leaf = span!("test.leaf");
            }
        }
        let roots = Trace::end();
        assert_eq!(roots.len(), 1);
        let outer = &roots[0];
        assert_eq!((outer.name.as_str(), outer.count), ("test.outer", 1));
        assert_eq!(outer.children.len(), 1, "inner spans must merge");
        let inner = &outer.children[0];
        assert_eq!((inner.name.as_str(), inner.count), ("test.inner", 3));
        assert_eq!(inner.children[0].count, 3);
        assert!(outer.total_s >= inner.total_s);
        assert!(outer.self_s() >= 0.0);
        // The trace is disarmed: a second end is empty.
        assert!(Trace::end().is_empty());
    }

    #[test]
    fn spans_record_histograms_without_a_trace() {
        {
            let _g = span!("test.histo-only");
        }
        let text = crate::global().render_prometheus();
        assert!(
            text.contains("cnt_span_test_histo_only_seconds_count"),
            "span histogram missing from global registry"
        );
    }

    #[test]
    fn panicking_scopes_still_pop_and_record() {
        Trace::begin();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _outer = span!("test.panic-outer");
            let _inner = span!("test.panic-inner");
            panic!("span scope blew up");
        }));
        assert!(result.is_err());
        // Both guards dropped during unwind: the tree is intact and a
        // fresh span nests at root level, not under a leaked frame.
        {
            let _after = span!("test.panic-after");
        }
        let roots = Trace::end();
        let names: Vec<&str> = roots.iter().map(|n| n.name.as_str()).collect();
        assert!(names.contains(&"test.panic-outer"), "{names:?}");
        assert!(names.contains(&"test.panic-after"), "{names:?}");
        let outer = roots.iter().find(|n| n.name == "test.panic-outer").unwrap();
        assert_eq!(outer.children[0].name, "test.panic-inner");
    }

    #[test]
    fn end_folds_open_frames_into_parents() {
        Trace::begin();
        let open = span!("test.still-open");
        {
            let _closed = span!("test.closed-child");
        }
        let roots = Trace::end();
        // The open span's frame is folded up so the closed child is
        // not lost; the open span itself was never closed, so it is
        // absent by construction.
        assert!(roots.iter().any(|n| n.name == "test.closed-child"));
        drop(open);
    }

    #[test]
    fn tree_renders_text_and_json() {
        let roots = vec![SpanNode {
            name: "a".to_string(),
            count: 1,
            total_s: 0.2,
            children: vec![SpanNode {
                name: "b.c".to_string(),
                count: 4,
                total_s: 0.1,
                children: Vec::new(),
            }],
        }];
        let text = render_tree_text(&roots);
        assert!(text.contains("a"), "{text}");
        assert!(text.contains("  b.c"), "{text}");
        assert!(text.contains("50.0%"), "{text}");
        assert!(text.contains("x4"), "{text}");
        let mut json = String::new();
        roots[0].push_json(&mut json);
        assert_eq!(
            json,
            "{\"name\":\"a\",\"count\":1,\"total_s\":0.2,\"children\":[{\"name\":\"b.c\",\"count\":4,\"total_s\":0.1,\"children\":[]}]}"
        );
    }

    #[test]
    fn fmt_secs_picks_units() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(0.0123), "12.300 ms");
        assert_eq!(fmt_secs(4.2e-5), "42.000 µs");
        assert_eq!(fmt_secs(5.0e-8), "50 ns");
    }
}
