//! RAII timing spans over a thread-local stack.
//!
//! `let _g = span!("fields.vcycle");` times the enclosing scope. On
//! drop, the elapsed wall-time is recorded into a histogram in the
//! [`global`](crate::global) registry named after the span path
//! (`fields.vcycle` → `cnt_span_fields_vcycle_seconds`), so every span
//! is a latency distribution for free. The histogram handle is cached
//! per thread after first use: steady-state cost is two `Instant`
//! reads, a hash lookup, and two relaxed atomics — no allocation, no
//! locks.
//!
//! When a [`Trace`] is active on the thread, closed spans additionally
//! fold into a [`SpanNode`] tree, merged by name per nesting level
//! (eight V-cycles become one node with `count = 8`), which is what
//! `repro profile` renders. Tracing is per-thread: spans recorded on
//! pool worker threads still land in the histograms, but only
//! calling-thread spans appear in the tree.
//!
//! Guards are panic-safe: an unwinding scope still records and pops.

use crate::metrics::Histogram;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Starts a timing span; bind the guard (`let _g = span!("a.b");`).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::span($name)
    };
}

thread_local! {
    /// Span-path → histogram handle, resolved once per thread.
    static HANDLES: RefCell<HashMap<&'static str, Arc<Histogram>>> =
        RefCell::new(HashMap::new());
    /// The active trace, if any: one frame of merged children per open
    /// traced span, `frames[0]` being the root level.
    static TRACE: RefCell<Option<TraceState>> = const { RefCell::new(None) };
}

struct TraceState {
    frames: Vec<Vec<SpanNode>>,
}

/// One aggregated node of a captured span tree: spans of the same name
/// at the same nesting level merge (summed time, summed count).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The span path (`"fields.vcycle"`).
    pub name: String,
    /// How many spans merged into this node.
    pub count: u64,
    /// Total wall-time across the merged spans, in seconds.
    pub total_s: f64,
    /// Child spans, first-seen order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Time spent in this span but not in any child, clamped to ≥ 0.
    pub fn self_s(&self) -> f64 {
        let child: f64 = self.children.iter().map(|c| c.total_s).sum();
        (self.total_s - child).max(0.0)
    }

    /// Appends this node as a JSON object (single line, no trailing
    /// newline): `{"name":…,"count":…,"total_s":…,"children":[…]}`.
    pub fn push_json(&self, out: &mut String) {
        out.push_str("{\"name\":\"");
        for c in self.name.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c => out.push(c),
            }
        }
        let total = if self.total_s.is_finite() {
            self.total_s
        } else {
            0.0
        };
        out.push_str(&format!(
            "\",\"count\":{},\"total_s\":{}",
            self.count, total
        ));
        out.push_str(",\"children\":[");
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.push_json(out);
        }
        out.push_str("]}");
    }
}

fn merge_into(list: &mut Vec<SpanNode>, node: SpanNode) {
    if let Some(existing) = list.iter_mut().find(|n| n.name == node.name) {
        existing.count += node.count;
        existing.total_s += node.total_s;
        for child in node.children {
            merge_into(&mut existing.children, child);
        }
    } else {
        list.push(node);
    }
}

/// Merges `node` into `list` with the same name-per-level folding the
/// trace capture applies — the building block for aggregating span
/// trees captured on *other* threads (pool workers, other requests)
/// into one view.
pub fn merge_nodes(list: &mut Vec<SpanNode>, node: SpanNode) {
    merge_into(list, node);
}

/// A per-thread span-tree capture. `begin` arms it, `end` returns the
/// merged root-level nodes. Spans already open when the trace begins
/// are not captured (they still record their histograms).
pub struct Trace;

impl Trace {
    /// Arms tracing on this thread, discarding any previous capture.
    pub fn begin() {
        TRACE.with(|t| {
            *t.borrow_mut() = Some(TraceState {
                frames: vec![Vec::new()],
            });
        });
    }

    /// Whether a trace is active on this thread.
    pub fn is_active() -> bool {
        TRACE.with(|t| t.borrow().is_some())
    }

    /// Disarms tracing and returns the captured root-level nodes
    /// (empty when no trace was active). Frames of spans still open at
    /// `end` are folded into their parent level so nothing is lost.
    pub fn end() -> Vec<SpanNode> {
        TRACE.with(|t| {
            let Some(mut state) = t.borrow_mut().take() else {
                return Vec::new();
            };
            while state.frames.len() > 1 {
                let orphans = state.frames.pop().expect("frame vec checked non-empty");
                let parent = state.frames.last_mut().expect("root frame always present");
                for node in orphans {
                    merge_into(parent, node);
                }
            }
            state.frames.pop().unwrap_or_default()
        })
    }

    /// Grafts externally captured span trees into the active trace at
    /// the current nesting level (so they appear as children of the
    /// innermost open span). No-op when no trace is armed — callers can
    /// attach unconditionally. This is how work executed on *other*
    /// threads (a sweep's pool workers) lands in the calling thread's
    /// profile: each worker runs its own `begin`/`end` capture and the
    /// orchestrator attaches the merged result.
    pub fn attach(nodes: Vec<SpanNode>) {
        let _ = TRACE.try_with(|t| {
            let mut t = t.borrow_mut();
            if let Some(state) = t.as_mut() {
                let frame = state.frames.last_mut().expect("root frame always present");
                for node in nodes {
                    merge_into(frame, node);
                }
            }
        });
    }
}

/// The RAII guard [`span!`] returns; records on drop.
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    traced: bool,
}

/// Starts a span (prefer the [`span!`] macro).
pub fn span(name: &'static str) -> SpanGuard {
    let traced = TRACE
        .try_with(|t| {
            let mut t = t.borrow_mut();
            match t.as_mut() {
                Some(state) => {
                    state.frames.push(Vec::new());
                    true
                }
                None => false,
            }
        })
        .unwrap_or(false);
    SpanGuard {
        name,
        start: Instant::now(),
        traced,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        // Histogram record, via the per-thread handle cache. try_with:
        // a guard dropped during thread teardown must not panic.
        let _ = HANDLES.try_with(|handles| {
            let mut handles = handles.borrow_mut();
            let h = handles
                .entry(self.name)
                .or_insert_with(|| register_span_histogram(self.name));
            h.record_duration(elapsed);
        });
        if self.traced {
            let _ = TRACE.try_with(|t| {
                let mut t = t.borrow_mut();
                if let Some(state) = t.as_mut() {
                    let children = state.frames.pop().unwrap_or_default();
                    let node = SpanNode {
                        name: self.name.to_string(),
                        count: 1,
                        total_s: elapsed.as_secs_f64(),
                        children,
                    };
                    match state.frames.last_mut() {
                        Some(parent) => merge_into(parent, node),
                        // The trace was replaced under an open guard;
                        // re-seed the root frame rather than lose data.
                        None => state.frames.push(vec![node]),
                    }
                }
            });
        }
    }
}

fn register_span_histogram(name: &str) -> Arc<Histogram> {
    let mut metric = String::with_capacity(name.len() + 24);
    metric.push_str("cnt_span_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            metric.push(c);
        } else {
            metric.push('_');
        }
    }
    metric.push_str("_seconds");
    crate::global().histogram(&metric, &format!("wall time of the {name} span"))
}

/// Renders captured span trees as an indented text table: name, merge
/// count, total time, share of the parent's total.
pub fn render_tree_text(roots: &[SpanNode]) -> String {
    fn width(nodes: &[SpanNode], depth: usize) -> usize {
        nodes
            .iter()
            .map(|n| (2 * depth + n.name.len()).max(width(&n.children, depth + 1)))
            .max()
            .unwrap_or(0)
    }
    fn walk(nodes: &[SpanNode], depth: usize, parent_s: f64, w: usize, out: &mut String) {
        for n in nodes {
            let pct = if parent_s > 0.0 {
                100.0 * n.total_s / parent_s
            } else {
                100.0
            };
            let label = format!("{}{}", "  ".repeat(depth), n.name);
            out.push_str(&format!(
                "{label:<w$}  {:>10}  {pct:>5.1}%  x{}\n",
                fmt_secs(n.total_s),
                n.count
            ));
            walk(&n.children, depth + 1, n.total_s, w, out);
        }
    }
    let w = width(roots, 0).max(8);
    let mut out = String::new();
    walk(roots, 0, roots.iter().map(|n| n.total_s).sum(), w, &mut out);
    out
}

/// Renders span trees in the folded-stacks format flamegraph tooling
/// consumes: one `root;child;leaf <value>` line per stack, where the
/// value is the stack's *self* time in integer microseconds (time in
/// the node but not in any child). Interior nodes whose self time
/// rounds to zero are omitted — their time is fully accounted for by
/// their children — but leaves always emit so no stack disappears.
pub fn fold_stacks(roots: &[SpanNode]) -> String {
    fn walk(prefix: &str, node: &SpanNode, out: &mut String) {
        let path = if prefix.is_empty() {
            node.name.clone()
        } else {
            format!("{prefix};{}", node.name)
        };
        let self_us = (node.self_s() * 1e6).round() as u64;
        if self_us > 0 || node.children.is_empty() {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&self_us.to_string());
            out.push('\n');
        }
        for child in &node.children {
            walk(&path, child, out);
        }
    }
    let mut out = String::new();
    for root in roots {
        walk("", root, &mut out);
    }
    out
}

/// A cumulative span profile: trees captured across many requests (or
/// many `Trace` sessions) merged into one forest, behind a mutex. The
/// serve layer folds every traced request into one of these and exposes
/// it at `/v1/profile`; `fold_stacks` on the snapshot yields the
/// flamegraph view of everything the process did.
#[derive(Debug, Default)]
pub struct Profile {
    roots: std::sync::Mutex<Vec<SpanNode>>,
    captures: std::sync::atomic::AtomicU64,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges one captured forest (a `Trace::end` result) into the
    /// profile. Empty captures still count toward [`Profile::captures`].
    pub fn add(&self, roots: &[SpanNode]) {
        self.captures
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut merged = self.roots.lock().expect("profile poisoned");
        for node in roots {
            merge_into(&mut merged, node.clone());
        }
    }

    /// How many captures were folded in.
    pub fn captures(&self) -> u64 {
        self.captures.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// A clone of the merged forest.
    pub fn snapshot(&self) -> Vec<SpanNode> {
        self.roots.lock().expect("profile poisoned").clone()
    }

    /// The profile as folded stacks (see [`fold_stacks`]).
    pub fn folded(&self) -> String {
        fold_stacks(&self.snapshot())
    }

    /// The profile as one line of JSON:
    /// `{"schema":1,"kind":"profile","captures":N,"spans":[…]}`.
    pub fn render_json(&self) -> String {
        let roots = self.snapshot();
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"schema\":1,\"kind\":\"profile\",\"captures\":{},\"spans\":[",
            self.captures()
        ));
        for (i, root) in roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            root.push_json(&mut out);
        }
        out.push_str("]}\n");
        out
    }
}

/// Formats seconds with an adaptive unit (`ns`/`µs`/`ms`/`s`).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn nested_spans_build_a_merged_tree() {
        Trace::begin();
        {
            let _outer = span!("test.outer");
            for _ in 0..3 {
                let _inner = span!("test.inner");
                let _leaf = span!("test.leaf");
            }
        }
        let roots = Trace::end();
        assert_eq!(roots.len(), 1);
        let outer = &roots[0];
        assert_eq!((outer.name.as_str(), outer.count), ("test.outer", 1));
        assert_eq!(outer.children.len(), 1, "inner spans must merge");
        let inner = &outer.children[0];
        assert_eq!((inner.name.as_str(), inner.count), ("test.inner", 3));
        assert_eq!(inner.children[0].count, 3);
        assert!(outer.total_s >= inner.total_s);
        assert!(outer.self_s() >= 0.0);
        // The trace is disarmed: a second end is empty.
        assert!(Trace::end().is_empty());
    }

    #[test]
    fn spans_record_histograms_without_a_trace() {
        {
            let _g = span!("test.histo-only");
        }
        let text = crate::global().render_prometheus();
        assert!(
            text.contains("cnt_span_test_histo_only_seconds_count"),
            "span histogram missing from global registry"
        );
    }

    #[test]
    fn panicking_scopes_still_pop_and_record() {
        Trace::begin();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _outer = span!("test.panic-outer");
            let _inner = span!("test.panic-inner");
            panic!("span scope blew up");
        }));
        assert!(result.is_err());
        // Both guards dropped during unwind: the tree is intact and a
        // fresh span nests at root level, not under a leaked frame.
        {
            let _after = span!("test.panic-after");
        }
        let roots = Trace::end();
        let names: Vec<&str> = roots.iter().map(|n| n.name.as_str()).collect();
        assert!(names.contains(&"test.panic-outer"), "{names:?}");
        assert!(names.contains(&"test.panic-after"), "{names:?}");
        let outer = roots.iter().find(|n| n.name == "test.panic-outer").unwrap();
        assert_eq!(outer.children[0].name, "test.panic-inner");
    }

    #[test]
    fn end_folds_open_frames_into_parents() {
        Trace::begin();
        let open = span!("test.still-open");
        {
            let _closed = span!("test.closed-child");
        }
        let roots = Trace::end();
        // The open span's frame is folded up so the closed child is
        // not lost; the open span itself was never closed, so it is
        // absent by construction.
        assert!(roots.iter().any(|n| n.name == "test.closed-child"));
        drop(open);
    }

    #[test]
    fn tree_renders_text_and_json() {
        let roots = vec![SpanNode {
            name: "a".to_string(),
            count: 1,
            total_s: 0.2,
            children: vec![SpanNode {
                name: "b.c".to_string(),
                count: 4,
                total_s: 0.1,
                children: Vec::new(),
            }],
        }];
        let text = render_tree_text(&roots);
        assert!(text.contains("a"), "{text}");
        assert!(text.contains("  b.c"), "{text}");
        assert!(text.contains("50.0%"), "{text}");
        assert!(text.contains("x4"), "{text}");
        let mut json = String::new();
        roots[0].push_json(&mut json);
        assert_eq!(
            json,
            "{\"name\":\"a\",\"count\":1,\"total_s\":0.2,\"children\":[{\"name\":\"b.c\",\"count\":4,\"total_s\":0.1,\"children\":[]}]}"
        );
    }

    #[test]
    fn attach_grafts_foreign_trees_under_the_open_span() {
        let worker_tree = vec![SpanNode {
            name: "sweep.job".to_string(),
            count: 4,
            total_s: 0.4,
            children: Vec::new(),
        }];
        // Without a trace, attach is a no-op (and must not panic).
        Trace::attach(worker_tree.clone());
        Trace::begin();
        {
            let _outer = span!("test.attach-outer");
            Trace::attach(worker_tree.clone());
            Trace::attach(worker_tree.clone());
        }
        let roots = Trace::end();
        let outer = roots
            .iter()
            .find(|n| n.name == "test.attach-outer")
            .expect("outer span captured");
        let job = outer
            .children
            .iter()
            .find(|n| n.name == "sweep.job")
            .expect("attached tree nests under the open span");
        assert_eq!(job.count, 8, "attached trees must merge");
        assert!((job.total_s - 0.8).abs() < 1e-12);
    }

    #[test]
    fn fold_stacks_emits_self_time_per_stack() {
        let roots = vec![SpanNode {
            name: "serve.request".to_string(),
            count: 1,
            total_s: 0.003,
            children: vec![SpanNode {
                name: "fields.solve".to_string(),
                count: 2,
                total_s: 0.002,
                children: Vec::new(),
            }],
        }];
        let folded = fold_stacks(&roots);
        assert_eq!(
            folded,
            "serve.request 1000\nserve.request;fields.solve 2000\n"
        );
        // A parent fully accounted for by its children emits no line of
        // its own, but the leaf always does.
        let exact = vec![SpanNode {
            name: "a".to_string(),
            count: 1,
            total_s: 0.001,
            children: vec![SpanNode {
                name: "b".to_string(),
                count: 1,
                total_s: 0.001,
                children: Vec::new(),
            }],
        }];
        assert_eq!(fold_stacks(&exact), "a;b 1000\n");
        assert_eq!(fold_stacks(&[]), "");
    }

    #[test]
    fn profile_accumulates_across_captures() {
        let profile = Profile::new();
        let tree = |t: f64| {
            vec![SpanNode {
                name: "serve.request".to_string(),
                count: 1,
                total_s: t,
                children: Vec::new(),
            }]
        };
        profile.add(&tree(0.01));
        profile.add(&tree(0.03));
        assert_eq!(profile.captures(), 2);
        let snap = profile.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].count, 2);
        assert!((snap[0].total_s - 0.04).abs() < 1e-12);
        let json = profile.render_json();
        assert!(json.starts_with("{\"schema\":1,\"kind\":\"profile\",\"captures\":2,"));
        assert_eq!(json.lines().count(), 1);
        assert!(profile.folded().starts_with("serve.request "));
    }

    #[test]
    fn fmt_secs_picks_units() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(0.0123), "12.300 ms");
        assert_eq!(fmt_secs(4.2e-5), "42.000 µs");
        assert_eq!(fmt_secs(5.0e-8), "50 ns");
    }
}
