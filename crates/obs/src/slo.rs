//! Declarative SLOs evaluated as multi-window burn rates.
//!
//! An [`SloSpec`] names an objective over one metric family — a latency
//! quantile threshold or an error-rate budget — and is evaluated
//! against a [`HistoryStore`] over two trailing windows (fast + slow).
//! The *burn rate* is "how many times faster than allowed are we
//! spending the budget": 1.0 means exactly on budget. Paging requires
//! the page threshold on **both** windows (the fast window catches the
//! onset quickly; the slow window keeps a transient blip from paging),
//! the standard multi-window multi-burn-rate alerting shape.

use crate::metrics::{json_escape, json_num};
use crate::timeseries::HistoryStore;

/// What an SLO measures.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// `quantile(q)` of a histogram family must stay under
    /// `threshold_s`; burn = observed quantile / threshold.
    LatencyQuantile {
        /// Histogram series name (e.g. `cnt_serve_request_seconds`).
        metric: String,
        /// Quantile in `[0, 1]` (e.g. 0.9).
        q: f64,
        /// Objective: the quantile must stay below this many seconds.
        threshold_s: f64,
    },
    /// 5xx share of a labeled counter family must stay under `budget`;
    /// burn = observed error ratio / budget.
    ErrorRate {
        /// Counter family name (e.g. `cnt_serve_requests_total`,
        /// labeled by status code).
        family: String,
        /// Allowed error ratio (e.g. 0.01 for 99% availability).
        budget: f64,
    },
    /// The share of a labeled counter family carried by one label value
    /// must stay under `budget`; burn = observed share / budget. The
    /// stock use is degraded-mode guarding: how much fleet routing is
    /// falling back to local compute because owners are Down.
    LabelShare {
        /// Counter family name (e.g. `cnt_fleet_route_total`).
        family: String,
        /// The label value whose share is budgeted (e.g. `degraded`).
        label: String,
        /// Allowed share of the family total (e.g. 0.25).
        budget: f64,
    },
}

/// One declarative objective plus its alerting windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Short operator-facing name (e.g. `latency-p90`).
    pub name: String,
    /// The measured objective.
    pub kind: SloKind,
    /// Fast alerting window in seconds (onset detection).
    pub fast_window_s: f64,
    /// Slow alerting window in seconds (sustained-burn confirmation).
    pub slow_window_s: f64,
    /// Burn rate at or above which the state is at least `Warn`.
    pub warn_burn: f64,
    /// Burn rate at or above which (on both windows) the state pages.
    pub page_burn: f64,
}

impl SloSpec {
    /// A spec with the conventional thresholds: warn at burn ≥ 1.0
    /// (on budget's edge), page at burn ≥ 2.0 on both windows.
    pub fn new(name: &str, kind: SloKind, fast_window_s: f64, slow_window_s: f64) -> Self {
        Self {
            name: name.to_string(),
            kind,
            fast_window_s,
            slow_window_s,
            warn_burn: 1.0,
            page_burn: 2.0,
        }
    }
}

/// Evaluated alert state, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloState {
    /// Burning slower than the budget on every window.
    Ok,
    /// At least one window at or above the warn burn rate.
    Warn,
    /// Both windows at or above the page burn rate.
    Page,
}

impl SloState {
    /// Lowercase wire label.
    pub fn label(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warn => "warn",
            SloState::Page => "page",
        }
    }
}

/// One spec's evaluation against a store.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Spec name.
    pub name: String,
    /// Resulting alert state.
    pub state: SloState,
    /// Burn rate over the fast window (0.0 when no data).
    pub burn_fast: f64,
    /// Burn rate over the slow window (0.0 when no data).
    pub burn_slow: f64,
}

/// Burn rate of one kind over one trailing window. No data burns
/// nothing: an idle series reads 0.0, not an alert.
fn burn(kind: &SloKind, store: &HistoryStore, window_s: f64) -> f64 {
    match kind {
        SloKind::LatencyQuantile {
            metric,
            q,
            threshold_s,
        } => {
            let Some(window) = store.hist_window(metric, window_s) else {
                return 0.0;
            };
            match (window.quantile(*q), *threshold_s > 0.0) {
                (Some(observed), true) => (observed / threshold_s).max(0.0),
                _ => 0.0,
            }
        }
        SloKind::ErrorRate { family, budget } => {
            let errors = store.counter_family_delta(family, window_s, |status| {
                status.parse::<u16>().is_ok_and(|code| code >= 500)
            });
            let total = store.counter_family_delta(family, window_s, |_| true);
            // An empty error series sums to -0.0 (f64's additive
            // identity), which `format!` renders as "-0"; clamp.
            if total <= 0.0 || *budget <= 0.0 || errors <= 0.0 {
                return 0.0;
            }
            (errors / total) / budget
        }
        SloKind::LabelShare {
            family,
            label,
            budget,
        } => {
            let hits = store.counter_family_delta(family, window_s, |value| value == label);
            let total = store.counter_family_delta(family, window_s, |_| true);
            if total <= 0.0 || *budget <= 0.0 || hits <= 0.0 {
                return 0.0;
            }
            (hits / total) / budget
        }
    }
}

/// Evaluates one spec against a store.
pub fn evaluate(spec: &SloSpec, store: &HistoryStore) -> SloReport {
    let burn_fast = burn(&spec.kind, store, spec.fast_window_s);
    let burn_slow = burn(&spec.kind, store, spec.slow_window_s);
    let state = if burn_fast >= spec.page_burn && burn_slow >= spec.page_burn {
        SloState::Page
    } else if burn_fast.max(burn_slow) >= spec.warn_burn {
        SloState::Warn
    } else {
        SloState::Ok
    };
    SloReport {
        name: spec.name.clone(),
        state,
        burn_fast,
        burn_slow,
    }
}

/// Evaluates every spec; reports come back in spec order.
pub fn evaluate_all(specs: &[SloSpec], store: &HistoryStore) -> Vec<SloReport> {
    specs.iter().map(|spec| evaluate(spec, store)).collect()
}

/// Reports as one line of JSON (`{"schema":1,"kind":"slo",…}`), with
/// the worst state hoisted to the top level.
pub fn render_json(reports: &[SloReport]) -> String {
    let worst = reports
        .iter()
        .map(|r| r.state)
        .max()
        .unwrap_or(SloState::Ok);
    let mut out = String::with_capacity(256);
    out.push_str(&format!(
        "{{\"schema\":1,\"kind\":\"slo\",\"state\":\"{}\",\"slos\":[",
        worst.label()
    ));
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json_escape(&r.name, &mut out);
        out.push_str(&format!(
            ",\"state\":\"{}\",\"burn_fast\":{},\"burn_slow\":{}}}",
            r.state.label(),
            json_num(r.burn_fast),
            json_num(r.burn_slow)
        ));
    }
    out.push_str("]}\n");
    out
}

/// The serve layer's stock objectives: request p90 under 500 ms, 99%
/// non-5xx, fleet routing at most 25% degraded (requests computed
/// locally only because their owner is Down), and at most 5% of async
/// sweep jobs ending `failed`, all on a 60 s fast / 300 s slow window
/// pair. Outside fleet mode the degraded family never moves, so that
/// objective reads a permanent 0.0 burn; likewise job-failures when no
/// async sweeps run.
pub fn default_serve_slos() -> Vec<SloSpec> {
    vec![
        SloSpec::new(
            "latency-p90",
            SloKind::LatencyQuantile {
                metric: "cnt_serve_request_seconds".to_string(),
                q: 0.9,
                threshold_s: 0.5,
            },
            60.0,
            300.0,
        ),
        SloSpec::new(
            "availability",
            SloKind::ErrorRate {
                family: "cnt_serve_requests_total".to_string(),
                budget: 0.01,
            },
            60.0,
            300.0,
        ),
        SloSpec::new(
            "fleet-degraded",
            SloKind::LabelShare {
                family: "cnt_fleet_route_total".to_string(),
                label: "degraded".to_string(),
                budget: 0.25,
            },
            60.0,
            300.0,
        ),
        SloSpec::new(
            "job-failures",
            SloKind::LabelShare {
                family: "cnt_serve_jobs_total".to_string(),
                label: "failed".to_string(),
                budget: 0.05,
            },
            60.0,
            300.0,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricSnapshot;

    fn latency_spec(threshold_s: f64) -> SloSpec {
        SloSpec::new(
            "latency-p90",
            SloKind::LatencyQuantile {
                metric: "t_seconds".to_string(),
                q: 0.9,
                threshold_s,
            },
            60.0,
            300.0,
        )
    }

    fn hist_snap(counts: Vec<u64>, sum: f64) -> Vec<(String, MetricSnapshot)> {
        vec![(
            "t_seconds".to_string(),
            MetricSnapshot::Histogram {
                bounds: vec![0.1, 1.0],
                counts,
                sum,
            },
        )]
    }

    #[test]
    fn no_data_reads_ok_with_zero_burn() {
        let store = HistoryStore::new(8);
        let report = evaluate(&latency_spec(0.5), &store);
        assert_eq!(report.state, SloState::Ok);
        assert_eq!(report.burn_fast, 0.0);
        assert_eq!(report.burn_slow, 0.0);
    }

    #[test]
    fn sustained_slow_requests_page_and_fast_ones_stay_ok() {
        // All observations land in the (0.1, 1.0] bucket: p90 ≈ 0.9 s,
        // burning a 0.2 s objective at ≥ 2× on both windows.
        let store = HistoryStore::new(8);
        store.ingest(hist_snap(vec![0, 50, 0], 45.0));
        let paged = evaluate(&latency_spec(0.2), &store);
        assert_eq!(paged.state, SloState::Page, "{paged:?}");
        assert!(paged.burn_fast >= 2.0 && paged.burn_slow >= 2.0);

        // Same traffic against a lenient 10 s objective: ok.
        let ok = evaluate(&latency_spec(10.0), &store);
        assert_eq!(ok.state, SloState::Ok, "{ok:?}");

        // An objective the p90 just crosses: warn, not page.
        let warn_spec = SloSpec {
            page_burn: 100.0,
            ..latency_spec(0.5)
        };
        let warned = evaluate(&warn_spec, &store);
        assert_eq!(warned.state, SloState::Warn, "{warned:?}");
    }

    #[test]
    fn error_rate_burn_is_ratio_over_budget() {
        let store = HistoryStore::new(8);
        let snap = |ok: u64, err: u64| {
            vec![
                (
                    "t_req_total{status=\"200\"}".to_string(),
                    MetricSnapshot::Counter(ok),
                ),
                (
                    "t_req_total{status=\"503\"}".to_string(),
                    MetricSnapshot::Counter(err),
                ),
            ]
        };
        store.ingest(snap(0, 0));
        store.ingest(snap(90, 10));
        let spec = SloSpec::new(
            "availability",
            SloKind::ErrorRate {
                family: "t_req_total".to_string(),
                budget: 0.01,
            },
            3600.0,
            7200.0,
        );
        let report = evaluate(&spec, &store);
        // 10% errors against a 1% budget: burn 10× on both windows.
        assert!((report.burn_fast - 10.0).abs() < 1e-6, "burn {report:?}");
        assert_eq!(report.state, SloState::Page);
        // Non-numeric labels never count as errors.
        assert!(!"hit".parse::<u16>().is_ok_and(|c| c >= 500));
    }

    #[test]
    fn render_json_hoists_the_worst_state() {
        let reports = vec![
            SloReport {
                name: "a".to_string(),
                state: SloState::Ok,
                burn_fast: 0.1,
                burn_slow: 0.2,
            },
            SloReport {
                name: "b".to_string(),
                state: SloState::Warn,
                burn_fast: 1.5,
                burn_slow: 0.4,
            },
        ];
        let json = render_json(&reports);
        assert_eq!(json.lines().count(), 1);
        assert!(json.starts_with("{\"schema\":1,\"kind\":\"slo\",\"state\":\"warn\""));
        assert!(json.contains("\"name\":\"b\",\"state\":\"warn\""), "{json}");
        assert!(
            render_json(&[]).contains("\"state\":\"ok\""),
            "empty spec list is ok"
        );
    }

    #[test]
    fn label_share_burn_is_share_over_budget() {
        let store = HistoryStore::new(8);
        let snap = |local: u64, degraded: u64| {
            vec![
                (
                    "t_route_total{outcome=\"local\"}".to_string(),
                    MetricSnapshot::Counter(local),
                ),
                (
                    "t_route_total{outcome=\"degraded\"}".to_string(),
                    MetricSnapshot::Counter(degraded),
                ),
            ]
        };
        store.ingest(snap(0, 0));
        store.ingest(snap(50, 50));
        let spec = SloSpec::new(
            "fleet-degraded",
            SloKind::LabelShare {
                family: "t_route_total".to_string(),
                label: "degraded".to_string(),
                budget: 0.25,
            },
            3600.0,
            7200.0,
        );
        let report = evaluate(&spec, &store);
        // Half the routes degraded against a 25% budget: burn 2× — page.
        assert!((report.burn_fast - 2.0).abs() < 1e-6, "burn {report:?}");
        assert_eq!(report.state, SloState::Page);

        // A quiet family (no movement inside the window) burns nothing.
        let idle = HistoryStore::new(8);
        idle.ingest(snap(10, 0));
        idle.ingest(snap(10, 0));
        let quiet = evaluate(&spec, &idle);
        assert_eq!(quiet.state, SloState::Ok, "{quiet:?}");
        assert_eq!(quiet.burn_fast, 0.0);
    }

    #[test]
    fn default_serve_slos_cover_latency_availability_and_degradation() {
        let specs = default_serve_slos();
        assert_eq!(specs.len(), 4);
        assert!(specs.iter().any(|s| matches!(
            &s.kind,
            SloKind::LatencyQuantile { metric, .. } if metric == "cnt_serve_request_seconds"
        )));
        assert!(specs.iter().any(|s| matches!(
            &s.kind,
            SloKind::ErrorRate { family, .. } if family == "cnt_serve_requests_total"
        )));
        assert!(specs.iter().any(|s| matches!(
            &s.kind,
            SloKind::LabelShare { family, label, .. }
                if family == "cnt_fleet_route_total" && label == "degraded"
        )));
        assert!(specs.iter().any(|s| matches!(
            &s.kind,
            SloKind::LabelShare { family, label, .. }
                if family == "cnt_serve_jobs_total" && label == "failed"
        )));
    }
}
