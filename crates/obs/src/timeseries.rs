//! Fixed-size metric history rings — the self-scraped time dimension.
//!
//! A [`HistoryStore`] turns a [`MetricRegistry`] of instantaneous
//! values into short time series: a scraper thread calls
//! [`HistoryStore::sample`] on an interval and each series keeps its
//! last `capacity` points in a ring (oldest overwritten first).
//! Counters and gauges store one scalar per point; histograms store the
//! cumulative bucket-count vector, so *windowed* quantiles fall out of
//! bucket deltas between two points — the same estimate a Prometheus
//! `rate()[w]` + `histogram_quantile` pipeline computes, with no raw
//! samples retained.
//!
//! Windowed extremes (`min`/`max` over the last w seconds) are computed
//! on read by scanning the ring rather than maintained incrementally —
//! with ≤ 512 points a scan is cheaper than the bookkeeping, and the
//! running-extreme-over-a-moving-window problem this sidesteps is
//! genuinely subtle (cf. the Darling–Erdős-type running-maximum coupling
//! of Khoshnevisan–Levin: windowed extremes of a cumulative process
//! carry long-range structure that an O(1) summary cannot).

use crate::metrics::{json_escape, json_num, quantile_from_counts, MetricRegistry, MetricSnapshot};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::{Instant, SystemTime};

/// Default points retained per series.
pub const DEFAULT_HISTORY_POINTS: usize = 512;

/// One scalar observation: monotonic seconds since the store was
/// created (windowing clock) plus wall-clock seconds (display clock).
#[derive(Debug, Clone, Copy, PartialEq)]
struct ScalarPoint {
    at_s: f64,
    unix_s: f64,
    value: f64,
}

/// One histogram observation: the cumulative bucket counts and sum as
/// of the sample instant.
#[derive(Debug, Clone, PartialEq)]
struct HistPoint {
    at_s: f64,
    unix_s: f64,
    counts: Vec<u64>,
    sum: f64,
}

#[derive(Debug)]
enum SeriesData {
    Scalar(VecDeque<ScalarPoint>),
    Hist {
        bounds: Vec<f64>,
        points: VecDeque<HistPoint>,
    },
}

#[derive(Debug)]
struct Series {
    kind: &'static str, // "counter" | "gauge" | "histogram"
    data: SeriesData,
}

/// Windowed summary of a scalar series.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSummary {
    /// Newest sampled value.
    pub last: f64,
    /// Smallest sampled value inside the window.
    pub min: f64,
    /// Largest sampled value inside the window.
    pub max: f64,
    /// For counters: increase per second across the window (`None` for
    /// gauges, and for windows spanning < 2 distinct instants).
    pub rate_per_s: Option<f64>,
    /// Points inside the window.
    pub points: usize,
}

/// Windowed view of a histogram series: the bucket-count *delta*
/// between the window's edges, i.e. only observations recorded inside
/// the window.
#[derive(Debug, Clone, PartialEq)]
pub struct HistWindow {
    /// Upper bucket bounds, `+Inf` implicit.
    pub bounds: Vec<f64>,
    /// Observations per bucket inside the window, `+Inf` last.
    pub counts: Vec<u64>,
    /// Observations inside the window.
    pub count: u64,
    /// Sum of observed values inside the window.
    pub sum: f64,
}

impl HistWindow {
    /// Interpolated `q`-quantile of the window's observations; `None`
    /// when the window saw none.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_counts(&self.bounds, &self.counts, q)
    }
}

/// Bounded per-series history rings fed by [`HistoryStore::sample`].
#[derive(Debug)]
pub struct HistoryStore {
    capacity: usize,
    started: Instant,
    series: Mutex<BTreeMap<String, Series>>,
}

impl HistoryStore {
    /// A store keeping `capacity` points per series (min 2).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(2),
            started: Instant::now(),
            series: Mutex::new(BTreeMap::new()),
        }
    }

    /// Points retained per series.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples every series of `registry` into the rings; one point per
    /// series per call. Call from a scraper thread on a fixed interval
    /// (multiple registries may share one store as long as their metric
    /// names are disjoint).
    pub fn sample(&self, registry: &MetricRegistry) {
        self.ingest(registry.snapshot());
    }

    /// Appends one pre-made snapshot (the testable core of [`sample`]).
    ///
    /// [`sample`]: HistoryStore::sample
    pub fn ingest(&self, snapshot: Vec<(String, MetricSnapshot)>) {
        let at_s = self.started.elapsed().as_secs_f64();
        let unix_s = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map_or(0.0, |d| d.as_secs_f64());
        let mut series = self.series.lock().expect("history store poisoned");
        for (name, snap) in snapshot {
            match snap {
                MetricSnapshot::Counter(v) => push_scalar(
                    &mut series,
                    name,
                    "counter",
                    at_s,
                    unix_s,
                    v as f64,
                    self.capacity,
                ),
                MetricSnapshot::Gauge(v) => {
                    push_scalar(&mut series, name, "gauge", at_s, unix_s, v, self.capacity)
                }
                MetricSnapshot::Histogram {
                    bounds,
                    counts,
                    sum,
                } => {
                    let entry = series.entry(name).or_insert_with(|| Series {
                        kind: "histogram",
                        data: SeriesData::Hist {
                            bounds: bounds.clone(),
                            points: VecDeque::new(),
                        },
                    });
                    if let SeriesData::Hist { points, .. } = &mut entry.data {
                        points.push_back(HistPoint {
                            at_s,
                            unix_s,
                            counts,
                            sum,
                        });
                        while points.len() > self.capacity {
                            points.pop_front();
                        }
                    }
                }
            }
        }
    }

    /// Series currently tracked.
    pub fn series_count(&self) -> usize {
        self.series.lock().expect("history store poisoned").len()
    }

    /// Windowed min/max/rate of a scalar series over the trailing
    /// `window_s` seconds; `None` for unknown or histogram series, or
    /// when no point has been sampled yet.
    pub fn windowed(&self, name: &str, window_s: f64) -> Option<WindowSummary> {
        let series = self.series.lock().expect("history store poisoned");
        let entry = series.get(name)?;
        let SeriesData::Scalar(points) = &entry.data else {
            return None;
        };
        let newest = points.back()?;
        let cutoff = newest.at_s - window_s.max(0.0);
        let inside: Vec<&ScalarPoint> = points.iter().filter(|p| p.at_s >= cutoff).collect();
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in &inside {
            min = min.min(p.value);
            max = max.max(p.value);
        }
        // Counter rate: delta against the last point at-or-before the
        // window start; when the whole ring is inside the window the
        // process itself started inside it, so the baseline is zero at
        // the store's epoch (counters start at zero).
        let rate_per_s = (entry.kind == "counter")
            .then(|| {
                let baseline = points.iter().rev().find(|p| p.at_s < cutoff);
                let (base_v, base_t) = baseline.map_or((0.0, 0.0), |p| (p.value, p.at_s));
                let span = newest.at_s - base_t;
                (span > 0.0).then(|| ((newest.value - base_v) / span).max(0.0))
            })
            .flatten();
        Some(WindowSummary {
            last: newest.value,
            min,
            max,
            rate_per_s,
            points: inside.len(),
        })
    }

    /// Bucket-count delta of a histogram series across the trailing
    /// `window_s` seconds; `None` for unknown or scalar series, or when
    /// no point has been sampled yet.
    pub fn hist_window(&self, name: &str, window_s: f64) -> Option<HistWindow> {
        let series = self.series.lock().expect("history store poisoned");
        let entry = series.get(name)?;
        let SeriesData::Hist { bounds, points } = &entry.data else {
            return None;
        };
        let newest = points.back()?;
        let cutoff = newest.at_s - window_s.max(0.0);
        let baseline = points.iter().rev().find(|p| p.at_s < cutoff);
        let counts: Vec<u64> = newest
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let base = baseline.and_then(|b| b.counts.get(i).copied()).unwrap_or(0);
                c.saturating_sub(base)
            })
            .collect();
        let sum = (newest.sum - baseline.map_or(0.0, |b| b.sum)).max(0.0);
        Some(HistWindow {
            bounds: bounds.clone(),
            count: counts.iter().sum(),
            counts,
            sum,
        })
    }

    /// Windowed counter increase summed over a labeled family's
    /// children whose label value passes `select`. Series are matched
    /// by the flattened snapshot name (`family{key="value"}`).
    pub fn counter_family_delta(
        &self,
        family: &str,
        window_s: f64,
        select: impl Fn(&str) -> bool,
    ) -> f64 {
        let prefix = format!("{family}{{");
        let names: Vec<String> = {
            let series = self.series.lock().expect("history store poisoned");
            series
                .keys()
                .filter(|name| name.starts_with(&prefix))
                .filter(|name| label_value(name).is_some_and(&select))
                .cloned()
                .collect()
        };
        names
            .iter()
            .filter_map(|name| {
                let w = self.windowed(name, window_s)?;
                // rate × window ≈ increase; reconstruct the increase
                // directly from the rate to share the baseline logic.
                w.rate_per_s.map(|r| r * window_s)
            })
            .sum()
    }

    /// The full store as one line of JSON
    /// (`{"schema":1,"kind":"metrics_history",…}`), with a windowed
    /// summary per series over the trailing `window_s` seconds. Scalar
    /// points render as `[unix_s, value]` pairs; histogram points as
    /// `[unix_s, count, sum]` triples (bucket vectors stay internal —
    /// the windowed quantiles are the consumable view).
    pub fn render_json(&self, window_s: f64) -> String {
        let series = self.series.lock().expect("history store poisoned");
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"schema\":1,\"kind\":\"metrics_history\",\"points_cap\":{},\"window_s\":{},\"series\":[",
            self.capacity,
            json_num(window_s)
        ));
        for (i, (name, entry)) in series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_escape(name, &mut out);
            out.push_str(&format!(",\"type\":\"{}\",\"points\":[", entry.kind));
            match &entry.data {
                SeriesData::Scalar(points) => {
                    for (j, p) in points.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{},{}]", json_num(p.unix_s), json_num(p.value)));
                    }
                    out.push(']');
                }
                SeriesData::Hist { points, .. } => {
                    for (j, p) in points.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!(
                            "[{},{},{}]",
                            json_num(p.unix_s),
                            p.counts.iter().sum::<u64>(),
                            json_num(p.sum)
                        ));
                    }
                    out.push(']');
                }
            }
            series_window_json(entry, window_s, &mut out);
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }
}

/// Appends the `,"window":{…}` member for one series. The windowed
/// math is inlined rather than routed through [`HistoryStore::windowed`]
/// because the caller already holds the series-map mutex.
fn series_window_json(entry: &Series, window_s: f64, out: &mut String) {
    match &entry.data {
        SeriesData::Scalar(points) => {
            // Inline the windowed math (the store's mutex is held).
            let Some(newest) = points.back() else {
                return;
            };
            let cutoff = newest.at_s - window_s.max(0.0);
            let (mut min, mut max, mut n) = (f64::INFINITY, f64::NEG_INFINITY, 0usize);
            for p in points.iter().filter(|p| p.at_s >= cutoff) {
                min = min.min(p.value);
                max = max.max(p.value);
                n += 1;
            }
            out.push_str(&format!(
                ",\"window\":{{\"last\":{},\"min\":{},\"max\":{},\"points\":{n}",
                json_num(newest.value),
                json_num(min),
                json_num(max)
            ));
            if entry.kind == "counter" {
                let baseline = points.iter().rev().find(|p| p.at_s < cutoff);
                let (base_v, base_t) = baseline.map_or((0.0, 0.0), |p| (p.value, p.at_s));
                let span = newest.at_s - base_t;
                if span > 0.0 {
                    out.push_str(&format!(
                        ",\"rate_per_s\":{}",
                        json_num(((newest.value - base_v) / span).max(0.0))
                    ));
                }
            }
            out.push('}');
        }
        SeriesData::Hist { bounds, points } => {
            let Some(newest) = points.back() else {
                return;
            };
            let cutoff = newest.at_s - window_s.max(0.0);
            let baseline = points.iter().rev().find(|p| p.at_s < cutoff);
            let counts: Vec<u64> = newest
                .counts
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    let base = baseline.and_then(|b| b.counts.get(i).copied()).unwrap_or(0);
                    c.saturating_sub(base)
                })
                .collect();
            let total: u64 = counts.iter().sum();
            let sum = (newest.sum - baseline.map_or(0.0, |b| b.sum)).max(0.0);
            out.push_str(&format!(
                ",\"window\":{{\"count\":{total},\"sum\":{}",
                json_num(sum)
            ));
            for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                if let Some(v) = quantile_from_counts(bounds, &counts, q) {
                    out.push_str(&format!(",\"{label}\":{}", json_num(v)));
                }
            }
            out.push('}');
        }
    }
}

fn push_scalar(
    series: &mut BTreeMap<String, Series>,
    name: String,
    kind: &'static str,
    at_s: f64,
    unix_s: f64,
    value: f64,
    capacity: usize,
) {
    let entry = series.entry(name).or_insert_with(|| Series {
        kind,
        data: SeriesData::Scalar(VecDeque::new()),
    });
    if let SeriesData::Scalar(points) = &mut entry.data {
        points.push_back(ScalarPoint {
            at_s,
            unix_s,
            value,
        });
        while points.len() > capacity {
            points.pop_front();
        }
    }
}

/// The label value of a flattened family series name
/// (`family{key="value"}` → `value`), unescaped enough for status-code
/// matching (the serve layer's labels are plain ASCII).
fn label_value(name: &str) -> Option<&str> {
    name.split_once("=\"")?.1.strip_suffix("\"}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_snap(name: &str, v: u64) -> Vec<(String, MetricSnapshot)> {
        vec![(name.to_string(), MetricSnapshot::Counter(v))]
    }

    #[test]
    fn ring_wraps_and_overwrites_oldest_points() {
        let store = HistoryStore::new(4);
        for v in 0..10u64 {
            store.ingest(counter_snap("t_total", v));
        }
        // Window wide enough to cover the whole ring: only the last 4
        // points survive the wraparound.
        let w = store.windowed("t_total", 1e9).expect("series exists");
        assert_eq!(w.points, 4, "ring must cap at capacity");
        assert_eq!(w.last, 9.0);
        assert_eq!(w.min, 6.0, "oldest points must be overwritten");
        assert_eq!(w.max, 9.0);

        // Histogram rings wrap the same way.
        let hist = |c: u64| {
            vec![(
                "t_seconds".to_string(),
                MetricSnapshot::Histogram {
                    bounds: vec![1.0],
                    counts: vec![c, 0],
                    sum: c as f64 * 0.5,
                },
            )]
        };
        for c in 0..10u64 {
            store.ingest(hist(c));
        }
        let hw = store.hist_window("t_seconds", 1e9).expect("hist series");
        // Whole ring inside the window and no pre-window baseline point
        // survived, so the delta is against zero: the newest cumulative
        // counts stand as-is.
        assert_eq!(hw.count, 9);
    }

    #[test]
    fn capacity_floor_is_two() {
        let store = HistoryStore::new(0);
        assert_eq!(store.capacity(), 2);
        for v in 0..5u64 {
            store.ingest(counter_snap("t_total", v));
        }
        assert_eq!(store.windowed("t_total", 1e9).unwrap().points, 2);
    }

    #[test]
    fn windowed_rate_uses_the_pre_window_baseline() {
        let store = HistoryStore::new(16);
        // Two samples ~0s apart (both "now"): rate falls back to the
        // zero-at-epoch baseline, so it is finite and non-negative.
        store.ingest(counter_snap("t_total", 10));
        store.ingest(counter_snap("t_total", 30));
        let w = store.windowed("t_total", 60.0).unwrap();
        assert_eq!(w.last, 30.0);
        if let Some(rate) = w.rate_per_s {
            assert!(rate >= 0.0);
        }
        // Gauges never report a rate.
        store.ingest(vec![("t_gauge".to_string(), MetricSnapshot::Gauge(2.5))]);
        let g = store.windowed("t_gauge", 60.0).unwrap();
        assert_eq!(g.rate_per_s, None);
        assert_eq!(g.last, 2.5);
        // Unknown series: no summary.
        assert!(store.windowed("t_missing", 60.0).is_none());
    }

    #[test]
    fn hist_window_quantiles_come_from_bucket_deltas() {
        let store = HistoryStore::new(16);
        let point = |counts: Vec<u64>, sum: f64| {
            vec![(
                "t_seconds".to_string(),
                MetricSnapshot::Histogram {
                    bounds: vec![1.0, 2.0, 4.0],
                    counts,
                    sum,
                },
            )]
        };
        store.ingest(point(vec![5, 0, 0, 0], 2.5));
        store.ingest(point(vec![5, 0, 10, 0], 32.5));
        // Window of ~0 seconds still sees the newest point; with no
        // baseline older than the cutoff... use a generous window: the
        // delta baseline is zero-at-epoch, covering all 15 observations.
        let hw = store.hist_window("t_seconds", 1e9).unwrap();
        assert_eq!(hw.count, 15);
        let q90 = hw.quantile(0.9).unwrap();
        assert!((2.0..=4.0).contains(&q90), "q90 = {q90}");
        assert_eq!(hw.quantile(0.5).map(|v| v <= 4.0), Some(true));
        // Empty window (no observations): quantile is None.
        let empty = HistoryStore::new(4);
        empty.ingest(point(vec![0, 0, 0, 0], 0.0));
        assert_eq!(
            empty.hist_window("t_seconds", 60.0).unwrap().quantile(0.5),
            None
        );
    }

    #[test]
    fn family_delta_filters_by_label_value() {
        let store = HistoryStore::new(8);
        let snap = |ok: u64, err: u64| {
            vec![
                (
                    "t_req_total{status=\"200\"}".to_string(),
                    MetricSnapshot::Counter(ok),
                ),
                (
                    "t_req_total{status=\"500\"}".to_string(),
                    MetricSnapshot::Counter(err),
                ),
            ]
        };
        store.ingest(snap(0, 0));
        store.ingest(snap(90, 10));
        let is_5xx = |v: &str| v.starts_with('5');
        let err = store.counter_family_delta("t_req_total", 3600.0, is_5xx);
        let all = store.counter_family_delta("t_req_total", 3600.0, |_| true);
        // rate × window reconstruction: proportions are exact even when
        // the absolute increase depends on sub-millisecond timing.
        if all > 0.0 {
            assert!((err / all - 0.1).abs() < 1e-9, "err={err} all={all}");
        }
        assert_eq!(label_value("t_req_total{status=\"500\"}"), Some("500"));
        assert_eq!(label_value("t_req_total"), None);
    }

    #[test]
    fn render_json_is_one_parseable_line() {
        let store = HistoryStore::new(8);
        let registry = MetricRegistry::new();
        registry.counter("t_total", "help").add(3);
        registry
            .histogram_with("t_seconds", "timings", &[1.0])
            .record(0.5);
        store.sample(&registry);
        store.sample(&registry);
        let json = store.render_json(60.0);
        assert_eq!(json.lines().count(), 1);
        assert!(json.starts_with("{\"schema\":1,\"kind\":\"metrics_history\""));
        assert!(json.contains("\"name\":\"t_total\""), "{json}");
        assert!(json.contains("\"type\":\"histogram\""), "{json}");
        assert!(json.contains("\"window\":{"), "{json}");
        assert!(json.contains("\"p90\":"), "{json}");
    }
}
