//! Distributed trace context and a bounded ring of recent traces.
//!
//! A [`TraceContext`] is the wire identity of one request tree:
//! a 64-bit trace id minted at ingress plus the current span id,
//! carried across fleet hops as `X-Trace-Id` / `X-Parent-Span`
//! headers (a `traceparent`-style pair, hex-encoded). Every
//! participating instance stores one [`TraceRecord`] per request —
//! its span tree, status, and parentage — in a [`TraceStore`]: a
//! bounded TTL ring like the serve layer's job table. Reading
//! `GET /v1/trace/{id}` assembles the records (local + peer-fetched)
//! into one tree by linking each record's parent span id to the span
//! id of the record that minted it.

use crate::metrics::{json_escape, json_num};
use crate::span::SpanNode;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Identity of one request within a distributed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id shared by every hop of the request tree (never 0).
    pub trace_id: u64,
    /// This hop's span id (never 0).
    pub span_id: u64,
    /// Span id of the hop that called us, if any.
    pub parent: Option<u64>,
}

impl TraceContext {
    /// A fresh root context (no parent).
    pub fn root(trace_id: u64, span_id: u64) -> Self {
        Self {
            trace_id,
            span_id,
            parent: None,
        }
    }

    /// The context a downstream hop should receive: same trace, this
    /// hop's span id as the parent.
    pub fn child_of(&self, span_id: u64) -> Self {
        Self {
            trace_id: self.trace_id,
            span_id,
            parent: Some(self.span_id),
        }
    }
}

/// Hex wire form of a trace/span id (`016x`, lowercase).
pub fn id_hex(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a wire id: exactly 16 lowercase-insensitive hex digits,
/// nonzero (the zero id is "absent", as in W3C `traceparent`).
pub fn parse_id(text: &str) -> Option<u64> {
    if text.len() != 16 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    match u64::from_str_radix(text, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

/// One instance's record of one request inside a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Trace this record belongs to.
    pub trace_id: u64,
    /// This request's span id.
    pub span_id: u64,
    /// Span id of the calling hop (`None` at the trace root).
    pub parent: Option<u64>,
    /// What ran (`POST /v1/experiments/fig2/run`, `job sweep1`, …).
    pub name: String,
    /// Instance that recorded it (`host:port`).
    pub instance: String,
    /// The instance-local `X-Request-Id`.
    pub request_id: String,
    /// Wall-clock seconds when the request finished.
    pub unix_s: f64,
    /// Wall time of the whole request on this instance.
    pub total_s: f64,
    /// HTTP status the request answered with (0 for async jobs).
    pub status: u16,
    /// The captured span tree.
    pub roots: Vec<SpanNode>,
}

impl TraceRecord {
    /// Appends this record as a flat JSON object (no children member).
    pub fn push_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"trace_id\":\"{}\",\"span_id\":\"{}\"",
            id_hex(self.trace_id),
            id_hex(self.span_id)
        ));
        if let Some(parent) = self.parent {
            out.push_str(&format!(",\"parent\":\"{}\"", id_hex(parent)));
        }
        out.push_str(",\"name\":");
        json_escape(&self.name, out);
        out.push_str(",\"instance\":");
        json_escape(&self.instance, out);
        out.push_str(",\"request_id\":");
        json_escape(&self.request_id, out);
        out.push_str(&format!(
            ",\"unix_s\":{},\"total_s\":{},\"status\":{},\"spans\":[",
            json_num(self.unix_s),
            json_num(self.total_s),
            self.status
        ));
        for (i, root) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            root.push_json(out);
        }
        out.push_str("]}");
    }
}

struct StoredRecord {
    record: Arc<TraceRecord>,
    stored: Instant,
}

/// Bounded TTL ring of recent [`TraceRecord`]s, oldest evicted first.
pub struct TraceStore {
    capacity: usize,
    ttl: Duration,
    entries: Mutex<VecDeque<StoredRecord>>,
}

impl TraceStore {
    /// A store keeping at most `capacity` records for at most `ttl`.
    pub fn new(capacity: usize, ttl: Duration) -> Self {
        Self {
            capacity: capacity.max(1),
            ttl,
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Stores one record, evicting expired then oldest entries.
    pub fn record(&self, record: TraceRecord) {
        let mut entries = self.entries.lock().expect("trace store poisoned");
        let now = Instant::now();
        entries.retain(|e| now.duration_since(e.stored) <= self.ttl);
        entries.push_back(StoredRecord {
            record: Arc::new(record),
            stored: now,
        });
        while entries.len() > self.capacity {
            entries.pop_front();
        }
    }

    /// Every live record of one trace, in arrival order.
    pub fn get(&self, trace_id: u64) -> Vec<Arc<TraceRecord>> {
        let entries = self.entries.lock().expect("trace store poisoned");
        let now = Instant::now();
        entries
            .iter()
            .filter(|e| now.duration_since(e.stored) <= self.ttl)
            .filter(|e| e.record.trace_id == trace_id)
            .map(|e| Arc::clone(&e.record))
            .collect()
    }

    /// Live records currently held (expired entries excluded).
    pub fn len(&self) -> usize {
        let entries = self.entries.lock().expect("trace store poisoned");
        let now = Instant::now();
        entries
            .iter()
            .filter(|e| now.duration_since(e.stored) <= self.ttl)
            .count()
    }

    /// Whether no live record is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Renders one trace's records — local and peer-collected — as one
/// line of JSON: a flat `records` array (arrival order preserved) plus
/// a `tree` nesting each record under the record whose span id matches
/// its parent. Records whose parent is absent from the set (or cyclic)
/// surface as additional roots rather than vanishing.
pub fn render_trace_json(trace_id: u64, records: &[Arc<TraceRecord>]) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "{{\"schema\":1,\"kind\":\"trace\",\"trace_id\":\"{}\",\"records\":[",
        id_hex(trace_id)
    ));
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        r.push_json(&mut out);
    }
    out.push_str("],\"tree\":[");

    // Link children to parents by span id; a record is a root when its
    // parent span id is not present among the records.
    let ids: Vec<u64> = records.iter().map(|r| r.span_id).collect();
    let mut placed = vec![false; records.len()];
    let mut first = true;
    for (i, r) in records.iter().enumerate() {
        let is_root = match r.parent {
            None => true,
            Some(p) => !ids.contains(&p) || p == r.span_id,
        };
        if is_root && !placed[i] {
            if !first {
                out.push(',');
            }
            first = false;
            push_tree_node(records, i, &mut placed, &mut out);
        }
    }
    // Cycles (malformed parentage) leave records unplaced; surface them
    // as extra roots so nothing silently disappears.
    for i in 0..records.len() {
        if !placed[i] {
            if !first {
                out.push(',');
            }
            first = false;
            push_tree_node(records, i, &mut placed, &mut out);
        }
    }
    out.push_str("]}\n");
    out
}

fn push_tree_node(
    records: &[Arc<TraceRecord>],
    index: usize,
    placed: &mut [bool],
    out: &mut String,
) {
    placed[index] = true;
    let r = &records[index];
    // Re-render the flat object, swapping the closing brace for a
    // children member.
    let mut flat = String::new();
    r.push_json(&mut flat);
    flat.pop(); // '}'
    out.push_str(&flat);
    out.push_str(",\"children\":[");
    let mut first = true;
    for (j, candidate) in records.iter().enumerate() {
        if !placed[j] && candidate.parent == Some(r.span_id) {
            if !first {
                out.push(',');
            }
            first = false;
            push_tree_node(records, j, placed, out);
        }
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(span_id: u64, parent: Option<u64>, name: &str, instance: &str) -> TraceRecord {
        TraceRecord {
            trace_id: 0xabc,
            span_id,
            parent,
            name: name.to_string(),
            instance: instance.to_string(),
            request_id: format!("rid-{span_id}"),
            unix_s: 1_700_000_000.0,
            total_s: 0.25,
            status: 200,
            roots: vec![SpanNode {
                name: "serve.request".to_string(),
                count: 1,
                total_s: 0.25,
                children: Vec::new(),
            }],
        }
    }

    #[test]
    fn ids_round_trip_through_hex_and_reject_junk() {
        assert_eq!(id_hex(0xdeadbeef), "00000000deadbeef");
        assert_eq!(parse_id("00000000deadbeef"), Some(0xdeadbeef));
        assert_eq!(parse_id("00000000DEADBEEF"), Some(0xdeadbeef));
        assert_eq!(parse_id("0000000000000000"), None, "zero id is absent");
        assert_eq!(parse_id("deadbeef"), None, "must be 16 digits");
        assert_eq!(parse_id("00000000deadbeeg"), None);
        assert_eq!(parse_id(""), None);
        let ctx = TraceContext::root(7, 9);
        let child = ctx.child_of(11);
        assert_eq!(child.trace_id, 7);
        assert_eq!(child.parent, Some(9));
    }

    #[test]
    fn store_is_bounded_and_expires_by_ttl() {
        let store = TraceStore::new(3, Duration::from_secs(60));
        for span_id in 1..=5u64 {
            store.record(record(span_id, None, "r", "a:1"));
        }
        let live = store.get(0xabc);
        assert_eq!(live.len(), 3, "ring must cap at capacity");
        assert_eq!(live[0].span_id, 3, "oldest records evicted first");
        assert!(store.get(0xdef).is_empty(), "other trace ids stay empty");

        let expiring = TraceStore::new(8, Duration::from_millis(5));
        expiring.record(record(1, None, "r", "a:1"));
        assert_eq!(expiring.len(), 1);
        std::thread::sleep(Duration::from_millis(20));
        assert!(expiring.is_empty(), "TTL must expire records");
        assert!(expiring.get(0xabc).is_empty());
    }

    #[test]
    fn tree_nests_remote_children_under_the_ingress_record() {
        let records = vec![
            Arc::new(record(1, None, "POST /v1/experiments/fig2/run", "a:1")),
            Arc::new(record(2, Some(1), "POST /v1/experiments/fig2/run", "b:2")),
        ];
        let json = render_trace_json(0xabc, &records);
        assert_eq!(json.lines().count(), 1);
        assert!(
            json.starts_with("{\"schema\":1,\"kind\":\"trace\",\"trace_id\":\"0000000000000abc\"")
        );
        // Flat list keeps both; tree nests the owner hop under ingress.
        assert_eq!(json.matches("\"instance\":\"b:2\"").count(), 2, "{json}");
        let tree = json.split("\"tree\":[").nth(1).expect("tree member");
        let ingress = tree.find("\"instance\":\"a:1\"").expect("ingress in tree");
        let owner = tree.find("\"instance\":\"b:2\"").expect("owner in tree");
        assert!(
            owner > ingress,
            "owner record must nest under ingress: {tree}"
        );
        assert!(
            tree.contains("\"children\":[{\"trace_id\""),
            "ingress must have a child record: {tree}"
        );
    }

    #[test]
    fn orphans_and_cycles_surface_as_roots() {
        // Parent span 99 was evicted: the child still renders, as root.
        let orphan = vec![Arc::new(record(2, Some(99), "r", "b:2"))];
        let json = render_trace_json(0xabc, &orphan);
        assert!(json.contains("\"tree\":[{\"trace_id\""), "{json}");

        // A two-cycle: both placed, neither lost.
        let cyclic = vec![
            Arc::new(record(1, Some(2), "r", "a:1")),
            Arc::new(record(2, Some(1), "r", "b:2")),
        ];
        let json = render_trace_json(0xabc, &cyclic);
        let tree = json.split("\"tree\":[").nth(1).unwrap();
        assert_eq!(tree.matches("\"request_id\"").count(), 2, "{tree}");
    }
}
