//! A validator for the Prometheus text exposition format.
//!
//! The serve layer speaks this format on `/v1/metrics`; this module is
//! the `check-json` equivalent for it, wired into CI via
//! `repro check-metrics`. Checks:
//!
//! * every sample belongs to a family with both `# HELP` and `# TYPE`
//!   declared before its first sample;
//! * `# HELP`/`# TYPE` appear at most once per family, with a known
//!   type;
//! * no duplicate series (same name and label set);
//! * every value parses as a float;
//! * histogram families are internally consistent: a `+Inf` bucket
//!   exists, bucket counts are cumulative (non-decreasing by `le`),
//!   and `_count` equals the `+Inf` bucket.

use std::collections::{BTreeMap, HashMap, HashSet};

/// What a successful validation saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Families with a `# TYPE` declaration.
    pub families: usize,
    /// Total sample lines.
    pub samples: usize,
}

#[derive(Debug, Default)]
struct Family {
    help: bool,
    kind: Option<String>,
    samples: usize,
    /// Histogram bookkeeping: `le` → cumulative count, plus `_count`.
    buckets: BTreeMap<String, f64>,
    count_sample: Option<f64>,
    has_sum: bool,
}

/// Validates `text` as Prometheus exposition output.
///
/// # Errors
///
/// Returns `"line N: …"` describing the first violation.
pub fn validate(text: &str) -> Result<Summary, String> {
    let mut families: HashMap<String, Family> = HashMap::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    let mut samples = 0usize;

    for (idx, line) in text.lines().enumerate() {
        let ln = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl.split_whitespace().next().unwrap_or_default();
                check_name(name).map_err(|e| format!("line {ln}: {e}"))?;
                let fam = families.entry(name.to_string()).or_default();
                if fam.help {
                    return Err(format!("line {ln}: duplicate # HELP for {name}"));
                }
                if fam.samples > 0 {
                    return Err(format!("line {ln}: # HELP for {name} after its samples"));
                }
                fam.help = true;
            } else if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().unwrap_or_default();
                let kind = parts.next().unwrap_or_default();
                check_name(name).map_err(|e| format!("line {ln}: {e}"))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!(
                        "line {ln}: unknown metric type {kind:?} for {name}"
                    ));
                }
                let fam = families.entry(name.to_string()).or_default();
                if fam.kind.is_some() {
                    return Err(format!("line {ln}: duplicate # TYPE for {name}"));
                }
                if fam.samples > 0 {
                    return Err(format!("line {ln}: # TYPE for {name} after its samples"));
                }
                fam.kind = Some(kind.to_string());
            }
            // Other comments are legal and ignored.
            continue;
        }

        let (name, labels, value) = parse_sample(line).map_err(|e| format!("line {ln}: {e}"))?;
        samples += 1;
        let family_name = family_of(&name, &families);
        let fam = families.get_mut(&family_name).ok_or_else(|| {
            format!("line {ln}: sample {name} has no # HELP/# TYPE for {family_name}")
        })?;
        if !fam.help || fam.kind.is_none() {
            return Err(format!(
                "line {ln}: family {family_name} is missing {} before its samples",
                if fam.help { "# TYPE" } else { "# HELP" }
            ));
        }
        fam.samples += 1;
        let series = format!("{name}{{{}}}", canonical_labels(&labels));
        if !seen_series.insert(series) {
            return Err(format!("line {ln}: duplicate series {name} {labels:?}"));
        }
        if fam.kind.as_deref() == Some("histogram") {
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| format!("line {ln}: {name} sample without an le label"))?;
                fam.buckets.insert(le, value);
            } else if name.ends_with("_count") {
                fam.count_sample = Some(value);
            } else if name.ends_with("_sum") {
                fam.has_sum = true;
            }
        }
    }

    // Cross-line histogram consistency.
    for (name, fam) in &families {
        if fam.kind.as_deref() != Some("histogram") || fam.samples == 0 {
            continue;
        }
        let inf = fam
            .buckets
            .get("+Inf")
            .copied()
            .ok_or_else(|| format!("histogram {name} has no +Inf bucket"))?;
        if !fam.has_sum {
            return Err(format!("histogram {name} has no _sum sample"));
        }
        match fam.count_sample {
            Some(c) if c == inf => {}
            Some(c) => return Err(format!("histogram {name}: _count {c} != +Inf bucket {inf}")),
            None => return Err(format!("histogram {name} has no _count sample")),
        }
        // Buckets must be cumulative in increasing le order.
        let mut finite: Vec<(f64, f64)> = Vec::new();
        for (le, count) in &fam.buckets {
            if le == "+Inf" {
                continue;
            }
            let le: f64 = le
                .parse()
                .map_err(|_| format!("histogram {name}: unparseable le {le:?}"))?;
            finite.push((le, *count));
        }
        finite.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut prev = 0.0;
        for (le, count) in &finite {
            if *count < prev {
                return Err(format!(
                    "histogram {name}: bucket le={le} count {count} < previous {prev} (not cumulative)"
                ));
            }
            prev = *count;
        }
        if inf < prev {
            return Err(format!(
                "histogram {name}: +Inf bucket {inf} below last finite bucket {prev}"
            ));
        }
    }

    Ok(Summary {
        families: families.values().filter(|f| f.kind.is_some()).count(),
        samples,
    })
}

/// Maps a sample name onto its family: histogram samples use the
/// `_bucket`/`_sum`/`_count` suffixes of a declared histogram family.
fn family_of(name: &str, families: &HashMap<String, Family>) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if families
                .get(stem)
                .is_some_and(|f| f.kind.as_deref() == Some("histogram"))
            {
                return stem.to_string();
            }
        }
    }
    name.to_string()
}

fn check_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    if !ok_first
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("invalid metric name {name:?}"));
    }
    Ok(())
}

type Sample = (String, Vec<(String, String)>, f64);

fn parse_sample(line: &str) -> Result<Sample, String> {
    let line = line.trim();
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .ok_or_else(|| format!("sample line {line:?} has no value"))?;
    let name = &line[..name_end];
    check_name(name)?;
    let mut labels = Vec::new();
    let rest = if line[name_end..].starts_with('{') {
        let close = line[name_end..]
            .find('}')
            .ok_or_else(|| format!("unterminated label set in {line:?}"))?;
        parse_labels(&line[name_end + 1..name_end + close], &mut labels)?;
        &line[name_end + close + 1..]
    } else {
        &line[name_end..]
    };
    let mut parts = rest.split_whitespace();
    let value = parts
        .next()
        .ok_or_else(|| format!("sample {name} has no value"))?;
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse()
            .map_err(|_| format!("sample {name} has unparseable value {v:?}"))?,
    };
    // An optional timestamp may follow; anything further is garbage.
    if parts.next().is_some() && parts.next().is_some() {
        return Err(format!("trailing garbage after sample {name}"));
    }
    Ok((name.to_string(), labels, value))
}

/// Parses `k="v",k2="v2"`. Escapes (`\\`, `\"`, `\n`) are unwound; a
/// label set containing `}` inside a value is out of scope for the
/// registry's own output and rejected upstream by the `find('}')`.
fn parse_labels(body: &str, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {body:?}"))?;
        let key = rest[..eq].trim().to_string();
        check_name(&key).map_err(|_| format!("invalid label name {key:?}"))?;
        let after = rest[eq + 1..].trim_start();
        if !after.starts_with('"') {
            return Err(format!("label {key} value is not quoted"));
        }
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return Err(format!("dangling escape in label {key}")),
                },
                '"' => {
                    consumed = Some(i + 2); // opening quote + body + closing
                    break;
                }
                c => value.push(c),
            }
        }
        let consumed = consumed.ok_or_else(|| format!("unterminated label value for {key}"))?;
        out.push((key, value));
        rest = after[consumed..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected ',' between labels in {body:?}"));
        }
    }
    Ok(())
}

fn canonical_labels(labels: &[(String, String)]) -> String {
    let mut sorted: Vec<_> = labels.iter().collect();
    sorted.sort();
    sorted
        .iter()
        .map(|(k, v)| format!("{k}={v:?}"))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# HELP demo_total requests seen\n\
# TYPE demo_total counter\n\
demo_total 5\n\
demo_total{status=\"404\"} 1\n\
# HELP demo_seconds latency\n\
# TYPE demo_seconds histogram\n\
demo_seconds_bucket{le=\"0.1\"} 2\n\
demo_seconds_bucket{le=\"1\"} 3\n\
demo_seconds_bucket{le=\"+Inf\"} 4\n\
demo_seconds_sum 2.5\n\
demo_seconds_count 4\n";

    #[test]
    fn accepts_a_well_formed_exposition() {
        let summary = validate(GOOD).expect("good exposition must pass");
        assert_eq!(
            summary,
            Summary {
                families: 2,
                samples: 7
            }
        );
    }

    #[test]
    fn missing_help_or_type_is_rejected() {
        let err = validate("# TYPE x counter\nx 1\n").unwrap_err();
        assert!(err.contains("# HELP"), "{err}");
        let err = validate("# HELP x h\nx 1\n").unwrap_err();
        assert!(
            err.contains("no # HELP/# TYPE") || err.contains("# TYPE"),
            "{err}"
        );
        let err = validate("naked_sample 1\n").unwrap_err();
        assert!(err.contains("naked_sample"), "{err}");
    }

    #[test]
    fn duplicate_series_and_declarations_are_rejected() {
        let err = validate("# HELP x h\n# TYPE x counter\nx 1\nx 2\n").unwrap_err();
        assert!(err.contains("duplicate series"), "{err}");
        let dup_label = "# HELP x h\n# TYPE x counter\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n";
        assert!(validate(dup_label)
            .unwrap_err()
            .contains("duplicate series"));
        // Same name, different labels: fine.
        let distinct = "# HELP x h\n# TYPE x counter\nx{a=\"1\"} 1\nx{a=\"2\"} 2\n";
        validate(distinct).expect("distinct label sets are distinct series");
        let err = validate("# HELP x h\n# HELP x h\n").unwrap_err();
        assert!(err.contains("duplicate # HELP"), "{err}");
        let err = validate("# TYPE x counter\n# TYPE x gauge\n").unwrap_err();
        assert!(err.contains("duplicate # TYPE"), "{err}");
    }

    #[test]
    fn histogram_consistency_is_enforced() {
        let no_inf = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate(no_inf).unwrap_err().contains("+Inf"));
        let non_cumulative = "# HELP h x\n# TYPE h histogram\n\
            h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
            h_sum 1\nh_count 5\n";
        assert!(validate(non_cumulative)
            .unwrap_err()
            .contains("not cumulative"));
        let bad_count = "# HELP h x\n# TYPE h histogram\n\
            h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n";
        assert!(validate(bad_count).unwrap_err().contains("_count"));
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let err = validate("# HELP x h\n# TYPE x counter\nx notanumber\n").unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
        let err = validate("# TYPE x wat\n").unwrap_err();
        assert!(err.contains("unknown metric type"), "{err}");
        let err = validate("# HELP 2bad h\n").unwrap_err();
        assert!(err.contains("invalid metric name"), "{err}");
    }
}
