//! Deterministic fault injection for peer-facing paths.
//!
//! Fault tolerance that is only exercised by real outages is hope, not
//! engineering. This module injects the four failure shapes a fleet hop
//! actually meets — connection refusal, accept-then-hang, response
//! truncation, and added latency — *deterministically*: every fault
//! decision is a pure function of `(seed, draw index)`, where the draw
//! index is a per-injector atomic counter. Re-running a test with the
//! same seed replays the exact same fault sequence, so the chaos e2e
//! suite asserts hard equalities (bodies, counters, states) instead of
//! probabilistic expectations.
//!
//! Wired in two ways:
//!
//! * `repro serve --chaos "seed=42,refuse=0.2,latency=0.5,latency_ms=25"`
//!   arms the instance's *outbound* peer clients (fill + proxy hops);
//! * in-process tests build a [`ChaosConfig`] directly and hand it to
//!   `FleetConfig::chaos`.
//!
//! Probabilities are stored as integer **per-mille** (`0..=1000`), so the
//! config stays `Eq` like the rest of `FleetConfig` and a spec string
//! round-trips exactly. The background health prober is deliberately
//! *not* subject to chaos: faults model a sick network or peer on the
//! request path, while the prober is the recovery mechanism under test —
//! letting chaos eat probes would make "heals after recovery" unfalsifiable.

use crate::ring::mix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A fault to inject on the next peer operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the connect as if the peer refused (no socket is dialed).
    Refuse,
    /// The peer accepts, then never answers: burn the I/O deadline, then
    /// fail like a read timeout.
    Hang,
    /// The response arrives cut off mid-body: an I/O error after the
    /// bytes were (really) exchanged.
    Truncate,
    /// The hop completes normally, `latency_ms` late.
    Latency,
}

impl Fault {
    /// Lowercase metric/log label.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::Refuse => "refuse",
            Fault::Hang => "hang",
            Fault::Truncate => "truncate",
            Fault::Latency => "latency",
        }
    }
}

/// Parsed `--chaos` spec: per-fault probabilities (per-mille) + seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed of the deterministic draw stream.
    pub seed: u64,
    /// Probability of [`Fault::Refuse`], in 0..=1000 per-mille.
    pub refuse_permille: u32,
    /// Probability of [`Fault::Hang`], per-mille.
    pub hang_permille: u32,
    /// Probability of [`Fault::Truncate`], per-mille.
    pub truncate_permille: u32,
    /// Probability of [`Fault::Latency`], per-mille.
    pub latency_permille: u32,
    /// How late a [`Fault::Latency`] hop completes.
    pub latency_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            refuse_permille: 0,
            hang_permille: 0,
            truncate_permille: 0,
            latency_permille: 0,
            latency_ms: 25,
        }
    }
}

impl ChaosConfig {
    /// Parses the `--chaos` grammar: comma-separated `key=value` pairs.
    ///
    /// Keys: `seed=N` (u64, default 0), `refuse=P`, `hang=P`,
    /// `truncate=P`, `latency=P` (each `P` a probability in `[0, 1]`,
    /// e.g. `0.25`; stored per-mille), `latency_ms=N` (u64 milliseconds,
    /// default 25). Fault probabilities may sum to at most 1.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending key/value.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut config = Self::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec item {part:?} is not key=value"))?;
            match key.trim() {
                "seed" => {
                    config.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("chaos seed {value:?} is not a u64"))?;
                }
                "latency_ms" => {
                    config.latency_ms = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("chaos latency_ms {value:?} is not a u64"))?;
                }
                key @ ("refuse" | "hang" | "truncate" | "latency") => {
                    let p: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("chaos {key} {value:?} is not a probability"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("chaos {key} {value:?} outside [0, 1]"));
                    }
                    let permille = (p * 1000.0).round() as u32;
                    match key {
                        "refuse" => config.refuse_permille = permille,
                        "hang" => config.hang_permille = permille,
                        "truncate" => config.truncate_permille = permille,
                        _ => config.latency_permille = permille,
                    }
                }
                other => return Err(format!("unknown chaos key {other:?}")),
            }
        }
        let total = config.refuse_permille
            + config.hang_permille
            + config.truncate_permille
            + config.latency_permille;
        if total > 1000 {
            return Err(format!("chaos probabilities sum to {}/1000 (> 1)", total));
        }
        Ok(config)
    }

    /// Whether any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.refuse_permille + self.hang_permille + self.truncate_permille + self.latency_permille
            > 0
    }

    /// The canonical spec string (`parse` round-trips it).
    pub fn render(&self) -> String {
        format!(
            "seed={},refuse={},hang={},truncate={},latency={},latency_ms={}",
            self.seed,
            self.refuse_permille as f64 / 1000.0,
            self.hang_permille as f64 / 1000.0,
            self.truncate_permille as f64 / 1000.0,
            self.latency_permille as f64 / 1000.0,
            self.latency_ms
        )
    }
}

/// A seeded fault stream shared by an instance's peer clients.
///
/// Draw `n` maps `mix(seed ⊕ f(n))` into `[0, 1000)` and carves that
/// interval into consecutive bands: `[0, refuse)`, `[refuse,
/// refuse+hang)`, and so on — mutually exclusive faults whose empirical
/// rates converge on the configured probabilities while any single run
/// is exactly reproducible from the seed.
#[derive(Debug)]
pub struct ChaosInjector {
    config: ChaosConfig,
    draws: AtomicU64,
}

impl ChaosInjector {
    /// An injector at draw 0.
    pub fn new(config: ChaosConfig) -> Self {
        Self {
            config,
            draws: AtomicU64::new(0),
        }
    }

    /// The configuration this injector draws from.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Draws the next fault decision (advances the stream by one).
    pub fn next_fault(&self) -> Option<Fault> {
        if !self.config.is_active() {
            return None;
        }
        let n = self.draws.fetch_add(1, Ordering::Relaxed);
        let roll = (mix(self.config.seed ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d)) % 1000) as u32;
        let mut band = self.config.refuse_permille;
        if roll < band {
            return Some(Fault::Refuse);
        }
        band += self.config.hang_permille;
        if roll < band {
            return Some(Fault::Hang);
        }
        band += self.config.truncate_permille;
        if roll < band {
            return Some(Fault::Truncate);
        }
        band += self.config.latency_permille;
        if roll < band {
            return Some(Fault::Latency);
        }
        None
    }

    /// Added latency for [`Fault::Latency`].
    pub fn latency(&self) -> Duration {
        Duration::from_millis(self.config.latency_ms)
    }

    /// How many decisions have been drawn so far.
    pub fn draws(&self) -> u64 {
        self.draws.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let config = ChaosConfig::parse(
            "seed=42, refuse=0.2, hang=0.1, truncate=0.05, latency=0.3, latency_ms=40",
        )
        .unwrap();
        assert_eq!(config.seed, 42);
        assert_eq!(config.refuse_permille, 200);
        assert_eq!(config.hang_permille, 100);
        assert_eq!(config.truncate_permille, 50);
        assert_eq!(config.latency_permille, 300);
        assert_eq!(config.latency_ms, 40);
        assert!(config.is_active());
    }

    #[test]
    fn empty_spec_is_inert() {
        let config = ChaosConfig::parse("").unwrap();
        assert_eq!(config, ChaosConfig::default());
        assert!(!config.is_active());
        assert_eq!(ChaosInjector::new(config).next_fault(), None);
    }

    #[test]
    fn render_round_trips() {
        let config = ChaosConfig::parse("seed=7,refuse=0.25,latency=0.5,latency_ms=10").unwrap();
        assert_eq!(ChaosConfig::parse(&config.render()).unwrap(), config);
    }

    #[test]
    fn bad_specs_name_the_problem() {
        assert!(ChaosConfig::parse("refuse")
            .unwrap_err()
            .contains("key=value"));
        assert!(ChaosConfig::parse("refuse=2")
            .unwrap_err()
            .contains("[0, 1]"));
        assert!(ChaosConfig::parse("refuse=x")
            .unwrap_err()
            .contains("probability"));
        assert!(ChaosConfig::parse("seed=-1").unwrap_err().contains("u64"));
        assert!(ChaosConfig::parse("bogus=1").unwrap_err().contains("bogus"));
        assert!(ChaosConfig::parse("refuse=0.6,hang=0.6")
            .unwrap_err()
            .contains("sum"));
    }

    #[test]
    fn same_seed_replays_the_same_fault_sequence() {
        let config = ChaosConfig::parse("seed=9,refuse=0.3,hang=0.2,latency=0.2").unwrap();
        let a = ChaosInjector::new(config);
        let b = ChaosInjector::new(config);
        let sequence_a: Vec<_> = (0..200).map(|_| a.next_fault()).collect();
        let sequence_b: Vec<_> = (0..200).map(|_| b.next_fault()).collect();
        assert_eq!(sequence_a, sequence_b);
        // And a different seed diverges somewhere in 200 draws.
        let c = ChaosInjector::new(ChaosConfig { seed: 10, ..config });
        let sequence_c: Vec<_> = (0..200).map(|_| c.next_fault()).collect();
        assert_ne!(sequence_a, sequence_c);
    }

    #[test]
    fn empirical_rates_track_the_config() {
        let config = ChaosConfig::parse("seed=1,refuse=0.5").unwrap();
        let injector = ChaosInjector::new(config);
        let refused = (0..2000)
            .filter(|_| injector.next_fault() == Some(Fault::Refuse))
            .count();
        assert!(
            (800..1200).contains(&refused),
            "refuse=0.5 fired {refused}/2000 times"
        );
    }

    #[test]
    fn certain_fault_always_fires() {
        let config = ChaosConfig::parse("refuse=1.0").unwrap();
        let injector = ChaosInjector::new(config);
        for _ in 0..50 {
            assert_eq!(injector.next_fault(), Some(Fault::Refuse));
        }
    }
}
