//! `cnt-fleet` — federation primitives for running N `cnt-serve`
//! instances as one logical service.
//!
//! The serve layer's caches are per-instance: the LRU body cache and the
//! 256-way sharded sweep disk cache both key on `Params::content_hash`,
//! so N independent instances each warm their own copy of every popular
//! entry. This crate supplies the three pieces that turn that duplication
//! into partitioning, without introducing any coordination service:
//!
//! | module | piece | role |
//! |--------|-------|------|
//! | [`ring`] | [`HashRing`] | static rendezvous-hash map from the 256 cache shards to owning instances |
//! | [`peer`] | [`PeerClient`] | fail-fast blocking HTTP client (pooled keep-alive sockets) for proxy hops, cache-fill probes, and health probes |
//! | [`health`] | [`FleetHealth`] | Up → Suspect → Down failure detector + backoff re-probe schedule |
//! | [`retry`] | [`RetryPolicy`] | unified attempts/backoff/jitter policy for every peer operation |
//! | [`chaos`] | [`ChaosInjector`] | deterministic seeded fault injection on peer-facing paths |
//! | [`jobs`] | [`JobTable`] | bounded, TTL-GC'd registry backing the async `POST /v1/sweeps/{id}` job API |
//! | [`fanout`] | [`ChunkBoard`] | per-chunk dispatch/steal/requeue scoreboard for fleet-wide sweep fan-out |
//! | [`journal`] | [`journal::Journal`] | append-only checksummed job journal for crash-safe coordinators |
//!
//! Topology is a static ordered peer list (`--fleet "a,b,c" --self-index
//! K`): every instance derives the identical shard table from the same
//! list, so request routing needs no gossip, no leases — only the local
//! failure detector in [`health`]. A dead peer degrades: after
//! `HealthPolicy::down_after` consecutive transport failures the router
//! skips it entirely (local compute, zero added latency) while a
//! background prober re-checks it on exponential backoff and restores
//! it to Up on the first success.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod fanout;
pub mod health;
pub mod jobs;
pub mod journal;
pub mod peer;
pub mod retry;
pub mod ring;

pub use chaos::{ChaosConfig, ChaosInjector, Fault};
pub use fanout::{ChunkBoard, ChunkClaim};
pub use health::{FleetHealth, HealthPolicy, PeerState, Transition};
pub use jobs::{JobBody, JobEntry, JobState, JobTable};
pub use peer::{PeerClient, PeerError, PeerResponse};
pub use retry::RetryPolicy;
pub use ring::HashRing;

use std::time::Duration;

/// How a non-owning instance forwards a run request to the shard owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteMode {
    /// Fetch from the owner server-side and relay the response body.
    Proxy,
    /// Answer `307 Temporary Redirect` with the owner's URL and let the
    /// client re-issue the request.
    Redirect,
}

/// Static fleet topology plus the timeouts of intra-fleet hops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Ordered peer addresses (`host:port`), identical on every instance.
    pub peers: Vec<String>,
    /// This instance's index into `peers`.
    pub self_index: usize,
    /// What a non-owner does with a request it does not own.
    pub mode: RouteMode,
    /// TCP connect budget for any peer hop.
    pub connect_timeout: Duration,
    /// Read/write budget for a cache-fill probe (cheap, must fail fast).
    pub fill_timeout: Duration,
    /// Read/write budget for a full proxied run (the owner may compute).
    pub proxy_timeout: Duration,
    /// Failure-detector and re-probe tunables.
    pub health: HealthPolicy,
    /// Deterministic fault injection on this instance's outbound peer
    /// hops (`None` in production).
    pub chaos: Option<ChaosConfig>,
}

impl FleetConfig {
    /// A proxy-mode topology with production-shaped timeouts.
    pub fn new(peers: Vec<String>, self_index: usize) -> Self {
        Self {
            peers,
            self_index,
            mode: RouteMode::Proxy,
            connect_timeout: Duration::from_millis(200),
            fill_timeout: Duration::from_millis(500),
            proxy_timeout: Duration::from_secs(10),
            health: HealthPolicy::default(),
            chaos: None,
        }
    }

    /// Checks the topology is internally consistent.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the peer list is empty, has
    /// more members than shards (256), holds an empty or duplicate
    /// address, or `self_index` is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.peers.is_empty() {
            return Err("fleet peer list is empty".to_string());
        }
        if self.peers.len() > 256 {
            return Err(format!(
                "fleet has {} peers but only 256 shards",
                self.peers.len()
            ));
        }
        if let Some(blank) = self.peers.iter().position(|p| p.trim().is_empty()) {
            return Err(format!("fleet peer #{blank} is an empty address"));
        }
        // Duplicate addresses would silently split one instance's shards
        // across two ring slots (and self-probe as a "peer"): reject at
        // startup instead of misrouting at runtime.
        for (i, peer) in self.peers.iter().enumerate() {
            if let Some(j) = self.peers[..i].iter().position(|p| p.trim() == peer.trim()) {
                return Err(format!(
                    "fleet peer #{i} duplicates peer #{j} ('{}') — every --fleet address must be unique",
                    peer.trim()
                ));
            }
        }
        if self.self_index >= self.peers.len() {
            return Err(format!(
                "--self-index {} out of range for {} peers",
                self.self_index,
                self.peers.len()
            ));
        }
        Ok(())
    }

    /// The address of the peer at `index`.
    pub fn peer(&self, index: usize) -> &str {
        &self.peers[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: usize, self_index: usize) -> FleetConfig {
        FleetConfig::new(
            (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect(),
            self_index,
        )
    }

    #[test]
    fn valid_topologies_pass() {
        assert_eq!(config(3, 0).validate(), Ok(()));
        assert_eq!(config(3, 2).validate(), Ok(()));
        assert_eq!(config(1, 0).validate(), Ok(()));
    }

    #[test]
    fn bad_topologies_name_the_problem() {
        assert!(config(0, 0).validate().unwrap_err().contains("empty"));
        assert!(config(3, 3)
            .validate()
            .unwrap_err()
            .contains("out of range"));
        let mut blank = config(3, 0);
        blank.peers[1] = "  ".to_string();
        assert!(blank.validate().unwrap_err().contains("peer #1"));
        let too_many = config(300, 0);
        assert!(too_many.validate().unwrap_err().contains("256"));
    }

    #[test]
    fn duplicate_peer_addresses_are_rejected() {
        let mut dup = config(3, 0);
        dup.peers[2] = dup.peers[0].clone();
        let err = dup.validate().unwrap_err();
        assert!(err.contains("peer #2"), "{err}");
        assert!(err.contains("duplicates peer #0"), "{err}");
        assert!(err.contains("127.0.0.1:9000"), "{err}");
        // Whitespace variants of the same address are still duplicates.
        let mut padded = config(2, 0);
        padded.peers[1] = format!(" {} ", padded.peers[0]);
        assert!(padded.validate().is_err());
    }
}
