//! Health-checked fleet membership: the `Up → Suspect → Down` state
//! machine and the backoff schedule behind the re-probe thread.
//!
//! PR 7's fleet rediscovered a dead owner by timing out on *every*
//! request routed to it — a single dead instance added two connect
//! timeouts to 1/N of all traffic, forever. This module gives the
//! router a cheap membership view instead:
//!
//! * every peer starts **Up**;
//! * a transport failure on a fill/proxy hop moves it to **Suspect**
//!   (still routable — one flaky hop must not eject a healthy peer);
//! * `down_after` (K) *consecutive* failures move it to **Down**, at
//!   which point the router skips the peer entirely and degrades to
//!   local compute — zero added latency on the hot path;
//! * a background prober re-checks Down peers via `GET /v1/healthz` on
//!   exponential backoff with deterministic seeded jitter
//!   ([`crate::retry::jittered`]), restoring them to Up on the first
//!   success. Any hot-path success also restores Up instantly.
//!
//! The state machine is time-driven only for the probe schedule; all
//! transitions take an explicit `Instant`, so tests replay scenarios
//! without sleeping. Self (`self_index`) is pinned Up — an instance
//! never declares itself dead.

use crate::retry::jittered;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A peer's membership state as seen by the local router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Healthy: routable, no recent consecutive failures.
    Up,
    /// One or more recent consecutive transport failures, but fewer than
    /// K: still routable, one success away from Up.
    Suspect,
    /// K consecutive failures: skipped by routing until a background
    /// probe succeeds.
    Down,
}

impl PeerState {
    /// Lowercase wire/metric label: `"up"`, `"suspect"`, `"down"`.
    pub fn label(&self) -> &'static str {
        match self {
            PeerState::Up => "up",
            PeerState::Suspect => "suspect",
            PeerState::Down => "down",
        }
    }

    /// All states, in gauge-rendering order.
    pub const ALL: [PeerState; 3] = [PeerState::Up, PeerState::Suspect, PeerState::Down];
}

/// Tunables of the failure detector and the re-probe schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive transport failures before a peer goes Down (K).
    pub down_after: u32,
    /// Backoff before the first re-probe of a Down peer.
    pub probe_base: Duration,
    /// Ceiling on the (pre-jitter) probe backoff.
    pub probe_cap: Duration,
    /// Seed for the deterministic probe jitter.
    pub jitter_seed: u64,
}

impl Default for HealthPolicy {
    /// K = 3 failures; probes at ~250 ms doubling to a 5 s ceiling — a
    /// restarted peer is rediscovered in well under the cap, while a
    /// long-dead one costs one cheap probe per ~5 s off the hot path.
    fn default() -> Self {
        Self {
            down_after: 3,
            probe_base: Duration::from_millis(250),
            probe_cap: Duration::from_secs(5),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// A state transition the caller should surface (metrics, logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Peer index the transition happened on.
    pub peer: usize,
    /// State before.
    pub from: PeerState,
    /// State after (always different from `from`).
    pub to: PeerState,
}

#[derive(Debug, Clone)]
struct PeerRecord {
    state: PeerState,
    consecutive_failures: u32,
    /// Probe round since going Down (exponent of the backoff schedule).
    probe_round: u64,
    /// When the next background probe is due (`None` unless Down).
    next_probe_at: Option<Instant>,
}

impl PeerRecord {
    fn new() -> Self {
        Self {
            state: PeerState::Up,
            consecutive_failures: 0,
            probe_round: 0,
            next_probe_at: None,
        }
    }
}

/// Shared, thread-safe health table over a fleet's peer list.
///
/// The router calls [`record_failure`](FleetHealth::record_failure) /
/// [`record_success`](FleetHealth::record_success) from request threads;
/// the prober thread calls [`due_probes`](FleetHealth::due_probes) and
/// reports outcomes. One mutex over a small `Vec` — every operation is
/// a few comparisons, far off any contention radar.
#[derive(Debug)]
pub struct FleetHealth {
    policy: HealthPolicy,
    self_index: usize,
    peers: Mutex<Vec<PeerRecord>>,
}

impl FleetHealth {
    /// A table of `n` peers, all Up, with `self_index` pinned Up forever.
    pub fn new(n: usize, self_index: usize, policy: HealthPolicy) -> Self {
        Self {
            policy,
            self_index,
            peers: Mutex::new(vec![PeerRecord::new(); n]),
        }
    }

    /// The detector's policy (read-only).
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Current state of peer `index`.
    pub fn state(&self, index: usize) -> PeerState {
        self.peers.lock().unwrap()[index].state
    }

    /// Whether the router may target peer `index` (everything but Down).
    pub fn is_routable(&self, index: usize) -> bool {
        self.state(index) != PeerState::Down
    }

    /// Consecutive-failure count of peer `index` (0 when Up).
    pub fn consecutive_failures(&self, index: usize) -> u32 {
        self.peers.lock().unwrap()[index].consecutive_failures
    }

    /// `(state, consecutive_failures)` for every peer — one lock for a
    /// whole gauge/healthz refresh.
    pub fn snapshot(&self) -> Vec<(PeerState, u32)> {
        self.peers
            .lock()
            .unwrap()
            .iter()
            .map(|p| (p.state, p.consecutive_failures))
            .collect()
    }

    /// Records a transport failure on a hot-path hop to peer `index` at
    /// `now`. Returns the transition if the state changed.
    pub fn record_failure(&self, index: usize, now: Instant) -> Option<Transition> {
        if index == self.self_index {
            return None;
        }
        let mut peers = self.peers.lock().unwrap();
        let peer = &mut peers[index];
        peer.consecutive_failures = peer.consecutive_failures.saturating_add(1);
        let from = peer.state;
        let to = if peer.consecutive_failures >= self.policy.down_after {
            PeerState::Down
        } else {
            PeerState::Suspect
        };
        if to == PeerState::Down && from != PeerState::Down {
            peer.probe_round = 0;
            peer.next_probe_at = Some(now + self.probe_delay(index, 0));
        }
        peer.state = to;
        (from != to).then_some(Transition {
            peer: index,
            from,
            to,
        })
    }

    /// Records a successful hot-path hop (any parsed HTTP response) to
    /// peer `index`. Returns the transition if the state changed.
    pub fn record_success(&self, index: usize) -> Option<Transition> {
        let mut peers = self.peers.lock().unwrap();
        let peer = &mut peers[index];
        let from = peer.state;
        peer.consecutive_failures = 0;
        peer.probe_round = 0;
        peer.next_probe_at = None;
        peer.state = PeerState::Up;
        (from != PeerState::Up).then_some(Transition {
            peer: index,
            from,
            to: PeerState::Up,
        })
    }

    /// Down peers whose next probe is due at `now` — the prober's work
    /// list. Claiming is implicit: a due peer's next probe is pushed one
    /// backoff round out, so concurrent callers never double-probe.
    pub fn due_probes(&self, now: Instant) -> Vec<usize> {
        let mut peers = self.peers.lock().unwrap();
        let mut due = Vec::new();
        for (index, peer) in peers.iter_mut().enumerate() {
            if peer.state == PeerState::Down {
                if let Some(at) = peer.next_probe_at {
                    if at <= now {
                        peer.probe_round = peer.probe_round.saturating_add(1);
                        let delay = self.probe_delay(index, peer.probe_round);
                        peer.next_probe_at = Some(now + delay);
                        due.push(index);
                    }
                }
            }
        }
        due
    }

    /// Reports a background-probe success: the peer returns to Up.
    pub fn probe_succeeded(&self, index: usize) -> Option<Transition> {
        self.record_success(index)
    }

    /// When the *earliest* pending probe is due, if any peer is Down —
    /// lets the prober sleep precisely instead of polling.
    pub fn next_probe_due(&self) -> Option<Instant> {
        self.peers
            .lock()
            .unwrap()
            .iter()
            .filter_map(|p| p.next_probe_at)
            .min()
    }

    /// The jittered backoff delay before probe `round` of peer `index`:
    /// `min(base * 2^round, cap)` scaled into `[0.5, 1.0)`.
    fn probe_delay(&self, index: usize, round: u64) -> Duration {
        let exp = round.min(20) as u32;
        let raw = self
            .policy
            .probe_base
            .saturating_mul(1u32 << exp)
            .min(self.policy.probe_cap.max(self.policy.probe_base));
        jittered(raw, self.policy.jitter_seed, index as u64, round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            down_after: 3,
            probe_base: Duration::from_millis(100),
            probe_cap: Duration::from_millis(800),
            jitter_seed: 42,
        }
    }

    #[test]
    fn peers_start_up_and_routable() {
        let health = FleetHealth::new(3, 0, policy());
        for i in 0..3 {
            assert_eq!(health.state(i), PeerState::Up);
            assert!(health.is_routable(i));
        }
        assert_eq!(health.due_probes(Instant::now()), Vec::<usize>::new());
    }

    #[test]
    fn k_consecutive_failures_walk_up_suspect_down() {
        let health = FleetHealth::new(2, 0, policy());
        let now = Instant::now();
        let t1 = health.record_failure(1, now).unwrap();
        assert_eq!((t1.from, t1.to), (PeerState::Up, PeerState::Suspect));
        assert!(health.is_routable(1), "Suspect is still routable");
        assert!(health.record_failure(1, now).is_none(), "Suspect→Suspect");
        let t3 = health.record_failure(1, now).unwrap();
        assert_eq!((t3.from, t3.to), (PeerState::Suspect, PeerState::Down));
        assert!(!health.is_routable(1));
        assert_eq!(health.consecutive_failures(1), 3);
    }

    #[test]
    fn one_success_resets_the_failure_streak() {
        let health = FleetHealth::new(2, 0, policy());
        let now = Instant::now();
        health.record_failure(1, now);
        health.record_failure(1, now);
        let t = health.record_success(1).unwrap();
        assert_eq!((t.from, t.to), (PeerState::Suspect, PeerState::Up));
        assert_eq!(health.consecutive_failures(1), 0);
        // The streak restarts: two more failures are still only Suspect.
        health.record_failure(1, now);
        health.record_failure(1, now);
        assert_eq!(health.state(1), PeerState::Suspect);
    }

    #[test]
    fn self_never_goes_down() {
        let health = FleetHealth::new(2, 0, policy());
        let now = Instant::now();
        for _ in 0..10 {
            assert!(health.record_failure(0, now).is_none());
        }
        assert_eq!(health.state(0), PeerState::Up);
    }

    #[test]
    fn down_peers_probe_on_exponential_backoff() {
        let health = FleetHealth::new(2, 0, policy());
        let start = Instant::now();
        for _ in 0..3 {
            health.record_failure(1, start);
        }
        // First probe is due within [base/2, base) of going Down, never
        // immediately.
        assert!(health.due_probes(start).is_empty());
        assert!(health
            .due_probes(start + Duration::from_millis(49))
            .is_empty());
        let first_due = health.next_probe_due().unwrap();
        assert!(first_due > start && first_due < start + Duration::from_millis(100));
        assert_eq!(health.due_probes(start + Duration::from_millis(100)), [1]);
        // Claiming the probe reschedules it one (doubled) round out; the
        // same instant yields nothing twice.
        assert!(health
            .due_probes(start + Duration::from_millis(100))
            .is_empty());
        let second_due = health.next_probe_due().unwrap();
        let gap = second_due - (start + Duration::from_millis(100));
        assert!(
            gap >= Duration::from_millis(100) && gap < Duration::from_millis(200),
            "second probe gap {gap:?} outside [100, 200) ms"
        );
    }

    #[test]
    fn probe_backoff_caps() {
        let health = FleetHealth::new(2, 0, policy());
        let mut now = Instant::now();
        for _ in 0..3 {
            health.record_failure(1, now);
        }
        // Drain many rounds; every gap stays under the (pre-jitter) cap.
        for _ in 0..12 {
            let due = health.next_probe_due().unwrap();
            now = due;
            assert_eq!(health.due_probes(now), [1]);
            let next = health.next_probe_due().unwrap();
            assert!(next - now <= Duration::from_millis(800));
        }
    }

    #[test]
    fn probe_success_restores_up_and_stops_probing() {
        let health = FleetHealth::new(2, 0, policy());
        let now = Instant::now();
        for _ in 0..3 {
            health.record_failure(1, now);
        }
        let t = health.probe_succeeded(1).unwrap();
        assert_eq!((t.from, t.to), (PeerState::Down, PeerState::Up));
        assert!(health.is_routable(1));
        assert_eq!(health.next_probe_due(), None);
        assert!(health.due_probes(now + Duration::from_secs(60)).is_empty());
    }

    #[test]
    fn snapshot_reports_all_peers() {
        let health = FleetHealth::new(3, 0, policy());
        let now = Instant::now();
        health.record_failure(2, now);
        let snap = health.snapshot();
        assert_eq!(snap[0], (PeerState::Up, 0));
        assert_eq!(snap[1], (PeerState::Up, 0));
        assert_eq!(snap[2], (PeerState::Suspect, 1));
    }

    #[test]
    fn probe_schedule_is_deterministic_per_seed() {
        let schedule = |seed: u64| {
            let health = FleetHealth::new(
                2,
                0,
                HealthPolicy {
                    jitter_seed: seed,
                    ..policy()
                },
            );
            let start = Instant::now();
            for _ in 0..3 {
                health.record_failure(1, start);
            }
            health.next_probe_due().unwrap() - start
        };
        assert_eq!(schedule(7), schedule(7));
        assert_ne!(schedule(7), schedule(8));
    }
}
