//! Consistent shard-to-owner assignment via rendezvous (HRW) hashing.
//!
//! The sweep disk cache is 256-way sharded by the **high byte** of
//! `Params::content_hash` (`cache_dir/ab/<hash>.json`), so the natural
//! routing unit for a fleet is that same byte: 256 shards, each mapped to
//! exactly one owning instance. [`HashRing`] materializes the full
//! 256-entry table at construction by giving every `(shard, peer)` pair a
//! rendezvous score — `mix(fnv1a(peer_addr ‖ 0 ‖ shard_byte))` — and
//! awarding the shard to the highest scorer. The `mix` finalizer matters:
//! raw FNV-1a's last step perturbs the score by less than 2⁴⁸ per shard
//! byte, so without it whichever peer hashes largest would win *every*
//! shard (a fully degenerate ring).
//!
//! Rendezvous hashing has the two properties a static peer table needs:
//!
//! * **Uniformity** — scores are independent hashes, so the 256 shards
//!   spread evenly across peers without virtual-node tuning.
//! * **Minimal remap** — removing a peer only reassigns the shards that
//!   peer owned (each surviving pair's score is unchanged), so a fleet
//!   that shrinks from N to N−1 instances invalidates ~1/N of the key
//!   space instead of reshuffling everything.
//!
//! Every instance builds the table from the same ordered peer list, so
//! ownership is agreed fleet-wide without any coordination traffic.

use cnt_sweep::seed::fnv1a;

/// SplitMix64 finalizer: full-avalanche bit mix over an FNV-1a hash.
///
/// FNV-1a's incremental multiply leaves the influence of late input bytes
/// concentrated in a narrow band of bits, which rendezvous comparison
/// across peers amplifies into total ownership collapse; three xor-shift
/// multiplies spread every input bit across the whole word.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fixed table mapping each of the 256 cache shards to an owner index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    owners: [u8; 256],
    peers: usize,
}

impl HashRing {
    /// Builds the shard table for an ordered peer list.
    ///
    /// Peers are identified by their listed address string; the table maps
    /// shards to *indices* into that list, so every instance given the
    /// same `--fleet` string derives the same ownership. At most 256 peers
    /// participate (one per shard); empty lists get an empty ring that
    /// owns nothing.
    pub fn new<S: AsRef<str>>(peers: &[S]) -> Self {
        let n = peers.len().min(256);
        let mut owners = [0u8; 256];
        if n == 0 {
            return Self { owners, peers: 0 };
        }
        for (shard, owner) in owners.iter_mut().enumerate() {
            let mut best = (0u64, 0usize);
            for (index, peer) in peers.iter().take(n).enumerate() {
                let mut key = peer.as_ref().as_bytes().to_vec();
                key.push(0);
                key.push(shard as u8);
                let score = mix(fnv1a(&key));
                if score > best.0 || (score == best.0 && index < best.1) {
                    best = (score, index);
                }
            }
            *owner = best.1 as u8;
        }
        Self { owners, peers: n }
    }

    /// Number of peers the table was built over.
    pub fn peers(&self) -> usize {
        self.peers
    }

    /// The cache shard a content hash lands in: its high byte, matching
    /// the `{:016x}`-prefix directory layout of the sweep disk cache.
    pub fn shard_of(hash: u64) -> u8 {
        (hash >> 56) as u8
    }

    /// The peer index owning a given shard (`None` on an empty ring).
    pub fn owner_of_shard(&self, shard: u8) -> Option<usize> {
        (self.peers > 0).then(|| usize::from(self.owners[usize::from(shard)]))
    }

    /// The peer index owning a content hash (`None` on an empty ring).
    pub fn owner_of_hash(&self, hash: u64) -> Option<usize> {
        self.owner_of_shard(Self::shard_of(hash))
    }

    /// Shards owned per peer index — the load-balance profile.
    pub fn shard_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.peers];
        if self.peers > 0 {
            for &owner in &self.owners {
                counts[usize::from(owner)] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn same_peer_list_same_table() {
        let a = HashRing::new(&addrs(5));
        let b = HashRing::new(&addrs(5));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new::<&str>(&[]);
        assert_eq!(ring.peers(), 0);
        assert_eq!(ring.owner_of_shard(0), None);
        assert_eq!(ring.owner_of_hash(u64::MAX), None);
        assert!(ring.shard_counts().is_empty());
    }

    #[test]
    fn single_peer_owns_everything() {
        let ring = HashRing::new(&["127.0.0.1:9000"]);
        for shard in 0..=255u8 {
            assert_eq!(ring.owner_of_shard(shard), Some(0));
        }
        assert_eq!(ring.shard_counts(), vec![256]);
    }

    #[test]
    fn shard_is_the_high_byte_of_the_hash() {
        // Must match the disk cache layout: first two hex chars of
        // format!("{:016x}", hash) name the shard directory.
        assert_eq!(HashRing::shard_of(0xab00_0000_0000_0000), 0xab);
        assert_eq!(HashRing::shard_of(0x0000_0000_0000_00ff), 0x00);
        assert_eq!(HashRing::shard_of(u64::MAX), 0xff);
    }

    #[test]
    fn shards_spread_uniformly_across_peers() {
        for n in [2usize, 3, 4, 5, 8] {
            let ring = HashRing::new(&addrs(n));
            let counts = ring.shard_counts();
            assert_eq!(counts.iter().sum::<usize>(), 256);
            let expect = 256.0 / n as f64;
            for (peer, &count) in counts.iter().enumerate() {
                // 256 shards over few peers: each peer must land within
                // a generous band around the mean (no starved peer, no
                // hot-spot peer).
                assert!(
                    (count as f64) > expect * 0.45 && (count as f64) < expect * 1.7,
                    "n={n} peer={peer} owns {count} shards (mean {expect:.1})"
                );
            }
        }
    }

    #[test]
    fn removing_a_peer_remaps_only_its_own_shards() {
        let full = addrs(4);
        let ring = HashRing::new(&full);
        // Drop the last peer; surviving indices stay aligned.
        let ring_minus = HashRing::new(&full[..3]);
        let mut remapped = 0usize;
        for shard in 0..=255u8 {
            let before = ring.owner_of_shard(shard).unwrap();
            let after = ring_minus.owner_of_shard(shard).unwrap();
            if before != after {
                // Only shards the removed peer owned may move.
                assert_eq!(before, 3, "shard {shard:#x} moved off a live peer");
                remapped += 1;
            }
        }
        // Exactly the removed peer's share moves: ≤ 1/N of the key space
        // (plus slack for the finite 256-shard table).
        assert_eq!(remapped, ring.shard_counts()[3]);
        assert!(
            remapped as f64 <= 256.0 / 4.0 * 1.7,
            "remap fraction too large: {remapped}/256"
        );
    }

    #[test]
    fn two_peers_dying_simultaneously_remap_only_their_union() {
        // The health layer can declare two peers Down in the same window;
        // the effective ring is then the 3 survivors of 5. Every shard that
        // moves must have been owned by one of the two dead peers, and
        // every shard they owned must move (it has to — its owner is gone).
        let full = addrs(5);
        let ring = HashRing::new(&full);
        let survivors = HashRing::new(&full[..3]);
        let counts = ring.shard_counts();
        let mut remapped = 0usize;
        for shard in 0..=255u8 {
            let before = ring.owner_of_shard(shard).unwrap();
            let after = survivors.owner_of_shard(shard).unwrap();
            if before != after {
                assert!(
                    before == 3 || before == 4,
                    "shard {shard:#x} moved off live peer {before}"
                );
                remapped += 1;
            } else {
                assert!(
                    before < 3,
                    "shard {shard:#x} still maps to dead peer {before}"
                );
            }
        }
        // remapped == |shards of peer 3| + |shards of peer 4|: the moved
        // set is exactly the union of the dead peers' shards, ≤ 2/N of
        // the space (with slack for the finite table).
        assert_eq!(remapped, counts[3] + counts[4]);
        assert!(
            remapped as f64 <= 256.0 / 5.0 * 2.0 * 1.7,
            "remap fraction too large: {remapped}/256"
        );
    }
}
