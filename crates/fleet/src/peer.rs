//! A minimal blocking HTTP/1.1 client for intra-fleet hops.
//!
//! The serve layer talks to peers in exactly three shapes — a cache-fill
//! probe (`GET /v1/_fleet/cache/{hash}`), a full request proxy, and a
//! background health probe — and the first two sit on a request's
//! critical path, so the client is built around *failing fast*: a
//! bounded connect timeout, bounded read/write deadlines, and a
//! [`RetryPolicy`] (attempts + deterministic backoff) before the caller
//! falls back to local compute.
//!
//! Since the fault-tolerance pass, connections are **kept alive and
//! pooled**: each client keeps a small per-peer stack of idle sockets
//! (bounded depth, staleness-evicted well inside the server's 5 s
//! keep-alive idle window), so a hot proxy path or a retry ladder pays
//! one TCP connect, not one per hop. A pooled socket that turns out to
//! be stale — the peer closed it while parked — is discarded and the
//! attempt transparently redialed, never surfaced as a failure. When a
//! peer stalls past the deadline the stream drops (and the OS closes
//! the descriptor) on the error return path, so a flapping peer cannot
//! leak file descriptors into a long-lived server process; there are
//! fd-counting tests for both the timeout and the pooled path.
//!
//! A [`ChaosInjector`] can be armed on the client to inject refused
//! connects, hangs, truncated responses, and added latency — see
//! [`crate::chaos`].

use crate::chaos::{ChaosInjector, Fault};
use crate::retry::RetryPolicy;
use cnt_sweep::seed::fnv1a;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Largest peer response body accepted (matches the serve layer's own
/// request-body ceiling order of magnitude; a cached report is ~KBs).
const MAX_PEER_BODY: usize = 4 * 1024 * 1024;

/// Most idle sockets parked per peer address.
const MAX_IDLE_PER_PEER: usize = 4;

/// How long a parked socket stays reusable. Must sit well inside the
/// serve layer's `keep_alive_idle` (5 s): a socket the *server* is
/// about to reap is worse than no socket, so we evict first.
const IDLE_TTL: Duration = Duration::from_millis(2_000);

/// A parsed peer response: status plus the framed body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value (empty when the peer omitted it).
    pub content_type: String,
    /// Response body, exactly `Content-Length` bytes.
    pub body: String,
}

/// Why a peer hop failed; all variants mean "degrade to local compute".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerError {
    /// The peer address did not parse or the TCP connect failed/timed out.
    Connect(String),
    /// The connection was established but reading/writing failed or
    /// timed out.
    Io(String),
    /// The peer answered with something that is not framed HTTP/1.1.
    Protocol(String),
}

impl PeerError {
    /// Whether this failure is a transport error (retryable, counts
    /// against the peer's health) rather than a protocol one.
    pub fn is_transport(&self) -> bool {
        matches!(self, PeerError::Connect(_) | PeerError::Io(_))
    }
}

impl core::fmt::Display for PeerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PeerError::Connect(m) => write!(f, "peer connect failed: {m}"),
            PeerError::Io(m) => write!(f, "peer i/o failed: {m}"),
            PeerError::Protocol(m) => write!(f, "peer protocol error: {m}"),
        }
    }
}

/// Per-peer stacks of parked keep-alive sockets.
#[derive(Debug, Default)]
struct ConnPool {
    idle: Mutex<HashMap<String, Vec<(TcpStream, Instant)>>>,
}

impl ConnPool {
    /// Pops the freshest reusable socket for `addr`, dropping any that
    /// sat parked past [`IDLE_TTL`].
    fn checkout(&self, addr: &str) -> Option<TcpStream> {
        let mut idle = self.idle.lock().unwrap();
        let stack = idle.get_mut(addr)?;
        while let Some((stream, parked_at)) = stack.pop() {
            if parked_at.elapsed() < IDLE_TTL {
                return Some(stream);
            }
            // Stale: fell out of the TTL while parked; closing it here
            // (drop) is cheaper than discovering the peer reaped it.
        }
        None
    }

    /// Parks a socket for reuse, evicting stale entries and bounding the
    /// stack depth.
    fn checkin(&self, addr: &str, stream: TcpStream) {
        let mut idle = self.idle.lock().unwrap();
        let stack = idle.entry(addr.to_string()).or_default();
        stack.retain(|(_, parked_at)| parked_at.elapsed() < IDLE_TTL);
        if stack.len() < MAX_IDLE_PER_PEER {
            stack.push((stream, Instant::now()));
        }
    }

    /// Parked sockets for `addr` right now (test observability).
    fn idle_count(&self, addr: &str) -> usize {
        self.idle
            .lock()
            .unwrap()
            .get(addr)
            .map_or(0, |stack| stack.len())
    }
}

/// Blocking HTTP client with per-call deadlines, pooled keep-alive
/// connections, a configurable retry ladder, and optional fault
/// injection. Cloning shares the pool and the chaos stream.
#[derive(Debug, Clone)]
pub struct PeerClient {
    connect_timeout: Duration,
    io_timeout: Duration,
    retry: RetryPolicy,
    pool: Arc<ConnPool>,
    chaos: Option<Arc<ChaosInjector>>,
    close_connections: bool,
}

impl PeerClient {
    /// A client that gives up connecting after `connect_timeout` and
    /// gives up on a silent established connection after `io_timeout`,
    /// with the legacy two-attempt [`RetryPolicy::fast_hop`] ladder.
    pub fn new(connect_timeout: Duration, io_timeout: Duration) -> Self {
        Self {
            connect_timeout,
            io_timeout,
            retry: RetryPolicy::fast_hop(),
            pool: Arc::new(ConnPool::default()),
            chaos: None,
            close_connections: false,
        }
    }

    /// Replaces the retry ladder.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Shares `other`'s connection pool instead of this client's own.
    ///
    /// The serve layer runs one client per hop shape (cache-fill, proxy)
    /// with different deadlines and retry ladders — but against the same
    /// peers. Pooling separately would park one idle socket *per client*
    /// on each peer, and on the worker-per-connection server every parked
    /// socket occupies a worker until the keep-alive idle window expires.
    /// Sharing bounds the residue to one pool per instance. Deadlines
    /// stay per-client: they are (re)applied to every socket at checkout.
    #[must_use]
    pub fn sharing_pool_of(mut self, other: &PeerClient) -> Self {
        self.pool = Arc::clone(&other.pool);
        self
    }

    /// Sends `Connection: close` and never pools — for off-path callers
    /// like the health prober, whose rare hops must leave no parked
    /// socket (= no occupied worker) behind on a freshly revived peer.
    #[must_use]
    pub fn with_connection_close(mut self) -> Self {
        self.close_connections = true;
        self
    }

    /// Arms (or shares) a chaos injector on this client's hops.
    #[must_use]
    pub fn with_chaos(mut self, chaos: Option<Arc<ChaosInjector>>) -> Self {
        self.chaos = chaos;
        self
    }

    /// The client's retry ladder.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Idle pooled sockets currently parked for `addr` (tests/metrics).
    pub fn idle_connections(&self, addr: &str) -> usize {
        self.pool.idle_count(addr)
    }

    /// `GET path` against `addr`, under the client's retry policy.
    ///
    /// # Errors
    ///
    /// Returns the *last* failure when every attempt dies on transport;
    /// protocol errors (a live peer speaking garbage) are not retried.
    pub fn get(&self, addr: &str, path: &str) -> Result<PeerResponse, PeerError> {
        self.request(addr, "GET", path, "", "", &[])
    }

    /// [`PeerClient::get`] with extra request headers — the carrier for
    /// trace/request-id propagation on fleet hops. Header values
    /// containing CR/LF are silently dropped (no header injection).
    ///
    /// # Errors
    ///
    /// Same policy as [`PeerClient::get`].
    pub fn get_with(
        &self,
        addr: &str,
        path: &str,
        headers: &[(String, String)],
    ) -> Result<PeerResponse, PeerError> {
        self.request(addr, "GET", path, "", "", headers)
    }

    /// `POST body` to `path` on `addr`, under the client's retry policy.
    ///
    /// # Errors
    ///
    /// Same policy as [`PeerClient::get`].
    pub fn post(
        &self,
        addr: &str,
        path: &str,
        content_type: &str,
        body: &str,
    ) -> Result<PeerResponse, PeerError> {
        self.request(addr, "POST", path, content_type, body, &[])
    }

    /// [`PeerClient::post`] with extra request headers; same CR/LF
    /// policy as [`PeerClient::get_with`].
    ///
    /// # Errors
    ///
    /// Same policy as [`PeerClient::get`].
    pub fn post_with(
        &self,
        addr: &str,
        path: &str,
        content_type: &str,
        body: &str,
        headers: &[(String, String)],
    ) -> Result<PeerResponse, PeerError> {
        self.request(addr, "POST", path, content_type, body, headers)
    }

    #[allow(clippy::too_many_arguments)]
    fn request(
        &self,
        addr: &str,
        method: &str,
        path: &str,
        content_type: &str,
        body: &str,
        headers: &[(String, String)],
    ) -> Result<PeerResponse, PeerError> {
        // Jitter token: per-peer, so concurrent ladders against different
        // peers interleave while one ladder stays replayable.
        let token = fnv1a(addr.as_bytes());
        let attempts = self.retry.effective_attempts();
        let mut last = None;
        for attempt in 0..attempts {
            let delay = self.retry.delay_before(attempt, token);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            match self.request_once(addr, method, path, content_type, body, headers) {
                Err(err) if err.is_transport() => last = Some(err),
                done => return done,
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    #[allow(clippy::too_many_arguments)]
    fn request_once(
        &self,
        addr: &str,
        method: &str,
        path: &str,
        content_type: &str,
        body: &str,
        headers: &[(String, String)],
    ) -> Result<PeerResponse, PeerError> {
        let fault = self.chaos.as_deref().and_then(ChaosInjector::next_fault);
        match fault {
            Some(Fault::Refuse) => {
                return Err(PeerError::Connect("chaos: connection refused".to_string()));
            }
            Some(Fault::Hang) => {
                // The peer "accepted then went silent": burn the read
                // deadline, then fail exactly like a timeout.
                std::thread::sleep(self.io_timeout);
                return Err(PeerError::Io("chaos: peer accepted then hung".to_string()));
            }
            Some(Fault::Latency) => std::thread::sleep(
                self.chaos
                    .as_deref()
                    .map(ChaosInjector::latency)
                    .unwrap_or_default(),
            ),
            Some(Fault::Truncate) | None => {}
        }

        // A parked socket first; if the peer closed it while idle, the
        // exchange fails and we redial fresh without burning an attempt.
        // Deadlines are re-applied at checkout: a shared pool may hand us
        // a socket dialed by a client with different timeouts.
        if let Some(stream) = self.pool.checkout(addr) {
            let armed = stream
                .set_read_timeout(Some(self.io_timeout))
                .and_then(|()| stream.set_write_timeout(Some(self.io_timeout)))
                .is_ok();
            if armed {
                if let Ok(response) =
                    self.exchange(stream, addr, method, path, content_type, body, headers)
                {
                    return self.apply_post_faults(fault, response);
                }
            }
        }
        let sock_addr: SocketAddr = addr
            .parse()
            .map_err(|e| PeerError::Connect(format!("bad address {addr}: {e}")))?;
        let stream = TcpStream::connect_timeout(&sock_addr, self.connect_timeout)
            .map_err(|e| PeerError::Connect(e.to_string()))?;
        stream
            .set_read_timeout(Some(self.io_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.io_timeout)))
            .map_err(|e| PeerError::Io(e.to_string()))?;
        let response = self.exchange(stream, addr, method, path, content_type, body, headers)?;
        self.apply_post_faults(fault, response)
    }

    /// Applies faults that fire *after* a real exchange: a truncated
    /// response reached the wire but is useless to the caller.
    fn apply_post_faults(
        &self,
        fault: Option<Fault>,
        response: PeerResponse,
    ) -> Result<PeerResponse, PeerError> {
        match fault {
            Some(Fault::Truncate) => Err(PeerError::Io(
                "chaos: response truncated mid-body".to_string(),
            )),
            _ => Ok(response),
        }
    }

    /// One request/response on an established stream; parks the socket
    /// back in the pool when the response allows reuse.
    #[allow(clippy::too_many_arguments)]
    fn exchange(
        &self,
        mut stream: TcpStream,
        addr: &str,
        method: &str,
        path: &str,
        content_type: &str,
        body: &str,
        headers: &[(String, String)],
    ) -> Result<PeerResponse, PeerError> {
        // HTTP/1.1 default framing is keep-alive: no Connection header
        // (unless this client opted out of pooling entirely).
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
        if self.close_connections {
            head.push_str("Connection: close\r\n");
        }
        for (name, value) in headers {
            let clean = !name.contains(['\r', '\n', ':']) && !value.contains(['\r', '\n']);
            if clean && !name.is_empty() {
                head.push_str(&format!("{name}: {value}\r\n"));
            }
        }
        if !content_type.is_empty() {
            head.push_str(&format!("Content-Type: {content_type}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()))
            .map_err(|e| PeerError::Io(e.to_string()))?;

        let reader = BufReader::new(stream);
        let (response, reusable, reader) = read_response(reader)?;
        if reusable && !self.close_connections {
            self.pool.checkin(addr, reader.into_inner());
        }
        Ok(response)
    }
}

/// Parses one framed HTTP/1.1 response: status line, headers,
/// `Content-Length` body. Returns the response, whether the connection
/// may be reused (HTTP/1.1 without `Connection: close`), and the reader
/// (so a reusable socket can go back to the pool).
#[allow(clippy::type_complexity)]
fn read_response<R: BufRead>(mut reader: R) -> Result<(PeerResponse, bool, R), PeerError> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| PeerError::Io(e.to_string()))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| PeerError::Protocol(format!("bad status line {status_line:?}")))?;
    let http11 = status_line.starts_with("HTTP/1.1");

    let mut content_type = String::new();
    let mut content_length = 0usize;
    let mut close = !http11;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| PeerError::Io(e.to_string()))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-type") {
                content_type = value.to_string();
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse()
                    .map_err(|_| PeerError::Protocol(format!("bad content-length {value:?}")))?;
            } else if name.eq_ignore_ascii_case("connection") {
                close = value.eq_ignore_ascii_case("close");
            }
        }
    }
    if content_length > MAX_PEER_BODY {
        return Err(PeerError::Protocol(format!(
            "peer body too large: {content_length} bytes"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| PeerError::Io(e.to_string()))?;
    let body =
        String::from_utf8(body).map_err(|_| PeerError::Protocol("non-utf8 body".to_string()))?;
    Ok((
        PeerResponse {
            status,
            content_type,
            body,
        },
        !close,
        reader,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;
    use std::io::{Cursor, Read};
    use std::net::TcpListener;

    fn client() -> PeerClient {
        PeerClient::new(Duration::from_millis(200), Duration::from_millis(200))
    }

    /// Open descriptors of this process (Linux); `None` elsewhere.
    fn open_fds() -> Option<usize> {
        std::fs::read_dir("/proc/self/fd")
            .ok()
            .map(|entries| entries.count())
    }

    /// A server thread answering `responses` keep-alive requests per
    /// connection across `connections` accepts, then reporting how many
    /// connections it actually saw.
    fn keepalive_server(
        listener: TcpListener,
        connections: usize,
    ) -> std::thread::JoinHandle<usize> {
        std::thread::spawn(move || {
            let mut seen = 0usize;
            for stream in listener.incoming().take(connections).flatten() {
                seen += 1;
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut stream = stream;
                loop {
                    // Read one request head (ours carry no bodies on GET).
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break;
                    }
                    let mut length = 0usize;
                    loop {
                        let mut header = String::new();
                        if reader.read_line(&mut header).unwrap_or(0) == 0 {
                            return seen;
                        }
                        if header.trim_end().is_empty() {
                            break;
                        }
                        if let Some(value) = header
                            .trim_end()
                            .to_ascii_lowercase()
                            .strip_prefix("content-length:")
                            .map(str::trim)
                            .and_then(|v| v.parse::<usize>().ok())
                        {
                            length = value;
                        }
                    }
                    let mut body = vec![0u8; length];
                    if length > 0 && reader.read_exact(&mut body).is_err() {
                        break;
                    }
                    if stream
                        .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
                        .is_err()
                    {
                        break;
                    }
                }
            }
            seen
        })
    }

    #[test]
    fn parses_a_framed_response() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                   Content-Length: 8\r\n\r\n{\"a\":1}\n";
        let (response, reusable, _) = read_response(Cursor::new(raw)).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.content_type, "application/json");
        assert_eq!(response.body, "{\"a\":1}\n");
        assert!(reusable, "HTTP/1.1 without Connection: close is reusable");
    }

    #[test]
    fn connection_close_and_http10_are_not_reusable() {
        let close = "HTTP/1.1 200 OK\r\nConnection: close\r\nContent-Length: 0\r\n\r\n";
        let (_, reusable, _) = read_response(Cursor::new(close)).unwrap();
        assert!(!reusable);
        let old = "HTTP/1.0 200 OK\r\nContent-Length: 0\r\n\r\n";
        let (_, reusable, _) = read_response(Cursor::new(old)).unwrap();
        assert!(!reusable);
        let keep = "HTTP/1.0 200 OK\r\nConnection: keep-alive\r\nContent-Length: 0\r\n\r\n";
        let (_, reusable, _) = read_response(Cursor::new(keep)).unwrap();
        assert!(reusable, "HTTP/1.0 may opt in explicitly");
    }

    #[test]
    fn rejects_garbage_status_lines() {
        assert!(matches!(
            read_response(Cursor::new("not http at all\r\n\r\n")),
            Err(PeerError::Protocol(_))
        ));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Length: 50\r\n\r\nshort";
        assert!(matches!(
            read_response(Cursor::new(raw)),
            Err(PeerError::Io(_))
        ));
    }

    #[test]
    fn round_trips_against_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let n = stream.read(&mut buf).unwrap();
            let request = String::from_utf8_lossy(&buf[..n]).to_string();
            stream
                .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
                .unwrap();
            request
        });
        let response = client()
            .get(&addr.to_string(), "/v1/_fleet/cache/abc")
            .unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "ok");
        let request = server.join().unwrap();
        assert!(request.starts_with("GET /v1/_fleet/cache/abc HTTP/1.1\r\n"));
        // Keep-alive framing: the hop no longer burns the connection.
        assert!(
            !request.contains("Connection: close"),
            "peer hops must not opt out of keep-alive: {request}"
        );
    }

    #[test]
    fn pooled_connections_are_reused_across_requests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = keepalive_server(listener, 1);
        let client = client();
        for _ in 0..10 {
            let response = client.get(&addr, "/v1/healthz").unwrap();
            assert_eq!(response.body, "ok");
        }
        assert_eq!(client.idle_connections(&addr), 1, "one parked socket");
        drop(client); // close the pooled socket so the server loop ends
        assert_eq!(
            server.join().unwrap(),
            1,
            "all 10 requests on one connection"
        );
    }

    #[test]
    fn clients_sharing_a_pool_reuse_one_socket() {
        // The serve layer's fill and proxy clients share a pool so a
        // relayed request parks ONE socket on the owner, not one per
        // client (each parked socket pins a server worker while idle).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = keepalive_server(listener, 1);
        let fill = PeerClient::new(Duration::from_millis(200), Duration::from_millis(200));
        let proxy = PeerClient::new(Duration::from_millis(200), Duration::from_secs(2))
            .sharing_pool_of(&fill);
        assert_eq!(fill.get(&addr, "/v1/_fleet/cache/abc").unwrap().status, 200);
        assert_eq!(
            proxy
                .post(&addr, "/v1/run", "application/json", "{}")
                .unwrap()
                .status,
            200
        );
        assert_eq!(fill.get(&addr, "/v1/_fleet/cache/def").unwrap().status, 200);
        assert_eq!(fill.idle_connections(&addr), 1, "one parked socket total");
        assert_eq!(proxy.idle_connections(&addr), 1, "same pool, same view");
        drop(fill);
        drop(proxy);
        assert_eq!(
            server.join().unwrap(),
            1,
            "fill and proxy hops rode one connection"
        );
    }

    #[test]
    fn connection_close_client_parks_nothing() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let n = stream.read(&mut buf).unwrap();
            let request = String::from_utf8_lossy(&buf[..n]).to_string();
            stream
                .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
                .unwrap();
            request
        });
        let prober = client().with_connection_close();
        let addr = addr.to_string();
        assert_eq!(prober.get(&addr, "/v1/healthz").unwrap().status, 200);
        let request = server.join().unwrap();
        assert!(
            request.contains("Connection: close\r\n"),
            "close client must announce itself: {request}"
        );
        assert_eq!(prober.idle_connections(&addr), 0, "nothing parked");
    }

    #[test]
    fn stale_pooled_socket_is_redialed_transparently() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Server answers exactly one request per connection, then closes
        // (without saying Connection: close — a silent reap, the worst
        // case for a pooled client).
        let server = std::thread::spawn(move || {
            let mut seen = 0usize;
            for stream in listener.incoming().take(2).flatten() {
                seen += 1;
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut stream = stream;
                let mut line = String::new();
                while reader.read_line(&mut line).unwrap_or(0) > 0 {
                    if line.trim_end().is_empty() {
                        break;
                    }
                    line.clear();
                }
                stream
                    .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
                    .unwrap();
                // Drop closes the socket while the client has it pooled.
            }
            seen
        });
        let client = client();
        assert_eq!(client.get(&addr, "/a").unwrap().status, 200);
        // Give the server's close a moment to land in our socket.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            client.get(&addr, "/b").unwrap().status,
            200,
            "dead pooled socket must redial, not fail"
        );
        assert_eq!(server.join().unwrap(), 2);
    }

    #[test]
    fn pooled_reuse_does_not_leak_file_descriptors() {
        // The fd-regression companion to the timeout test below, for the
        // keep-alive path: many sequential requests must hold the fd
        // count at one parked socket, not one per request.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = keepalive_server(listener, 1);
        let client = client();
        assert_eq!(client.get(&addr, "/warm").unwrap().status, 200);
        let before = open_fds();
        for _ in 0..20 {
            assert_eq!(client.get(&addr, "/again").unwrap().status, 200);
        }
        if let (Some(before), Some(after)) = (before, open_fds()) {
            assert!(
                after <= before + 1,
                "fd count grew from {before} to {after} across pooled requests"
            );
        }
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn extra_headers_ride_the_wire_and_injection_is_dropped() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let n = stream.read(&mut buf).unwrap();
            let request = String::from_utf8_lossy(&buf[..n]).to_string();
            stream
                .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n")
                .unwrap();
            request
        });
        let headers = vec![
            ("X-Trace-Id".to_string(), "00000000deadbeef".to_string()),
            ("X-Request-Id".to_string(), "ab12cd34-000001".to_string()),
            ("Evil".to_string(), "x\r\nInjected: yes".to_string()),
        ];
        let response = client()
            .post_with(
                &addr.to_string(),
                "/v1/run",
                "application/json",
                "{}",
                &headers,
            )
            .unwrap();
        assert_eq!(response.status, 200);
        let request = server.join().unwrap();
        assert!(
            request.contains("X-Trace-Id: 00000000deadbeef\r\n"),
            "{request}"
        );
        assert!(
            request.contains("X-Request-Id: ab12cd34-000001\r\n"),
            "{request}"
        );
        assert!(!request.contains("Injected"), "CR/LF value must be dropped");
        assert!(request.contains("Content-Type: application/json\r\n"));
    }

    #[test]
    fn dead_peer_fails_fast_with_connect_error() {
        // Bind then drop: the port is (almost certainly) refused.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let err = client().get(&addr, "/").unwrap_err();
        assert!(matches!(err, PeerError::Connect(_) | PeerError::Io(_)));
    }

    #[test]
    fn timed_out_fills_do_not_leak_file_descriptors() {
        // A listener that accepts but never answers: every request runs
        // into the read timeout. The dropped stream must return its fd.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Keep the accepted sockets open until every call finished, so the
        // clients see timeouts rather than a racing FIN from our drop.
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let sink = std::thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming().take(20).flatten() {
                held.push(stream);
            }
            let _ = done_rx.recv();
        });
        let short = PeerClient::new(Duration::from_millis(200), Duration::from_millis(10));
        let before = open_fds();
        for _ in 0..10 {
            // 10 calls x 2 attempts each = 20 accepted-and-ignored sockets.
            assert!(matches!(short.get(&addr, "/"), Err(PeerError::Io(_))));
        }
        done_tx.send(()).unwrap();
        sink.join().unwrap();
        if let (Some(before), Some(after)) = (before, open_fds()) {
            assert!(
                after <= before + 2,
                "fd count grew from {before} to {after} across timed-out fills"
            );
        }
    }

    #[test]
    fn chaos_refuse_fails_without_dialing() {
        let config = ChaosConfig::parse("refuse=1.0").unwrap();
        let chaos = Arc::new(ChaosInjector::new(config));
        let armed = client().with_chaos(Some(chaos.clone()));
        // No server exists at this address; a real dial would error with
        // a different message than the injected one.
        let err = armed.get("127.0.0.1:1", "/").unwrap_err();
        assert_eq!(
            err,
            PeerError::Connect("chaos: connection refused".to_string())
        );
        assert_eq!(chaos.draws(), 2, "one draw per attempt");
    }

    #[test]
    fn chaos_truncate_reaches_the_wire_but_fails_the_caller() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = keepalive_server(listener, 1);
        let config = ChaosConfig::parse("truncate=1.0").unwrap();
        let armed = client().with_chaos(Some(Arc::new(ChaosInjector::new(config))));
        let err = armed.get(&addr, "/").unwrap_err();
        assert!(
            matches!(err, PeerError::Io(ref m) if m.contains("truncated")),
            "{err}"
        );
        drop(armed);
        server.join().unwrap();
    }

    #[test]
    fn chaos_latency_delays_but_succeeds() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = keepalive_server(listener, 1);
        let config = ChaosConfig::parse("latency=1.0,latency_ms=30").unwrap();
        let armed = client().with_chaos(Some(Arc::new(ChaosInjector::new(config))));
        let started = Instant::now();
        let response = armed.get(&addr, "/").unwrap();
        assert_eq!(response.status, 200);
        assert!(
            started.elapsed() >= Duration::from_millis(30),
            "latency fault must actually delay"
        );
        drop(armed);
        server.join().unwrap();
    }
}
