//! A minimal blocking HTTP/1.1 client for intra-fleet hops.
//!
//! The serve layer talks to peers in exactly two shapes — a cache-fill
//! probe (`GET /v1/_fleet/cache/{hash}`) and a full request proxy — and
//! both sit on a request's critical path, so the client is built around
//! *failing fast*: a bounded connect timeout, a bounded read/write
//! timeout, and one retry on transport errors before the caller falls
//! back to local compute. Every request uses a fresh `Connection: close`
//! socket owned by this stack frame; when a peer stalls past the timeout
//! the stream drops (and the OS closes the descriptor) on the error
//! return path, so a flapping peer cannot leak file descriptors into a
//! long-lived server process.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Largest peer response body accepted (matches the serve layer's own
/// request-body ceiling order of magnitude; a cached report is ~KBs).
const MAX_PEER_BODY: usize = 4 * 1024 * 1024;

/// A parsed peer response: status plus the framed body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value (empty when the peer omitted it).
    pub content_type: String,
    /// Response body, exactly `Content-Length` bytes.
    pub body: String,
}

/// Why a peer hop failed; all variants mean "degrade to local compute".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerError {
    /// The peer address did not parse or the TCP connect failed/timed out.
    Connect(String),
    /// The connection was established but reading/writing failed or
    /// timed out.
    Io(String),
    /// The peer answered with something that is not framed HTTP/1.1.
    Protocol(String),
}

impl core::fmt::Display for PeerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PeerError::Connect(m) => write!(f, "peer connect failed: {m}"),
            PeerError::Io(m) => write!(f, "peer i/o failed: {m}"),
            PeerError::Protocol(m) => write!(f, "peer protocol error: {m}"),
        }
    }
}

/// Blocking one-shot HTTP client with per-call deadlines.
#[derive(Debug, Clone, Copy)]
pub struct PeerClient {
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl PeerClient {
    /// A client that gives up connecting after `connect_timeout` and
    /// gives up on a silent established connection after `io_timeout`.
    pub fn new(connect_timeout: Duration, io_timeout: Duration) -> Self {
        Self {
            connect_timeout,
            io_timeout,
        }
    }

    /// `GET path` against `addr`, retrying once on transport errors.
    ///
    /// # Errors
    ///
    /// Returns the *second* failure when both attempts die on transport;
    /// protocol errors (a live peer speaking garbage) are not retried.
    pub fn get(&self, addr: &str, path: &str) -> Result<PeerResponse, PeerError> {
        self.request(addr, "GET", path, "", "", &[])
    }

    /// [`PeerClient::get`] with extra request headers — the carrier for
    /// trace/request-id propagation on fleet hops. Header values
    /// containing CR/LF are silently dropped (no header injection).
    ///
    /// # Errors
    ///
    /// Same policy as [`PeerClient::get`].
    pub fn get_with(
        &self,
        addr: &str,
        path: &str,
        headers: &[(String, String)],
    ) -> Result<PeerResponse, PeerError> {
        self.request(addr, "GET", path, "", "", headers)
    }

    /// `POST body` to `path` on `addr`, retrying once on transport errors.
    ///
    /// # Errors
    ///
    /// Same policy as [`PeerClient::get`].
    pub fn post(
        &self,
        addr: &str,
        path: &str,
        content_type: &str,
        body: &str,
    ) -> Result<PeerResponse, PeerError> {
        self.request(addr, "POST", path, content_type, body, &[])
    }

    /// [`PeerClient::post`] with extra request headers; same CR/LF
    /// policy as [`PeerClient::get_with`].
    ///
    /// # Errors
    ///
    /// Same policy as [`PeerClient::get`].
    pub fn post_with(
        &self,
        addr: &str,
        path: &str,
        content_type: &str,
        body: &str,
        headers: &[(String, String)],
    ) -> Result<PeerResponse, PeerError> {
        self.request(addr, "POST", path, content_type, body, headers)
    }

    #[allow(clippy::too_many_arguments)]
    fn request(
        &self,
        addr: &str,
        method: &str,
        path: &str,
        content_type: &str,
        body: &str,
        headers: &[(String, String)],
    ) -> Result<PeerResponse, PeerError> {
        match self.request_once(addr, method, path, content_type, body, headers) {
            Err(PeerError::Connect(_)) | Err(PeerError::Io(_)) => {
                // One retry: transient connect races (a peer mid-restart)
                // recover; a dead peer fails in 2 x connect_timeout.
                self.request_once(addr, method, path, content_type, body, headers)
            }
            done => done,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn request_once(
        &self,
        addr: &str,
        method: &str,
        path: &str,
        content_type: &str,
        body: &str,
        headers: &[(String, String)],
    ) -> Result<PeerResponse, PeerError> {
        let addr: SocketAddr = addr
            .parse()
            .map_err(|e| PeerError::Connect(format!("bad address {addr}: {e}")))?;
        let mut stream = TcpStream::connect_timeout(&addr, self.connect_timeout)
            .map_err(|e| PeerError::Connect(e.to_string()))?;
        stream
            .set_read_timeout(Some(self.io_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.io_timeout)))
            .map_err(|e| PeerError::Io(e.to_string()))?;

        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
        for (name, value) in headers {
            let clean = !name.contains(['\r', '\n', ':']) && !value.contains(['\r', '\n']);
            if clean && !name.is_empty() {
                head.push_str(&format!("{name}: {value}\r\n"));
            }
        }
        if !content_type.is_empty() {
            head.push_str(&format!("Content-Type: {content_type}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()))
            .map_err(|e| PeerError::Io(e.to_string()))?;

        read_response(BufReader::new(stream))
    }
}

/// Parses one framed HTTP/1.1 response: status line, headers,
/// `Content-Length` body.
fn read_response(mut reader: impl BufRead) -> Result<PeerResponse, PeerError> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| PeerError::Io(e.to_string()))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| PeerError::Protocol(format!("bad status line {status_line:?}")))?;

    let mut content_type = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| PeerError::Io(e.to_string()))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-type") {
                content_type = value.to_string();
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse()
                    .map_err(|_| PeerError::Protocol(format!("bad content-length {value:?}")))?;
            }
        }
    }
    if content_length > MAX_PEER_BODY {
        return Err(PeerError::Protocol(format!(
            "peer body too large: {content_length} bytes"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| PeerError::Io(e.to_string()))?;
    let body =
        String::from_utf8(body).map_err(|_| PeerError::Protocol("non-utf8 body".to_string()))?;
    Ok(PeerResponse {
        status,
        content_type,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Cursor, Read};
    use std::net::TcpListener;

    fn client() -> PeerClient {
        PeerClient::new(Duration::from_millis(200), Duration::from_millis(200))
    }

    /// Open descriptors of this process (Linux); `None` elsewhere.
    fn open_fds() -> Option<usize> {
        std::fs::read_dir("/proc/self/fd")
            .ok()
            .map(|entries| entries.count())
    }

    #[test]
    fn parses_a_framed_response() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                   Content-Length: 8\r\n\r\n{\"a\":1}\n";
        let response = read_response(Cursor::new(raw)).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.content_type, "application/json");
        assert_eq!(response.body, "{\"a\":1}\n");
    }

    #[test]
    fn rejects_garbage_status_lines() {
        assert!(matches!(
            read_response(Cursor::new("not http at all\r\n\r\n")),
            Err(PeerError::Protocol(_))
        ));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Length: 50\r\n\r\nshort";
        assert!(matches!(
            read_response(Cursor::new(raw)),
            Err(PeerError::Io(_))
        ));
    }

    #[test]
    fn round_trips_against_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let n = stream.read(&mut buf).unwrap();
            let request = String::from_utf8_lossy(&buf[..n]).to_string();
            stream
                .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
                .unwrap();
            request
        });
        let response = client()
            .get(&addr.to_string(), "/v1/_fleet/cache/abc")
            .unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "ok");
        let request = server.join().unwrap();
        assert!(request.starts_with("GET /v1/_fleet/cache/abc HTTP/1.1\r\n"));
        assert!(request.contains("Connection: close\r\n"));
    }

    #[test]
    fn extra_headers_ride_the_wire_and_injection_is_dropped() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let n = stream.read(&mut buf).unwrap();
            let request = String::from_utf8_lossy(&buf[..n]).to_string();
            stream
                .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n")
                .unwrap();
            request
        });
        let headers = vec![
            ("X-Trace-Id".to_string(), "00000000deadbeef".to_string()),
            ("X-Request-Id".to_string(), "ab12cd34-000001".to_string()),
            ("Evil".to_string(), "x\r\nInjected: yes".to_string()),
        ];
        let response = client()
            .post_with(
                &addr.to_string(),
                "/v1/run",
                "application/json",
                "{}",
                &headers,
            )
            .unwrap();
        assert_eq!(response.status, 200);
        let request = server.join().unwrap();
        assert!(
            request.contains("X-Trace-Id: 00000000deadbeef\r\n"),
            "{request}"
        );
        assert!(
            request.contains("X-Request-Id: ab12cd34-000001\r\n"),
            "{request}"
        );
        assert!(!request.contains("Injected"), "CR/LF value must be dropped");
        assert!(request.contains("Content-Type: application/json\r\n"));
    }

    #[test]
    fn dead_peer_fails_fast_with_connect_error() {
        // Bind then drop: the port is (almost certainly) refused.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let err = client().get(&addr, "/").unwrap_err();
        assert!(matches!(err, PeerError::Connect(_) | PeerError::Io(_)));
    }

    #[test]
    fn timed_out_fills_do_not_leak_file_descriptors() {
        // A listener that accepts but never answers: every request runs
        // into the read timeout. The dropped stream must return its fd.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Keep the accepted sockets open until every call finished, so the
        // clients see timeouts rather than a racing FIN from our drop.
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let sink = std::thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming().take(20).flatten() {
                held.push(stream);
            }
            let _ = done_rx.recv();
        });
        let short = PeerClient::new(Duration::from_millis(200), Duration::from_millis(10));
        let before = open_fds();
        for _ in 0..10 {
            // 10 calls x 1 retry each = 20 accepted-and-ignored sockets.
            assert!(matches!(short.get(&addr, "/"), Err(PeerError::Io(_))));
        }
        done_tx.send(()).unwrap();
        sink.join().unwrap();
        if let (Some(before), Some(after)) = (before, open_fds()) {
            assert!(
                after <= before + 2,
                "fd count grew from {before} to {after} across timed-out fills"
            );
        }
    }
}
