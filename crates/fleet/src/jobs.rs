//! A bounded, TTL-garbage-collected table of asynchronous sweep jobs.
//!
//! `POST /v1/sweeps/{id}` must return immediately, so the serve layer
//! parks the work on its `WorkerPool` and records a [`JobEntry`] here for
//! the client to poll. The table is deliberately dumb shared state — a
//! mutexed map of `Arc` entries — because the interesting lifecycle lives
//! *in* the entry: the HTTP thread creates it `Queued`, the pool worker
//! flips it `Running` and eventually `Done`/`Failed`, and any number of
//! poll requests read it concurrently through the shared [`Progress`]
//! counters and the state mutex.
//!
//! Two guards keep a long-lived server healthy:
//!
//! * **Bounded admission** — [`JobTable::create`] refuses new jobs once
//!   `capacity` entries exist (after a GC pass), turning runaway
//!   submission into an explicit `503 + Retry-After` shed upstream.
//! * **TTL GC** — finished jobs older than `ttl` are dropped on the next
//!   create or explicit [`JobTable::gc`], so results are pollable for a
//!   grace window but never accumulate forever.

use cnt_sweep::progress::Progress;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a finished job's result bytes live.
///
/// Small bodies stay `Inline`; servers running with a data directory
/// spill sweep reports to disk and keep only the path + size here, so a
/// multi-MB report costs the job table a few dozen bytes and the result
/// route can stream it chunk-by-chunk with bounded memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobBody {
    /// The whole rendered body, held in memory.
    Inline(String),
    /// The body lives in a spill file; only its location and size are
    /// table-resident.
    Spilled {
        /// Spill file holding the rendered bytes.
        path: PathBuf,
        /// Exact byte length of the spill file (the Content-Length the
        /// result route advertises).
        bytes: u64,
    },
}

impl JobBody {
    /// Byte length of the result, wherever it lives.
    pub fn len(&self) -> u64 {
        match self {
            JobBody::Inline(body) => body.len() as u64,
            JobBody::Spilled { bytes, .. } => *bytes,
        }
    }

    /// Whether the result is zero bytes long.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Where a job is in its life, plus the terminal payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a pool worker.
    Queued,
    /// A worker is executing the sweep.
    Running,
    /// Finished successfully; the body is the rendered report.
    Done {
        /// Content type of the stored body.
        content_type: String,
        /// Rendered response body (inline or disk-spilled), byte-identical
        /// to the synchronous endpoint's.
        body: JobBody,
        /// When the job finished (drives TTL GC).
        finished: Instant,
    },
    /// Finished unsuccessfully; the body is the rendered error JSON.
    Failed {
        /// HTTP status the error maps to.
        status: u16,
        /// Rendered error body.
        body: String,
        /// When the job failed (drives TTL GC).
        finished: Instant,
    },
}

impl JobState {
    /// The wire name polled via `GET /v1/jobs/{rid}`.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
        }
    }

    fn finished_at(&self) -> Option<Instant> {
        match self {
            JobState::Done { finished, .. } | JobState::Failed { finished, .. } => Some(*finished),
            _ => None,
        }
    }
}

/// One asynchronous sweep job, shared between the HTTP threads and the
/// pool worker executing it.
#[derive(Debug)]
pub struct JobEntry {
    /// Job id (the request id of the submitting `POST`).
    pub id: String,
    /// Experiment the sweep runs.
    pub sweep_id: String,
    /// Live trial counters fed by the sweep executor.
    pub progress: Arc<Progress>,
    state: Mutex<JobState>,
}

impl JobEntry {
    /// A snapshot of the current state (clones terminal payloads).
    pub fn state(&self) -> JobState {
        self.state.lock().expect("job state poisoned").clone()
    }

    /// Marks the job picked up by a worker.
    pub fn mark_running(&self) {
        *self.state.lock().expect("job state poisoned") = JobState::Running;
    }

    /// Stores the finished body inline and flips the job `Done`.
    pub fn complete(&self, content_type: &str, body: String) {
        *self.state.lock().expect("job state poisoned") = JobState::Done {
            content_type: content_type.to_string(),
            body: JobBody::Inline(body),
            finished: Instant::now(),
        };
    }

    /// Records a disk-spilled result and flips the job `Done`. The caller
    /// has already written `bytes` bytes to `path`; the table keeps only
    /// the location, so the result route streams from disk.
    pub fn complete_spilled(&self, content_type: &str, path: PathBuf, bytes: u64) {
        *self.state.lock().expect("job state poisoned") = JobState::Done {
            content_type: content_type.to_string(),
            body: JobBody::Spilled { path, bytes },
            finished: Instant::now(),
        };
    }

    /// Stores the error body and flips the job `Failed`.
    pub fn fail(&self, status: u16, body: String) {
        *self.state.lock().expect("job state poisoned") = JobState::Failed {
            status,
            body,
            finished: Instant::now(),
        };
    }
}

/// The server-wide registry of async jobs.
#[derive(Debug)]
pub struct JobTable {
    capacity: usize,
    ttl: Duration,
    jobs: Mutex<HashMap<String, Arc<JobEntry>>>,
}

impl JobTable {
    /// A table admitting at most `capacity` live jobs, keeping finished
    /// ones pollable for `ttl` after completion.
    pub fn new(capacity: usize, ttl: Duration) -> Self {
        Self {
            capacity,
            ttl,
            jobs: Mutex::new(HashMap::new()),
        }
    }

    /// The admission ceiling the table was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Registers a new `Queued` job under `id`.
    ///
    /// Runs a GC pass first so expired results never count against the
    /// ceiling.
    ///
    /// # Errors
    ///
    /// Returns `Err(())` when the table is full — the caller sheds with
    /// `503 + Retry-After`, mirroring the worker-queue shed.
    #[allow(clippy::result_unit_err)]
    pub fn create(&self, id: &str, sweep_id: &str) -> Result<Arc<JobEntry>, ()> {
        let now = Instant::now();
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        Self::collect(&mut jobs, self.ttl, now);
        if jobs.len() >= self.capacity {
            return Err(());
        }
        let entry = Arc::new(JobEntry {
            id: id.to_string(),
            sweep_id: sweep_id.to_string(),
            progress: Arc::new(Progress::new()),
            state: Mutex::new(JobState::Queued),
        });
        jobs.insert(id.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Looks a job up by id.
    pub fn get(&self, id: &str) -> Option<Arc<JobEntry>> {
        self.jobs
            .lock()
            .expect("job table poisoned")
            .get(id)
            .cloned()
    }

    /// Withdraws a job (the submit-bounced path: a job whose work never
    /// made it onto the pool must not linger `Queued` forever).
    pub fn remove(&self, id: &str) -> Option<Arc<JobEntry>> {
        self.jobs.lock().expect("job table poisoned").remove(id)
    }

    /// Drops finished jobs whose TTL expired; returns how many went.
    pub fn gc(&self) -> usize {
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        Self::collect(&mut jobs, self.ttl, Instant::now())
    }

    /// Jobs currently queued or running (the live-depth gauge).
    pub fn pending(&self) -> usize {
        self.jobs
            .lock()
            .expect("job table poisoned")
            .values()
            .filter(|entry| {
                matches!(
                    *entry.state.lock().expect("job state poisoned"),
                    JobState::Queued | JobState::Running
                )
            })
            .count()
    }

    /// All entries, finished or not.
    pub fn len(&self) -> usize {
        self.jobs.lock().expect("job table poisoned").len()
    }

    /// Whether the table holds no jobs at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn collect(jobs: &mut HashMap<String, Arc<JobEntry>>, ttl: Duration, now: Instant) -> usize {
        let before = jobs.len();
        jobs.retain(|_, entry| {
            match entry
                .state
                .lock()
                .expect("job state poisoned")
                .finished_at()
            {
                Some(finished) => now.duration_since(finished) < ttl,
                None => true, // queued/running jobs never expire
            }
        });
        before - jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_queued_running_done() {
        let table = JobTable::new(4, Duration::from_secs(600));
        let job = table.create("j1", "fig12").unwrap();
        assert_eq!(job.state().label(), "queued");
        assert_eq!(table.pending(), 1);

        job.mark_running();
        assert_eq!(job.state().label(), "running");
        job.progress.add_total(10);
        job.progress.inc_done();
        assert_eq!((job.progress.done(), job.progress.total()), (1, 10));

        job.complete("application/json", "{\"ok\":true}\n".to_string());
        let polled = table.get("j1").unwrap();
        match polled.state() {
            JobState::Done {
                content_type, body, ..
            } => {
                assert_eq!(content_type, "application/json");
                assert_eq!(body, JobBody::Inline("{\"ok\":true}\n".to_string()));
                assert_eq!(body.len(), 12);
            }
            other => panic!("expected Done, got {other:?}"),
        }
        assert_eq!(table.pending(), 0, "done jobs are not pending");
        assert_eq!(table.len(), 1, "done jobs stay pollable inside the TTL");
    }

    #[test]
    fn spilled_results_keep_only_the_location() {
        let table = JobTable::new(4, Duration::from_secs(600));
        let job = table.create("j1", "fig12").unwrap();
        job.complete_spilled("text/csv", PathBuf::from("/tmp/jobs/j1.body"), 4096);
        match table.get("j1").unwrap().state() {
            JobState::Done {
                content_type, body, ..
            } => {
                assert_eq!(content_type, "text/csv");
                assert_eq!(body.len(), 4096);
                assert!(!body.is_empty());
                match body {
                    JobBody::Spilled { path, bytes } => {
                        assert_eq!(path, PathBuf::from("/tmp/jobs/j1.body"));
                        assert_eq!(bytes, 4096);
                    }
                    other => panic!("expected Spilled, got {other:?}"),
                }
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn failed_jobs_carry_status_and_body() {
        let table = JobTable::new(4, Duration::from_secs(600));
        let job = table.create("j1", "nope").unwrap();
        job.fail(404, "{\"error\":\"unknown experiment\"}\n".to_string());
        match table.get("j1").unwrap().state() {
            JobState::Failed { status, body, .. } => {
                assert_eq!(status, 404);
                assert!(body.contains("unknown experiment"));
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn ttl_gc_drops_finished_jobs_only() {
        // ttl = 0: a finished job expires at the very next GC pass.
        let table = JobTable::new(4, Duration::from_secs(0));
        let done = table.create("done", "fig12").unwrap();
        let live = table.create("live", "fig12").unwrap();
        done.complete("application/json", "{}\n".to_string());
        live.mark_running();
        assert_eq!(table.gc(), 1, "exactly the finished job expires");
        assert!(table.get("done").is_none());
        assert!(table.get("live").is_some(), "running jobs never expire");
    }

    #[test]
    fn ttl_boundary_is_exclusive_at_exactly_ttl() {
        // Pin the <-vs-<= semantics of the GC window: a job that finished
        // exactly `ttl` ago is already expired (the window is
        // half-open, `age < ttl` survives), while one a hair younger
        // stays pollable. Drives `collect` with synthetic clocks so the
        // boundary is hit exactly rather than raced.
        let ttl = Duration::from_secs(10);
        let finished = Instant::now();
        let make = |id: &str| {
            (
                id.to_string(),
                Arc::new(JobEntry {
                    id: id.to_string(),
                    sweep_id: "fig12".to_string(),
                    progress: Arc::new(Progress::new()),
                    state: Mutex::new(JobState::Done {
                        content_type: "application/json".to_string(),
                        body: JobBody::Inline("{}\n".to_string()),
                        finished,
                    }),
                }),
            )
        };

        // Just inside the window: nothing expires.
        let mut jobs: HashMap<_, _> = [make("young")].into_iter().collect();
        let just_inside = finished + ttl - Duration::from_millis(1);
        assert_eq!(JobTable::collect(&mut jobs, ttl, just_inside), 0);
        assert!(jobs.contains_key("young"));

        // Exactly at the boundary: age == ttl fails `age < ttl`, evicted.
        let mut jobs: HashMap<_, _> = [make("boundary")].into_iter().collect();
        assert_eq!(JobTable::collect(&mut jobs, ttl, finished + ttl), 1);
        assert!(jobs.is_empty());

        // A `now` *before* the finish instant (clock went backwards
        // between threads): duration_since saturates to zero, job stays.
        let mut jobs: HashMap<_, _> = [make("future")].into_iter().collect();
        assert_eq!(
            JobTable::collect(&mut jobs, ttl, finished - Duration::from_secs(1)),
            0
        );
        assert!(jobs.contains_key("future"));
    }

    #[test]
    fn full_table_sheds_and_recovers_after_gc() {
        let table = JobTable::new(2, Duration::from_secs(0));
        let first = table.create("a", "fig12").unwrap();
        table.create("b", "fig12").unwrap();
        assert!(table.create("c", "fig12").is_err(), "third job must shed");
        // Finishing one (ttl 0) frees a slot at the next create's GC pass.
        first.complete("application/json", "{}\n".to_string());
        assert!(table.create("c", "fig12").is_ok());
    }

    #[test]
    fn removed_jobs_free_their_slot() {
        let table = JobTable::new(1, Duration::from_secs(600));
        table.create("a", "fig12").unwrap();
        assert!(table.create("b", "fig12").is_err());
        assert!(table.remove("a").is_some());
        assert!(table.remove("a").is_none());
        assert!(table.create("b", "fig12").is_ok());
    }

    #[test]
    fn zero_capacity_always_sheds() {
        let table = JobTable::new(0, Duration::from_secs(600));
        assert!(table.create("a", "fig12").is_err());
        assert!(table.is_empty());
    }
}
