//! Per-chunk state for a fanned-out sweep: the coordinator's scoreboard.
//!
//! A distributed sweep splits its job range into contiguous chunks
//! (`cnt_sweep::chunk_ranges`) and drives each through
//! `Pending → Dispatched → Done` on this board. The board is the *only*
//! synchronization between the coordinator's dispatcher threads (one per
//! healthy peer plus the local executor): each claims work with
//! [`ChunkBoard::claim`], reports success with [`ChunkBoard::complete`],
//! and hands failed chunks back with [`ChunkBoard::requeue`].
//!
//! Re-dispatch falls out of two rules:
//!
//! * a transport failure (or a peer marked Down by `FleetHealth`)
//!   requeues the chunk with a retry delay, so another dispatcher picks
//!   it up;
//! * a chunk `Dispatched` longer than the deadline becomes claimable
//!   again (**work stealing**) — a worker that took the chunk and then
//!   died silently never wedges the job. Stealing can race the original
//!   worker finishing late; [`ChunkBoard::complete`] is idempotent and
//!   chunk results are deterministic, so the race is harmless.

use std::ops::Range;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One claimed chunk: its index on the board plus the job range to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkClaim {
    /// Board index (stable across requeues; journal records use it).
    pub index: usize,
    /// Global job range `lo..hi` of the sweep plan.
    pub range: Range<usize>,
    /// How many times this chunk has been claimed before (0 on the first
    /// attempt) — drives retry-delay escalation.
    pub attempt: u32,
}

#[derive(Debug, Clone)]
enum ChunkState {
    /// Nobody owns the chunk; claimable once `not_before` passes.
    Pending { not_before: Instant },
    /// A dispatcher owns it; stealable after the deadline.
    Dispatched { since: Instant },
    /// Finished (result recorded by the coordinator).
    Done,
}

#[derive(Debug, Clone)]
struct Slot {
    range: Range<usize>,
    state: ChunkState,
    attempts: u32,
}

/// The scoreboard: chunk ranges plus their dispatch states.
#[derive(Debug)]
pub struct ChunkBoard {
    slots: Mutex<Vec<Slot>>,
}

impl ChunkBoard {
    /// A board over `ranges`, every chunk immediately claimable.
    pub fn new(ranges: &[Range<usize>]) -> Self {
        let now = Instant::now();
        Self {
            slots: Mutex::new(
                ranges
                    .iter()
                    .map(|range| Slot {
                        range: range.clone(),
                        state: ChunkState::Pending { not_before: now },
                        attempts: 0,
                    })
                    .collect(),
            ),
        }
    }

    /// Number of chunks on the board.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("board poisoned").len()
    }

    /// Whether the board holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Claims the next runnable chunk: the lowest-indexed ready `Pending`
    /// first, else the lowest-indexed `Dispatched` whose owner has held it
    /// past `deadline` (stealing it). `None` means nothing is claimable
    /// right now — the caller backs off briefly and retries unless
    /// [`ChunkBoard::all_done`].
    pub fn claim(&self, now: Instant, deadline: Duration) -> Option<ChunkClaim> {
        let mut slots = self.slots.lock().expect("board poisoned");
        let pick = |slot: &Slot| match slot.state {
            ChunkState::Pending { not_before } => not_before <= now,
            ChunkState::Dispatched { .. } | ChunkState::Done => false,
        };
        let steal = |slot: &Slot| match slot.state {
            ChunkState::Dispatched { since } => now.duration_since(since) >= deadline,
            ChunkState::Pending { .. } | ChunkState::Done => false,
        };
        let index = slots
            .iter()
            .position(pick)
            .or_else(|| slots.iter().position(steal))?;
        let slot = &mut slots[index];
        let attempt = slot.attempts;
        slot.attempts += 1;
        slot.state = ChunkState::Dispatched { since: now };
        Some(ChunkClaim {
            index,
            range: slot.range.clone(),
            attempt,
        })
    }

    /// Marks a chunk finished. Idempotent: returns `false` when it was
    /// already `Done` (a stolen chunk's original owner reporting late).
    pub fn complete(&self, index: usize) -> bool {
        let mut slots = self.slots.lock().expect("board poisoned");
        let slot = &mut slots[index];
        if matches!(slot.state, ChunkState::Done) {
            return false;
        }
        slot.state = ChunkState::Done;
        true
    }

    /// Hands a failed chunk back, claimable again after `delay`. No-op if
    /// someone completed it in the meantime (stealing race).
    pub fn requeue(&self, index: usize, now: Instant, delay: Duration) {
        let mut slots = self.slots.lock().expect("board poisoned");
        let slot = &mut slots[index];
        if matches!(slot.state, ChunkState::Done) {
            return;
        }
        slot.state = ChunkState::Pending {
            not_before: now + delay,
        };
    }

    /// How many chunks are `Done`.
    pub fn done(&self) -> usize {
        self.slots
            .lock()
            .expect("board poisoned")
            .iter()
            .filter(|s| matches!(s.state, ChunkState::Done))
            .count()
    }

    /// Whether every chunk is `Done`.
    pub fn all_done(&self) -> bool {
        self.slots
            .lock()
            .expect("board poisoned")
            .iter()
            .all(|s| matches!(s.state, ChunkState::Done))
    }

    /// Total claim attempts across all chunks (≥ `len()` once every chunk
    /// has run; the excess counts re-dispatches).
    pub fn attempts(&self) -> u64 {
        self.slots
            .lock()
            .expect("board poisoned")
            .iter()
            .map(|s| u64::from(s.attempts))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEADLINE: Duration = Duration::from_secs(30);

    fn board3() -> ChunkBoard {
        ChunkBoard::new(&[0..10, 10..20, 20..25])
    }

    #[test]
    fn claims_cover_every_chunk_once_in_index_order() {
        let board = board3();
        assert_eq!(board.len(), 3);
        let now = Instant::now();
        let a = board.claim(now, DEADLINE).unwrap();
        let b = board.claim(now, DEADLINE).unwrap();
        let c = board.claim(now, DEADLINE).unwrap();
        assert_eq!((a.index, a.range.clone(), a.attempt), (0, 0..10, 0));
        assert_eq!((b.index, b.range.clone()), (1, 10..20));
        assert_eq!((c.index, c.range.clone()), (2, 20..25));
        // Everything dispatched and inside its deadline: nothing claimable.
        assert!(board.claim(now, DEADLINE).is_none());
        assert!(!board.all_done());
        for claim in [a, b, c] {
            assert!(board.complete(claim.index));
        }
        assert!(board.all_done());
        assert_eq!(board.done(), 3);
        assert_eq!(board.attempts(), 3);
    }

    #[test]
    fn overdue_chunks_are_stolen_and_late_completion_is_idempotent() {
        let board = board3();
        let t0 = Instant::now();
        let original = board.claim(t0, DEADLINE).unwrap();
        board.claim(t0, DEADLINE).unwrap();
        board.claim(t0, DEADLINE).unwrap();
        // Past the deadline, the first dispatched chunk is claimable again.
        let late = t0 + DEADLINE;
        let stolen = board.claim(late, DEADLINE).unwrap();
        assert_eq!(stolen.index, original.index);
        assert_eq!(stolen.attempt, 1, "second attempt at the same chunk");
        // The thief completes it; the original owner's late report is a
        // no-op.
        assert!(board.complete(stolen.index));
        assert!(!board.complete(original.index), "already done");
        assert_eq!(board.done(), 1);
    }

    #[test]
    fn requeued_chunks_respect_their_delay() {
        let ranges = [std::ops::Range { start: 0, end: 5 }];
        let board = ChunkBoard::new(&ranges);
        let t0 = Instant::now();
        let claim = board.claim(t0, DEADLINE).unwrap();
        board.requeue(claim.index, t0, Duration::from_secs(2));
        // Not claimable before the delay passes…
        assert!(board.claim(t0 + Duration::from_secs(1), DEADLINE).is_none());
        // …claimable after, counting the attempt.
        let again = board.claim(t0 + Duration::from_secs(2), DEADLINE).unwrap();
        assert_eq!(again.index, 0);
        assert_eq!(again.attempt, 1);
        // Requeue after completion is a no-op.
        board.complete(0);
        board.requeue(0, t0, Duration::ZERO);
        assert!(board.all_done());
    }

    #[test]
    fn pre_completed_chunks_are_never_claimed() {
        // Journal replay marks chunks done before any dispatcher starts.
        let board = board3();
        assert!(board.complete(1));
        let now = Instant::now();
        let a = board.claim(now, DEADLINE).unwrap();
        let b = board.claim(now, DEADLINE).unwrap();
        assert_eq!((a.index, b.index), (0, 2));
        assert!(board.claim(now, DEADLINE).is_none());
        assert_eq!(board.done(), 1);
        let empty = ChunkBoard::new(&[]);
        assert!(empty.is_empty());
        assert!(empty.all_done(), "an empty board is vacuously done");
    }
}
