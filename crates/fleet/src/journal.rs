//! An append-only, checksummed job journal.
//!
//! The serve layer's crash-safety story for asynchronous sweeps: every
//! job-lifecycle event (submission, chunk completion, result location) is
//! appended here *before* it takes effect in memory, so a SIGKILL'd
//! coordinator replays the journal on restart and resumes exactly the
//! unfinished work. This module owns only the **framing** — records are
//! opaque UTF-8 payloads (the serve layer encodes JSON into them):
//!
//! ```text
//! ┌────────────┬──────────────────┬───────────────┐
//! │ u32 LE len │ u64 LE FNV-1a of │ payload bytes │
//! │ of payload │ the payload      │ (UTF-8)       │
//! └────────────┴──────────────────┴───────────────┘
//! ```
//!
//! Replay is **truncation-tolerant**: a process killed mid-append leaves
//! a short or checksum-broken tail record, and [`replay`] stops cleanly
//! at the last intact record instead of failing — exactly the property an
//! append-only log needs (losing the in-flight record is fine; the work
//! it described simply re-runs, idempotent under the sweep cache's
//! content-hash identity). Appends are flushed to the OS on every record,
//! which survives process death; no fsync, so a *machine* crash may drop
//! the tail — the same re-run-idempotent story covers that too.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// FNV-1a, the workspace's standard content hash (same constants as the
/// sweep-plan fingerprint).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A record payload may not exceed 16 MiB — far above any real job
/// record, and a cheap guard against interpreting corrupt length prefixes
/// as gigabyte allocations during replay.
const MAX_RECORD: u32 = 16 * 1024 * 1024;

/// What [`replay`] recovered from a journal file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Every intact record payload, append order.
    pub records: Vec<String>,
    /// Whether the file ended in a short, corrupt, or non-UTF-8 tail
    /// (i.e. the writer died mid-append). The records before the tail are
    /// still good.
    pub truncated: bool,
}

/// An open journal, appending framed records to one file.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: BufWriter<File>,
}

impl Journal {
    /// Opens (creating parents and the file as needed) `path` for
    /// appending.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
        })
    }

    /// The file this journal appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates write errors; an oversized payload is
    /// [`std::io::ErrorKind::InvalidInput`].
    pub fn append(&mut self, payload: &str) -> std::io::Result<()> {
        let bytes = payload.as_bytes();
        if bytes.len() as u64 > u64::from(MAX_RECORD) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "journal record of {} bytes exceeds {MAX_RECORD}",
                    bytes.len()
                ),
            ));
        }
        self.writer.write_all(&(bytes.len() as u32).to_le_bytes())?;
        self.writer.write_all(&fnv1a(bytes).to_le_bytes())?;
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }
}

/// Reads every intact record out of the journal at `path`. A missing file
/// is an empty journal; a damaged tail sets [`Replay::truncated`] and
/// keeps everything before it.
///
/// # Errors
///
/// Propagates read errors other than "file does not exist".
pub fn replay(path: &Path) -> std::io::Result<Replay> {
    let mut raw = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut raw)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Replay {
                records: Vec::new(),
                truncated: false,
            })
        }
        Err(e) => return Err(e),
    }
    Ok(decode(&raw))
}

/// Decodes framed records from a byte buffer (the replay core, separated
/// for testing against hand-built corruption).
fn decode(raw: &[u8]) -> Replay {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < raw.len() {
        let Some(head) = raw.get(at..at + 12) else {
            return Replay {
                records,
                truncated: true,
            };
        };
        let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(head[4..12].try_into().expect("8 bytes"));
        if len as u64 > u64::from(MAX_RECORD) {
            return Replay {
                records,
                truncated: true,
            };
        }
        let Some(payload) = raw.get(at + 12..at + 12 + len) else {
            return Replay {
                records,
                truncated: true,
            };
        };
        if fnv1a(payload) != sum {
            return Replay {
                records,
                truncated: true,
            };
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            return Replay {
                records,
                truncated: true,
            };
        };
        records.push(text.to_string());
        at += 12 + len;
    }
    Replay {
        records,
        truncated: false,
    }
}

/// Rewrites the journal at `path` to exactly `records` (compaction after
/// a replay folded superseded events away). Atomic: written to a `.tmp`
/// sibling, then renamed over the original, so a crash mid-compaction
/// leaves either the old or the new journal, never a mix.
///
/// # Errors
///
/// Propagates filesystem errors; oversized records as in
/// [`Journal::append`].
pub fn rewrite(path: &Path, records: &[String]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension("tmp");
    {
        let file = File::create(&tmp)?;
        let mut writer = BufWriter::new(file);
        for payload in records {
            let bytes = payload.as_bytes();
            if bytes.len() as u64 > u64::from(MAX_RECORD) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!(
                        "journal record of {} bytes exceeds {MAX_RECORD}",
                        bytes.len()
                    ),
                ));
            }
            writer.write_all(&(bytes.len() as u32).to_le_bytes())?;
            writer.write_all(&fnv1a(bytes).to_le_bytes())?;
            writer.write_all(bytes)?;
        }
        writer.flush()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cnt-journal-{name}-{}", std::process::id()))
    }

    #[test]
    fn append_replay_round_trips_in_order() {
        let path = tmp("round-trip").join("journal.log");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
        let mut journal = Journal::open(&path).unwrap();
        for record in ["{\"a\":1}", "", "{\"b\":\"π unicode\"}"] {
            journal.append(record).unwrap();
        }
        drop(journal);
        let replayed = replay(&path).unwrap();
        assert!(!replayed.truncated);
        assert_eq!(replayed.records, ["{\"a\":1}", "", "{\"b\":\"π unicode\"}"]);
        // Reopening appends after the existing tail.
        Journal::open(&path).unwrap().append("{\"c\":3}").unwrap();
        assert_eq!(replay(&path).unwrap().records.len(), 4);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let replayed = replay(&tmp("missing").join("nope.log")).unwrap();
        assert_eq!(
            replayed,
            Replay {
                records: Vec::new(),
                truncated: false
            }
        );
    }

    #[test]
    fn truncated_tails_keep_the_intact_prefix() {
        // Build two good records, then chop the file at every byte
        // boundary inside the second: the first must always survive.
        let path = tmp("truncate").join("journal.log");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
        let mut journal = Journal::open(&path).unwrap();
        journal.append("first").unwrap();
        let first_len = std::fs::metadata(&path).unwrap().len();
        journal.append("second-record").unwrap();
        drop(journal);
        let full = std::fs::read(&path).unwrap();
        // A cut exactly at the first record's end is a clean journal of
        // one record; every cut inside the second record is a truncation.
        let boundary = decode(&full[..first_len as usize]);
        assert!(!boundary.truncated);
        assert_eq!(boundary.records, ["first"]);
        for cut in first_len as usize + 1..full.len() {
            let replayed = decode(&full[..cut]);
            assert!(replayed.truncated, "cut at {cut} must read as truncated");
            assert_eq!(replayed.records, ["first"], "cut at {cut}");
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn corrupt_checksum_and_absurd_length_stop_replay() {
        let mut raw = Vec::new();
        let good = b"good";
        raw.extend_from_slice(&(good.len() as u32).to_le_bytes());
        raw.extend_from_slice(&fnv1a(good).to_le_bytes());
        raw.extend_from_slice(good);
        // A record whose payload was bit-flipped after framing.
        let bad = b"bitflipped";
        raw.extend_from_slice(&(bad.len() as u32).to_le_bytes());
        raw.extend_from_slice(&(fnv1a(bad) ^ 1).to_le_bytes());
        raw.extend_from_slice(bad);
        let replayed = decode(&raw);
        assert!(replayed.truncated);
        assert_eq!(replayed.records, ["good"]);

        // A length prefix claiming more than MAX_RECORD never allocates.
        let mut absurd = Vec::new();
        absurd.extend_from_slice(&u32::MAX.to_le_bytes());
        absurd.extend_from_slice(&0u64.to_le_bytes());
        let replayed = decode(&absurd);
        assert!(replayed.truncated);
        assert!(replayed.records.is_empty());

        // Non-UTF-8 payload with a valid checksum also stops replay.
        let mut binary = Vec::new();
        let junk = [0xff, 0xfe, 0x00];
        binary.extend_from_slice(&(junk.len() as u32).to_le_bytes());
        binary.extend_from_slice(&fnv1a(&junk).to_le_bytes());
        binary.extend_from_slice(&junk);
        assert!(decode(&binary).truncated);
    }

    #[test]
    fn rewrite_compacts_atomically() {
        let path = tmp("rewrite").join("journal.log");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
        let mut journal = Journal::open(&path).unwrap();
        for i in 0..10 {
            journal.append(&format!("event-{i}")).unwrap();
        }
        drop(journal);
        rewrite(&path, &["folded".to_string()]).unwrap();
        let replayed = replay(&path).unwrap();
        assert!(!replayed.truncated);
        assert_eq!(replayed.records, ["folded"]);
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        // Appends continue after a compaction.
        Journal::open(&path).unwrap().append("after").unwrap();
        assert_eq!(replay(&path).unwrap().records, ["folded", "after"]);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
