//! A unified retry policy for intra-fleet hops and health probes.
//!
//! PR 7's `PeerClient` hard-coded "one retry on transport errors"; the
//! fault-tolerance pass needs the same knob in three places (cache-fill
//! probes, full proxies, background health probes) with different
//! shapes, so the policy is now data: total attempts, a base backoff
//! doubled per extra attempt, a cap, and *deterministic* seeded jitter.
//! Determinism matters here the same way it does for the sweep engine's
//! RNG — chaos tests replay byte-identical schedules from a seed, so a
//! flake is a bug, never "jitter".

use crate::ring::mix;
use std::time::Duration;

/// How many times to try a peer operation and how long to wait between
/// tries.
///
/// Attempt `0` is always immediate. Attempt `n > 0` waits
/// `min(base * 2^(n-1), cap)` scaled by a jitter factor in `[0.5, 1.0)`
/// drawn deterministically from `(jitter_seed, token, n)` — callers pass
/// a per-peer or per-request `token` so concurrent retry ladders do not
/// thunder in lockstep while a given ladder stays replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`>= 1`; `0` behaves as `1`).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles for each attempt after.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay (pre-jitter).
    pub backoff_cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// The PR 7 hop policy: two attempts, no pause between them — a
    /// transient connect race (a peer mid-restart) recovers, a dead peer
    /// fails in two connect timeouts.
    pub fn fast_hop() -> Self {
        Self {
            attempts: 2,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// A single attempt, no retry — for callers that do their own
    /// scheduling (the background health prober).
    pub fn one_shot() -> Self {
        Self {
            attempts: 1,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// Total attempts, never less than one.
    pub fn effective_attempts(&self) -> u32 {
        self.attempts.max(1)
    }

    /// The pause before attempt `attempt` (0-based; attempt 0 is always
    /// `Duration::ZERO`), jittered deterministically by `token`.
    pub fn delay_before(&self, attempt: u32, token: u64) -> Duration {
        if attempt == 0 || self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self
            .backoff_base
            .saturating_mul(1u32 << exp.min(20))
            .min(self.backoff_cap.max(self.backoff_base));
        jittered(raw, self.jitter_seed, token, u64::from(attempt))
    }
}

/// Scales `base` by a factor in `[0.5, 1.0)` drawn deterministically
/// from the SplitMix64-mixed `(seed, token, round)` triple — shared by
/// retry ladders and the health prober's backoff schedule.
pub fn jittered(base: Duration, seed: u64, token: u64, round: u64) -> Duration {
    let word = mix(seed ^ token.rotate_left(17) ^ round.rotate_left(41));
    // Map the top 53 bits to [0.5, 1.0): half the nominal delay at most
    // saved, full determinism from the seed.
    let frac = 0.5 + (word >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
    base.mul_f64(frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_zero_is_immediate() {
        let policy = RetryPolicy {
            attempts: 4,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(1),
            jitter_seed: 7,
        };
        assert_eq!(policy.delay_before(0, 42), Duration::ZERO);
    }

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let policy = RetryPolicy {
            attempts: 8,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(400),
            jitter_seed: 7,
        };
        // Jitter is in [0.5, 1.0), so attempt n's delay sits inside
        // [nominal/2, nominal).
        let nominal = [100u64, 200, 400, 400, 400];
        for (i, nominal_ms) in nominal.iter().enumerate() {
            let d = policy.delay_before(i as u32 + 1, 3).as_millis() as u64;
            assert!(
                d >= nominal_ms / 2 && d < *nominal_ms,
                "attempt {}: delay {d} ms outside [{}, {}) ms",
                i + 1,
                nominal_ms / 2,
                nominal_ms
            );
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_token() {
        let base = Duration::from_millis(200);
        assert_eq!(jittered(base, 1, 2, 3), jittered(base, 1, 2, 3));
        assert_ne!(jittered(base, 1, 2, 3), jittered(base, 2, 2, 3));
        assert_ne!(jittered(base, 1, 2, 3), jittered(base, 1, 9, 3));
    }

    #[test]
    fn fast_hop_matches_the_legacy_shape() {
        let policy = RetryPolicy::fast_hop();
        assert_eq!(policy.effective_attempts(), 2);
        assert_eq!(policy.delay_before(1, 0), Duration::ZERO);
    }

    #[test]
    fn zero_attempts_still_run_once() {
        let mut policy = RetryPolicy::one_shot();
        policy.attempts = 0;
        assert_eq!(policy.effective_attempts(), 1);
    }
}
