//! Loopback fleet integration: three real `cnt-serve` instances joined
//! into one consistent-hash fleet. The acceptance gate is single
//! computation — an identical run sent through both non-owners computes
//! exactly once, on the shard owner, with the second hop answered from
//! the owner's LRU via the peer cache-fill probe.

use cnt_interconnect::experiments;
use cnt_serve::{fleet::HashRing, Config, FleetConfig, RouteMode, Server, ShutdownHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One HTTP/1.1 exchange; returns (status, headers, body).
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response head");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = http(addr, "POST", path, body);
    (status, body)
}

/// Reads one healthz counter out of the flat JSON body.
fn counter(health: &str, name: &str) -> u64 {
    let tail = health
        .split(&format!("\"{name}\":"))
        .nth(1)
        .unwrap_or_else(|| panic!("no counter {name} in {health}"));
    tail.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter value")
}

/// Reads one Prometheus sample (exact line-prefix match).
fn sample(metrics: &str, series: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(series) && l.as_bytes().get(series.len()) == Some(&b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no sample {series} in {metrics}"))
}

struct Instance {
    addr: SocketAddr,
    handle: ShutdownHandle,
    thread: std::thread::JoinHandle<()>,
}

impl Instance {
    fn runs(&self) -> u64 {
        let (status, _, health) = http(self.addr, "GET", "/v1/healthz", "");
        assert_eq!(status, 200);
        counter(&health, "runs")
    }

    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("server thread");
    }
}

/// Binds `n` ephemeral-port instances and joins them into one fleet.
fn fleet(n: usize, mode: RouteMode) -> (Vec<Instance>, Vec<String>) {
    let servers: Vec<Server> = (0..n)
        .map(|_| {
            Server::bind(Config {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                queue_capacity: 16,
                cache_capacity: 64,
                ..Config::default()
            })
            .expect("bind ephemeral port")
        })
        .collect();
    let peers: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let instances = servers
        .into_iter()
        .enumerate()
        .map(|(index, server)| {
            let mut config = FleetConfig::new(peers.clone(), index);
            config.mode = mode;
            server.enable_fleet(config).expect("join fleet");
            let addr = server.local_addr();
            let handle = server.handle();
            let thread = std::thread::spawn(move || server.serve().expect("serve"));
            Instance {
                addr,
                handle,
                thread,
            }
        })
        .collect();
    (instances, peers)
}

/// The shard owner of an experiment's parameter point under this fleet.
fn owner_of(peers: &[String], id: &str, sets: &[(String, String)]) -> usize {
    let (_, ctx) = experiments::resolve_context(id, None, sets).expect("resolvable point");
    HashRing::new(peers)
        .owner_of_hash(ctx.params.content_hash())
        .expect("non-empty ring")
}

#[test]
fn identical_runs_through_both_non_owners_compute_exactly_once() {
    let (instances, peers) = fleet(3, RouteMode::Proxy);
    let owner = owner_of(&peers, "table1", &[]);
    let non_owners: Vec<usize> = (0..3).filter(|i| *i != owner).collect();

    // The same default point through both non-owners.
    let expected = format!(
        "{}\n",
        experiments::run_to_json("table1", None, &[]).unwrap()
    );
    for &i in &non_owners {
        let (status, body) = post(instances[i].addr, "/v1/experiments/table1/run", "{}");
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, expected, "proxied body drifted from the CLI");
    }

    // Exactly one computation, on the owner; the second hop was a
    // cache-fill hit against the owner's LRU.
    assert_eq!(
        instances[owner].runs(),
        1,
        "owner must compute exactly once"
    );
    for &i in &non_owners {
        assert_eq!(instances[i].runs(), 0, "non-owner {i} computed locally");
    }
    let mut fill_hits = 0;
    let mut proxied = 0;
    for &i in &non_owners {
        let (status, _, metrics) = http(instances[i].addr, "GET", "/v1/metrics", "");
        assert_eq!(status, 200);
        cnt_obs::promcheck::validate(&metrics)
            .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{metrics}"));
        fill_hits += sample(&metrics, "cnt_fleet_peer_fill_total{result=\"hit\"}");
        proxied += sample(&metrics, "cnt_fleet_route_total{outcome=\"proxied\"}");
    }
    assert!(fill_hits >= 1, "no peer cache-fill hit was recorded");
    assert_eq!(proxied, 2, "both non-owner requests must count as proxied");

    // The owner answers the same point locally without another run.
    let (status, body) = post(instances[owner].addr, "/v1/experiments/table1/run", "{}");
    assert_eq!(status, 200);
    assert_eq!(body, expected);
    assert_eq!(instances[owner].runs(), 1, "owner re-ran a cached point");
    let (_, _, metrics) = http(instances[owner].addr, "GET", "/v1/metrics", "");
    assert!(
        sample(&metrics, "cnt_fleet_route_total{outcome=\"local\"}") >= 1,
        "{metrics}"
    );

    for instance in instances {
        instance.stop();
    }
}

#[test]
fn redirect_mode_answers_307_with_the_owner_location() {
    let (instances, peers) = fleet(3, RouteMode::Redirect);
    let owner = owner_of(&peers, "table1", &[]);
    let non_owner = (0..3).find(|i| *i != owner).unwrap();

    let (status, headers, body) = http(
        instances[non_owner].addr,
        "POST",
        "/v1/experiments/table1/run",
        "{}",
    );
    assert_eq!(status, 307, "{body}");
    let target = format!("http://{}/v1/experiments/table1/run", peers[owner]);
    assert!(
        headers.iter().any(|(n, v)| n == "location" && *v == target),
        "redirect without the owner Location: {headers:?}"
    );
    assert!(body.contains(&target), "{body}");
    assert_eq!(instances[non_owner].runs(), 0, "redirects never compute");

    // Following the redirect reaches the owner and computes there.
    let (status, body) = post(instances[owner].addr, "/v1/experiments/table1/run", "{}");
    assert_eq!(status, 200);
    assert_eq!(
        body,
        format!(
            "{}\n",
            experiments::run_to_json("table1", None, &[]).unwrap()
        )
    );
    let (_, _, metrics) = http(instances[non_owner].addr, "GET", "/v1/metrics", "");
    assert!(
        sample(&metrics, "cnt_fleet_route_total{outcome=\"redirected\"}") >= 1,
        "{metrics}"
    );

    for instance in instances {
        instance.stop();
    }
}

#[test]
fn a_proxied_run_yields_one_trace_with_spans_from_both_instances() {
    let (instances, peers) = fleet(3, RouteMode::Proxy);
    let owner = owner_of(&peers, "table1", &[]);
    let relay = (0..3).find(|i| *i != owner).unwrap();

    // One run through a non-owner: the relay proxies to the owner, and
    // the X-Trace-Id minted at the relay's ingress rides the hop.
    let (status, headers, body) = http(
        instances[relay].addr,
        "POST",
        "/v1/experiments/table1/run",
        "{}",
    );
    assert_eq!(status, 200, "{body}");
    let trace_id = headers
        .iter()
        .find(|(n, _)| n == "x-trace-id")
        .map(|(_, v)| v.clone())
        .expect("proxied 200 carries X-Trace-Id");

    // The assembled tree — read from the relay — contains records from
    // BOTH instances: the relay's ingress serve.request and the owner's
    // remote child, linked parent→child across the hop.
    let (status, _, tree) = http(
        instances[relay].addr,
        "GET",
        &format!("/v1/trace/{trace_id}"),
        "",
    );
    assert_eq!(status, 200, "{tree}");
    experiments::format::check_json_stream(&tree).expect("trace tree is valid JSON");
    for instance in [relay, owner] {
        assert!(
            tree.contains(&format!("\"instance\":\"{}\"", peers[instance])),
            "no record from instance {instance} ({}):\n{tree}",
            peers[instance]
        );
    }
    // Exactly one root (the relay's ingress); the owner's record nests
    // under it rather than floating as a second root.
    let tree_array = tree.split("\"tree\":[").nth(1).expect("tree array");
    let mut depth = 0u32;
    let mut roots = 0u32;
    for c in tree_array.chars() {
        match c {
            '{' | '[' => {
                if depth == 0 && c == '{' {
                    roots += 1;
                }
                depth += 1;
            }
            '}' | ']' => {
                if depth == 0 {
                    break; // the `]` closing the tree array itself
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    assert_eq!(
        roots, 1,
        "owner record did not parent under the relay ingress:\n{tree}"
    );

    // The same tree is reachable from the owner too (peer fan-out).
    let (status, _, from_owner) = http(
        instances[owner].addr,
        "GET",
        &format!("/v1/trace/{trace_id}"),
        "",
    );
    assert_eq!(status, 200);
    assert!(
        from_owner.contains(&format!("\"instance\":\"{}\"", peers[relay])),
        "{from_owner}"
    );

    // Satellite: the X-Request-Id minted at the relay rode the proxy hop
    // — the owner's stored record reuses it instead of minting afresh.
    let request_id = headers
        .iter()
        .find(|(n, _)| n == "x-request-id")
        .map(|(_, v)| v.clone())
        .expect("X-Request-Id");
    let shared = tree
        .matches(&format!("\"request_id\":\"{request_id}\""))
        .count();
    let total = tree.matches("\"request_id\":\"").count();
    assert!(
        shared >= 2,
        "owner record minted its own request id:\n{tree}"
    );
    assert_eq!(
        shared, total,
        "every record must share the relay's request id:\n{tree}"
    );

    for instance in instances {
        instance.stop();
    }
}

#[test]
fn a_dead_owner_degrades_to_local_compute() {
    let (mut instances, peers) = fleet(2, RouteMode::Proxy);

    // Find a point the *other* instance owns, as seen from instance 0.
    let survivor = 0usize;
    let sets = (0..200)
        .map(|seed| vec![("seed".to_string(), seed.to_string())])
        .find(|sets| owner_of(&peers, "table1", sets) != survivor)
        .expect("some seed hashes to the peer shard");
    let body = format!("{{\"params\": {{\"seed\": {}}}}}", sets[0].1);

    // Kill the owner, then route the point through the survivor: the
    // fill probe fails fast and the request computes locally.
    instances.remove(1).stop();
    let (status, answer) = post(
        instances[survivor].addr,
        "/v1/experiments/table1/run",
        &body,
    );
    assert_eq!(status, 200, "{answer}");
    let expected = format!(
        "{}\n",
        experiments::run_to_json("table1", None, &sets).unwrap()
    );
    assert_eq!(answer, expected, "degraded body drifted from the CLI");
    assert_eq!(instances[survivor].runs(), 1, "survivor must compute");

    let (_, _, metrics) = http(instances[survivor].addr, "GET", "/v1/metrics", "");
    assert!(
        sample(&metrics, "cnt_fleet_peer_fill_total{result=\"error\"}") >= 1,
        "dead-peer probe must count as a fill error:\n{metrics}"
    );
    assert!(
        sample(&metrics, "cnt_fleet_route_total{outcome=\"local\"}") >= 1,
        "{metrics}"
    );

    instances.remove(0).stop();
}
