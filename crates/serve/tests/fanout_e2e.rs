//! Crash-safe distributed sweeps, end to end: real multi-instance
//! fleets fanning one `POST /v1/sweeps/{id}` out as chunks, surviving
//! chaos-refused chunk posts and a worker dying mid-job, and — with a
//! data dir — resuming a killed coordinator from its journal with the
//! finished chunks recalled from the content-hash chunk store instead
//! of recomputed. The gate throughout is byte-identity: every merged
//! report must equal the single-instance computation exactly.

use cnt_interconnect::experiments;
use cnt_serve::{
    fleet::{journal, ChaosConfig},
    Config, FleetConfig, RouteMode, Server, ShutdownHandle,
};
use cnt_sweep::{chunk_ranges, ResultStore};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// One HTTP/1.1 exchange; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response head");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, body.to_string())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    http(addr, "POST", path, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, "GET", path, "")
}

/// Reads one Prometheus sample (exact line-prefix match).
fn sample(metrics: &str, series: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(series) && l.as_bytes().get(series.len()) == Some(&b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no sample {series} in {metrics}"))
}

/// A validated `/v1/metrics` scrape.
fn scrape(addr: SocketAddr) -> String {
    let (status, metrics) = get(addr, "/v1/metrics");
    assert_eq!(status, 200);
    cnt_obs::promcheck::validate(&metrics)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{metrics}"));
    metrics
}

/// Extracts the `"job":"…"` id from a 202 submission body.
fn job_id(body: &str) -> String {
    body.split("\"job\":\"")
        .nth(1)
        .and_then(|tail| tail.split('"').next())
        .unwrap_or_else(|| panic!("no job id in {body}"))
        .to_string()
}

/// Polls `/v1/jobs/{rid}/result` on `addr` until the job lands.
fn await_result(addr: SocketAddr, rid: &str) -> String {
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = get(addr, &format!("/v1/jobs/{rid}/result"));
        match status {
            200 => return body,
            202 => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "job {rid} never finished: {body}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("unexpected result status {other} for {rid}: {body}"),
        }
    }
}

struct Instance {
    addr: SocketAddr,
    handle: ShutdownHandle,
    thread: std::thread::JoinHandle<()>,
}

impl Instance {
    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("server thread");
    }
}

fn spawn(server: Server) -> Instance {
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.serve().expect("serve"));
    Instance {
        addr,
        handle,
        thread,
    }
}

/// Binds `n` ephemeral-port instances into one proxy-mode fleet, with a
/// per-index hook to tune chaos before each instance joins.
fn fleet_with(n: usize, tweak: impl Fn(usize, &mut FleetConfig)) -> Vec<Instance> {
    let servers: Vec<Server> = (0..n)
        .map(|_| {
            Server::bind(Config {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                queue_capacity: 16,
                cache_capacity: 64,
                ..Config::default()
            })
            .expect("bind ephemeral port")
        })
        .collect();
    let peers: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    servers
        .into_iter()
        .enumerate()
        .map(|(index, server)| {
            let mut config = FleetConfig::new(peers.clone(), index);
            config.mode = RouteMode::Proxy;
            tweak(index, &mut config);
            server.enable_fleet(config).expect("join fleet");
            spawn(server)
        })
        .collect()
}

/// The sweep point every test uses: a pinned trial count and the
/// full-table disk cache disabled, so chunked execution actually runs.
const SWEEP_BODY: &str = r#"{"params": {"trials": 48, "cache_dir": ""}}"#;

fn sweep_sets() -> Vec<(String, String)> {
    vec![
        ("trials".to_string(), "48".to_string()),
        ("cache_dir".to_string(), String::new()),
    ]
}

/// The single-instance ground truth for [`SWEEP_BODY`], rendered the way
/// the job result route renders JSON.
fn expected_report() -> String {
    let (_, ctx) = experiments::resolve_context("fig12", None, &sweep_sets()).unwrap();
    let (_, sweep) = experiments::sweep_variant("fig12").unwrap();
    format!("{}\n", sweep.run_sweep(&ctx).unwrap().report.to_json())
}

#[test]
fn fanned_out_sweep_is_byte_identical_and_readable_fleet_wide() {
    let instances = fleet_with(3, |_, _| {});
    let expected = expected_report();

    let (status, submit) = post(instances[0].addr, "/v1/sweeps/fig12", SWEEP_BODY);
    assert_eq!(status, 202, "{submit}");
    let rid = job_id(&submit);
    assert_eq!(
        await_result(instances[0].addr, &rid),
        expected,
        "fanned-out merge drifted from the single-instance run"
    );

    // The coordinator really dispatched: with six chunks and three
    // concurrent lanes, every lane lands at least one.
    let metrics = scrape(instances[0].addr);
    assert!(
        sample(&metrics, "cnt_fleet_chunks_total{outcome=\"remote\"}") >= 1,
        "no chunk ran remotely:\n{metrics}"
    );
    assert!(
        sample(&metrics, "cnt_fleet_chunks_total{outcome=\"local\"}") >= 1,
        "no chunk ran locally:\n{metrics}"
    );

    // Any instance answers for any job: the peers relay both the status
    // poll and the result fetch to whoever holds the job.
    for worker in &instances[1..] {
        let (status, polled) = get(worker.addr, &format!("/v1/jobs/{rid}"));
        assert_eq!(status, 200, "{polled}");
        assert!(polled.contains("\"status\":\"done\""), "{polled}");
        let (status, relayed) = get(worker.addr, &format!("/v1/jobs/{rid}/result"));
        assert_eq!(status, 200, "{relayed}");
        assert_eq!(relayed, expected, "relayed result drifted");
    }

    for instance in instances {
        instance.stop();
    }
}

#[test]
fn chaos_refused_chunk_posts_redispatch_without_changing_bytes() {
    // Seeded chaos refuses every outbound hop from the coordinator: all
    // chunk posts fail, every chunk requeues, and the local lane drains
    // the board — the job still finishes with exactly the right bytes.
    let instances = fleet_with(2, |index, config| {
        if index == 0 {
            config.chaos = Some(ChaosConfig::parse("seed=7,refuse=1").unwrap());
        }
    });

    let (status, submit) = post(instances[0].addr, "/v1/sweeps/fig12", SWEEP_BODY);
    assert_eq!(status, 202, "{submit}");
    let rid = job_id(&submit);
    assert_eq!(
        await_result(instances[0].addr, &rid),
        expected_report(),
        "chaos changed the merged bytes"
    );

    let metrics = scrape(instances[0].addr);
    assert!(
        sample(&metrics, "cnt_fleet_chunks_total{outcome=\"requeued\"}") >= 1,
        "refused chunk posts must requeue:\n{metrics}"
    );
    assert_eq!(
        sample(&metrics, "cnt_fleet_chunks_total{outcome=\"remote\"}"),
        0,
        "nothing can land remotely under refuse=1:\n{metrics}"
    );
    assert!(
        sample(&metrics, "cnt_fleet_chunks_total{outcome=\"local\"}") >= 1,
        "{metrics}"
    );

    for instance in instances {
        instance.stop();
    }
}

#[test]
fn a_worker_dying_mid_job_redispatches_to_survivors() {
    let mut instances = fleet_with(3, |_, _| {});
    let expected = expected_report();

    let (status, submit) = post(instances[0].addr, "/v1/sweeps/fig12", SWEEP_BODY);
    assert_eq!(status, 202, "{submit}");
    let rid = job_id(&submit);
    // Kill one worker while the job is (most likely) in flight. Chunks
    // it claimed past the drain either answered already or fail their
    // next dispatch and requeue onto the survivors — both end in the
    // same merged bytes.
    instances.remove(2).stop();
    assert_eq!(
        await_result(instances[0].addr, &rid),
        expected,
        "losing a worker changed the merged bytes"
    );

    for instance in instances {
        instance.stop();
    }
}

#[test]
fn a_restarted_coordinator_resumes_from_journal_and_chunk_store() {
    let dir = std::env::temp_dir().join(format!("cnt-fanout-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Fake the first life of a coordinator that was SIGKILL'd mid-job:
    // the journal holds the accepted submission, and exactly one chunk
    // made it into the durable chunk store before the kill.
    let (_, ctx) = experiments::resolve_context("fig12", None, &sweep_sets()).unwrap();
    let sweep = experiments::chunkable_sweep("fig12", &ctx).unwrap();
    let n_jobs = sweep.jobs();
    let ranges = chunk_ranges(n_jobs, 8.clamp(1, n_jobs));
    assert!(ranges.len() >= 2, "sweep too small to test resume");
    let first = ranges[0].clone();
    let key = sweep.chunk_key(first.start, first.end);
    let rows = sweep.run_range(first.start, first.end).unwrap();
    ResultStore::on_disk(dir.join("sweep-cache"))
        .put(&key, sweep.columns(), rows)
        .unwrap();
    let rid = "00feed-000001";
    let submitted = format!(
        "{{\"event\":\"submitted\",\"job\":\"{rid}\",\"experiment\":\"fig12\",\
         \"sets\":[[\"trials\",\"48\"],[\"cache_dir\",\"\"]],\"format\":\"json\"}}"
    );
    journal::Journal::open(&dir.join("journal.log"))
        .unwrap()
        .append(&submitted)
        .unwrap();

    // Restart: the journal replays, the unfinished job re-enters the
    // queue, and the pre-seeded chunk recalls from the store.
    let server = Server::bind(Config {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 64,
        data_dir: Some(PathBuf::from(&dir)),
        ..Config::default()
    })
    .expect("bind with data dir");
    let coordinator = spawn(server);
    let expected = expected_report();
    assert_eq!(
        await_result(coordinator.addr, rid),
        expected,
        "resumed job drifted from the single-instance run"
    );

    let metrics = scrape(coordinator.addr);
    assert_eq!(sample(&metrics, "cnt_serve_journal_replayed_total"), 1);
    // The seeded chunk resumed (a [`ResultStore::get_or_compute`] hit —
    // visible in the global sweep-cache counter too); the rest computed.
    assert_eq!(
        sample(&metrics, "cnt_fleet_chunks_total{outcome=\"resumed\"}"),
        1,
        "{metrics}"
    );
    assert_eq!(
        sample(&metrics, "cnt_fleet_chunks_total{outcome=\"local\"}"),
        (ranges.len() - 1) as u64,
        "{metrics}"
    );
    assert!(
        sample(&metrics, "cnt_sweep_cache_hits_total") >= 1,
        "chunk resume must count as a sweep cache hit:\n{metrics}"
    );
    coordinator.stop();

    // Second restart, after the job finished: the journal now folds to a
    // terminal job, so the result serves straight from the spilled body
    // with zero chunks touched.
    let replayed = journal::replay(&dir.join("journal.log")).unwrap();
    assert!(
        replayed
            .records
            .iter()
            .any(|r| r.contains("\"event\":\"job_done\"")),
        "journal missing the terminal record: {:?}",
        replayed.records
    );
    let server = Server::bind(Config {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 64,
        data_dir: Some(PathBuf::from(&dir)),
        ..Config::default()
    })
    .expect("rebind with data dir");
    let coordinator = spawn(server);
    let (status, body) = get(coordinator.addr, &format!("/v1/jobs/{rid}/result"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, expected, "spill-served result drifted");
    let metrics = scrape(coordinator.addr);
    assert_eq!(sample(&metrics, "cnt_serve_journal_replayed_total"), 1);
    for outcome in ["local", "remote", "requeued", "resumed"] {
        assert_eq!(
            sample(
                &metrics,
                &format!("cnt_fleet_chunks_total{{outcome=\"{outcome}\"}}")
            ),
            0,
            "a finished job must not touch chunks on restart:\n{metrics}"
        );
    }
    coordinator.stop();

    let _ = std::fs::remove_dir_all(&dir);
}
