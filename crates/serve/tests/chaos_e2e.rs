//! Fault-tolerance acceptance: real multi-instance fleets under peer
//! death and deterministic seeded fault injection. The gate is that the
//! fleet answers **every** client request with a body byte-identical to
//! the direct computation while an instance is dead or lame, marks the
//! peer Down after K consecutive transport failures, stops paying for
//! hot-path probes while it is Down, and heals back to Up through the
//! backoff prober once the instance returns.

use cnt_interconnect::experiments;
use cnt_serve::{
    fleet::{ChaosConfig, HashRing, HealthPolicy},
    Config, FleetConfig, RouteMode, Server, ShutdownHandle,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One HTTP/1.1 exchange; returns (status, headers, body).
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response head");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, Vec::new(), body.to_string())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = http(addr, "POST", path, body);
    (status, body)
}

/// Reads one healthz counter out of the flat JSON body.
fn counter(health: &str, name: &str) -> u64 {
    let tail = health
        .split(&format!("\"{name}\":"))
        .nth(1)
        .unwrap_or_else(|| panic!("no counter {name} in {health}"));
    tail.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter value")
}

/// Reads one Prometheus sample (exact line-prefix match).
fn sample(metrics: &str, series: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(series) && l.as_bytes().get(series.len()) == Some(&b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no sample {series} in {metrics}"))
}

/// A validated `/v1/metrics` scrape.
fn scrape(addr: SocketAddr) -> String {
    let (status, _, metrics) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    cnt_obs::promcheck::validate(&metrics)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{metrics}"));
    metrics
}

struct Instance {
    addr: SocketAddr,
    handle: ShutdownHandle,
    thread: std::thread::JoinHandle<()>,
}

impl Instance {
    fn runs(&self) -> u64 {
        let (status, _, health) = http(self.addr, "GET", "/v1/healthz", "");
        assert_eq!(status, 200);
        counter(&health, "runs")
    }

    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("server thread");
    }
}

/// Binds `n` ephemeral-port instances into one fleet, with a per-index
/// hook to tune health/chaos before each instance joins.
fn fleet_with(
    n: usize,
    mode: RouteMode,
    tweak: impl Fn(usize, &mut FleetConfig),
) -> (Vec<Instance>, Vec<String>) {
    let servers: Vec<Server> = (0..n)
        .map(|_| {
            Server::bind(Config {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                queue_capacity: 16,
                cache_capacity: 64,
                ..Config::default()
            })
            .expect("bind ephemeral port")
        })
        .collect();
    let peers: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let instances = servers
        .into_iter()
        .enumerate()
        .map(|(index, server)| {
            let mut config = FleetConfig::new(peers.clone(), index);
            config.mode = mode;
            tweak(index, &mut config);
            server.enable_fleet(config).expect("join fleet");
            spawn(server)
        })
        .collect();
    (instances, peers)
}

/// Boots one instance on a *specific* address and rejoins the fleet —
/// the restart half of the kill/heal cycle. Only works because the
/// listener binds with `SO_REUSEADDR` (see `cnt_serve::net`).
fn restart_instance(
    addr: &str,
    peers: Vec<String>,
    index: usize,
    tweak: impl Fn(usize, &mut FleetConfig),
) -> Instance {
    let deadline = Instant::now() + Duration::from_secs(5);
    let server = loop {
        match Server::bind(Config {
            addr: addr.to_string(),
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            ..Config::default()
        }) {
            Ok(server) => break server,
            Err(_) if Instant::now() < deadline => {
                // The dying incarnation may not have released the port
                // yet; SO_REUSEADDR only has to beat TIME_WAIT, not a
                // still-open listener.
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("rebind {addr}: {e}"),
        }
    };
    let mut config = FleetConfig::new(peers, index);
    tweak(index, &mut config);
    server.enable_fleet(config).expect("rejoin fleet");
    spawn(server)
}

fn spawn(server: Server) -> Instance {
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.serve().expect("serve"));
    Instance {
        addr,
        handle,
        thread,
    }
}

/// The shard owner of a `table1` point under this fleet.
fn owner_of(peers: &[String], sets: &[(String, String)]) -> usize {
    let (_, ctx) = experiments::resolve_context("table1", None, sets).expect("resolvable point");
    HashRing::new(peers)
        .owner_of_hash(ctx.params.content_hash())
        .expect("non-empty ring")
}

/// The first `count` seeds whose `table1` point the given peer owns.
fn seeds_owned_by(peers: &[String], owner: usize, count: usize) -> Vec<u64> {
    let seeds: Vec<u64> = (0..10_000)
        .filter(|seed| owner_of(peers, &[("seed".to_string(), seed.to_string())]) == owner)
        .take(count)
        .collect();
    assert_eq!(seeds.len(), count, "not enough owned seeds in range");
    seeds
}

/// Drives one `table1` run at `seed` and asserts the body is
/// byte-identical to the direct computation.
fn run_and_check(addr: SocketAddr, seed: u64) {
    let (status, body) = post(
        addr,
        "/v1/experiments/table1/run",
        &format!("{{\"params\": {{\"seed\": {seed}}}}}"),
    );
    assert_eq!(status, 200, "{body}");
    let sets = vec![("seed".to_string(), seed.to_string())];
    let expected = format!(
        "{}\n",
        experiments::run_to_json("table1", None, &sets).unwrap()
    );
    assert_eq!(body, expected, "seed {seed}: body drifted from the CLI");
}

/// A HealthPolicy fast enough for a test: Down after 3 failures, first
/// re-probe within ~50 ms, half-second ceiling, fixed jitter seed.
fn fast_health() -> HealthPolicy {
    HealthPolicy {
        down_after: 3,
        probe_base: Duration::from_millis(50),
        probe_cap: Duration::from_millis(500),
        jitter_seed: 1,
    }
}

/// The main acceptance cycle: kill → K failures → Down → degraded
/// serving with frozen hot-path probes → restart → prober heals → Up →
/// routed traffic resumes. Every client request answers 200 with the
/// exact direct-computation body throughout.
#[test]
fn a_killed_peer_goes_down_serves_degraded_and_heals_after_restart() {
    let tweak = |_: usize, config: &mut FleetConfig| config.health = fast_health();
    let (mut instances, peers) = fleet_with(3, RouteMode::Proxy, tweak);
    let front = 0usize;
    let victim = 1usize;
    let seeds = seeds_owned_by(&peers, victim, 14);
    let victim_series = |state: &str| {
        format!(
            "cnt_fleet_peer_state{{peer=\"{}\",state=\"{state}\"}}",
            peers[victim]
        )
    };

    // Kill the victim before any traffic, then drive K = 3 of its
    // points through the front: each fill fails (one transport failure
    // per request), every answer is still correct.
    let victim_addr = peers[victim].clone();
    instances.remove(victim).stop();
    for &seed in &seeds[..3] {
        run_and_check(instances[front].addr, seed);
    }
    let metrics = scrape(instances[front].addr);
    assert_eq!(
        sample(&metrics, &victim_series("down")),
        1,
        "3 consecutive transport failures must mark the peer Down:\n{metrics}"
    );
    assert_eq!(sample(&metrics, &victim_series("up")), 0, "{metrics}");
    assert!(
        sample(&metrics, "cnt_fleet_peer_transitions_total{to=\"down\"}") >= 1,
        "{metrics}"
    );

    // While Down, routing never touches the hot path: the fill-error
    // count freezes and every owned request degrades to local compute.
    let fill_errors = sample(&metrics, "cnt_fleet_peer_fill_total{result=\"error\"}");
    let degraded_before = sample(&metrics, "cnt_fleet_route_total{outcome=\"degraded\"}");
    for &seed in &seeds[3..13] {
        run_and_check(instances[front].addr, seed);
    }
    // Wait for the background prober to visit the dead peer at least
    // once (first probe is due ~25-50 ms after Down), then check the
    // hot-path counters: the probes must not have touched them.
    let deadline = Instant::now() + Duration::from_secs(5);
    let metrics = loop {
        let metrics = scrape(instances[front].addr);
        if sample(&metrics, "cnt_fleet_probe_total{result=\"error\"}") >= 1 {
            break metrics;
        }
        assert!(
            Instant::now() < deadline,
            "the background prober never probed the dead peer:\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(
        sample(&metrics, "cnt_fleet_peer_fill_total{result=\"error\"}"),
        fill_errors,
        "a Down peer must not be probed on the hot path:\n{metrics}"
    );
    assert_eq!(
        sample(&metrics, "cnt_fleet_route_total{outcome=\"degraded\"}"),
        degraded_before + 10,
        "{metrics}"
    );
    assert_eq!(instances[front].runs(), 13, "front computed every request");

    // Restart the victim on its old port (SO_REUSEADDR) and wait for
    // the backoff prober to restore it to Up.
    let revived = restart_instance(&victim_addr, peers.clone(), victim, tweak);
    let deadline = Instant::now() + Duration::from_secs(10);
    let healed = loop {
        let metrics = scrape(instances[front].addr);
        if sample(&metrics, &victim_series("up")) == 1 {
            break metrics;
        }
        assert!(
            Instant::now() < deadline,
            "prober never restored the restarted peer:\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        sample(&healed, "cnt_fleet_probe_total{result=\"ok\"}") >= 1,
        "{healed}"
    );
    assert!(
        sample(&healed, "cnt_fleet_peer_transitions_total{to=\"up\"}") >= 1,
        "{healed}"
    );

    // Routed traffic resumes: a fresh owned point proxies to the
    // revived owner and computes there, not on the front.
    let proxied_before = sample(&healed, "cnt_fleet_route_total{outcome=\"proxied\"}");
    run_and_check(instances[front].addr, seeds[13]);
    let metrics = scrape(instances[front].addr);
    assert_eq!(
        sample(&metrics, "cnt_fleet_route_total{outcome=\"proxied\"}"),
        proxied_before + 1,
        "healed peer must take routed traffic again:\n{metrics}"
    );
    assert_eq!(instances[front].runs(), 13, "front must stop computing");
    assert_eq!(revived.runs(), 1, "revived owner must compute");

    revived.stop();
    for instance in instances {
        instance.stop();
    }
}

/// 100 % connection refusal on the front's outbound hops: every request
/// still answers correctly from local compute, nothing is proxied, and
/// the injected failures drive the (actually healthy) peer Down.
#[test]
fn refused_connections_degrade_to_correct_local_answers() {
    let (instances, peers) = fleet_with(2, RouteMode::Proxy, |index, config| {
        config.health = fast_health();
        if index == 0 {
            config.chaos = Some(ChaosConfig::parse("seed=7,refuse=1").unwrap());
        }
    });
    let seeds = seeds_owned_by(&peers, 1, 6);
    for &seed in &seeds {
        run_and_check(instances[0].addr, seed);
    }

    let metrics = scrape(instances[0].addr);
    assert_eq!(instances[0].runs(), 6, "every request computes locally");
    assert_eq!(instances[1].runs(), 0, "no hop ever reached the owner");
    assert_eq!(
        sample(&metrics, "cnt_fleet_route_total{outcome=\"proxied\"}"),
        0,
        "{metrics}"
    );
    assert_eq!(
        sample(&metrics, "cnt_fleet_peer_fill_total{result=\"hit\"}"),
        0,
        "{metrics}"
    );
    // The first K = 3 refusals are consecutive (the chaos-free prober
    // only re-probes *Down* peers, so nothing resets the count early).
    assert!(
        sample(&metrics, "cnt_fleet_peer_transitions_total{to=\"down\"}") >= 1,
        "injected refusals must trip the failure detector:\n{metrics}"
    );

    for instance in instances {
        instance.stop();
    }
}

/// Pure added latency is not a failure: hops slow down but complete,
/// the peer stays Up, and requests still proxy to the owner.
#[test]
fn injected_latency_slows_hops_without_tripping_the_detector() {
    let (instances, peers) = fleet_with(2, RouteMode::Proxy, |index, config| {
        if index == 0 {
            config.chaos = Some(ChaosConfig::parse("seed=11,latency=1,latency_ms=20").unwrap());
        }
    });
    let seeds = seeds_owned_by(&peers, 1, 3);
    for &seed in &seeds {
        run_and_check(instances[0].addr, seed);
    }

    let metrics = scrape(instances[0].addr);
    assert_eq!(instances[0].runs(), 0, "latency alone must not degrade");
    assert_eq!(instances[1].runs(), 3, "owner computes every point");
    assert_eq!(
        sample(&metrics, "cnt_fleet_route_total{outcome=\"proxied\"}"),
        3,
        "{metrics}"
    );
    assert_eq!(
        sample(
            &metrics,
            &format!("cnt_fleet_peer_state{{peer=\"{}\",state=\"up\"}}", peers[1])
        ),
        1,
        "a slow-but-correct peer must stay Up:\n{metrics}"
    );

    for instance in instances {
        instance.stop();
    }
}

/// 100 % response truncation: every hop dies mid-body, the client sees
/// only complete, correct answers from the local fallback.
#[test]
fn truncated_responses_fall_back_to_local_compute() {
    let (instances, peers) = fleet_with(2, RouteMode::Proxy, |index, config| {
        config.health = fast_health();
        if index == 0 {
            config.chaos = Some(ChaosConfig::parse("seed=3,truncate=1").unwrap());
        }
    });
    let seeds = seeds_owned_by(&peers, 1, 3);
    for &seed in &seeds {
        run_and_check(instances[0].addr, seed);
    }
    assert_eq!(instances[0].runs(), 3, "every request computes locally");
    assert_eq!(
        sample(
            &scrape(instances[0].addr),
            "cnt_fleet_route_total{outcome=\"proxied\"}"
        ),
        0,
        "a truncated hop must never count as proxied"
    );

    for instance in instances {
        instance.stop();
    }
}

/// `/v1/healthz` reports the fleet health section — and omits it
/// entirely when the instance is not in a fleet.
#[test]
fn healthz_reports_peer_states_only_in_fleet_mode() {
    let (instances, peers) = fleet_with(2, RouteMode::Proxy, |_, _| {});
    let (status, _, health) = http(instances[0].addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200);
    assert!(health.contains("\"fleet\":{\"self_index\":0"), "{health}");
    assert!(health.contains("\"mode\":\"proxy\""), "{health}");
    for peer in &peers {
        assert!(health.contains(&format!("\"addr\":\"{peer}\"")), "{health}");
    }
    assert_eq!(health.matches("\"state\":\"up\"").count(), 2, "{health}");
    assert!(health.contains("\"consecutive_failures\":0"), "{health}");
    for instance in instances {
        instance.stop();
    }

    let solo = spawn(
        Server::bind(Config {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            ..Config::default()
        })
        .expect("bind ephemeral port"),
    );
    let (status, _, health) = http(solo.addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200);
    assert!(
        !health.contains("\"fleet\""),
        "solo healthz must omit the fleet section: {health}"
    );
    solo.stop();
}
