//! Socket-level integration: the server is exercised over real TCP with a
//! minimal `TcpStream` client — route shapes, CLI byte-identity for every
//! registry id, coalescing, LRU hot paths, 503 backpressure, determinism
//! across server instances, and graceful shutdown draining.

use cnt_interconnect::experiments::{self, registry};
use cnt_serve::{Config, Server, ShutdownHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// One HTTP/1.1 exchange; returns (status, headers, body).
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response head");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let (status, _, body) = http(addr, "GET", path, "");
    (status, body)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = http(addr, "POST", path, body);
    (status, body)
}

/// Reads one healthz counter out of the flat JSON body.
fn counter(health: &str, name: &str) -> u64 {
    let tail = health
        .split(&format!("\"{name}\":"))
        .nth(1)
        .unwrap_or_else(|| panic!("no counter {name} in {health}"));
    tail.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter value")
}

fn config() -> Config {
    Config {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_capacity: 32,
        cache_capacity: 64,
        ..Config::default()
    }
}

fn start(server: Server) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle, thread)
}

#[test]
fn health_catalog_info_and_error_routes_have_canonical_shapes() {
    let (addr, handle, thread) = start(Server::bind(config()).unwrap());

    let (status, health) = get(addr, "/v1/healthz");
    assert_eq!(status, 200);
    assert!(health.starts_with("{\"status\":\"ok\""), "{health}");
    assert_eq!(
        counter(&health, "experiments"),
        experiments::catalog().count() as u64
    );

    let (status, catalog) = get(addr, "/v1/experiments");
    assert_eq!(status, 200);
    experiments::format::check_json_stream(&catalog).expect("catalog is valid JSON");
    for id in experiments::catalog() {
        assert!(
            catalog.contains(&format!("\"id\":\"{id}\"")),
            "{id} missing"
        );
    }

    let (status, info) = get(addr, "/v1/experiments/fig12");
    assert_eq!(status, 200);
    assert!(info.contains("\"key\":\"length_um\"") && info.contains("\"name\":\"doped-local\""));

    // Unknown id: 404 with the canonical UnknownExperiment message.
    let (status, missing) = get(addr, "/v1/experiments/fig99");
    assert_eq!(status, 404);
    let expected = cnt_interconnect::Error::UnknownExperiment("fig99".to_string()).to_string();
    assert!(missing.contains(&expected), "{missing}");
    let (status, _) = post(addr, "/v1/experiments/fig99/run", "{}");
    assert_eq!(status, 404);

    // Unknown route vs wrong method.
    let (status, _) = get(addr, "/v2/nope");
    assert_eq!(status, 404);
    let (status, _) = post(addr, "/v1/experiments", "{}");
    assert_eq!(status, 405);

    // Malformed body and invalid overrides are 400s with CLI messages.
    let (status, bad) = post(addr, "/v1/experiments/fig12/run", "{not json");
    assert_eq!(status, 400);
    assert!(bad.contains("invalid JSON"), "{bad}");
    let (status, bad) = post(
        addr,
        "/v1/experiments/fig12/run",
        r#"{"params":{"bogus":1}}"#,
    );
    assert_eq!(status, 400);
    let expected =
        experiments::resolve_context("fig12", None, &[("bogus".to_string(), "1".to_string())])
            .map(|_| ())
            .unwrap_err()
            .to_string();
    assert!(
        bad.contains(&expected.replace('"', "\\\"")) || bad.contains(&expected),
        "{bad}"
    );
    let (status, bad) = post(addr, "/v1/experiments/fig12/run", r#"{"params":{"nc":99}}"#);
    assert_eq!(status, 400);
    assert!(bad.contains("'nc'") && bad.contains("99"), "{bad}");

    handle.shutdown();
    thread.join().unwrap();
}

/// The acceptance gate: for every registry id, the served default-run JSON
/// body is byte-identical to what `repro <id> --format json` prints, and
/// presets/overrides/CSV behave exactly like their CLI spellings.
#[test]
fn run_bodies_are_byte_identical_to_the_cli_for_every_id() {
    let (addr, handle, thread) = start(Server::bind(config()).unwrap());

    for id in experiments::catalog() {
        let (status, body) = post(addr, &format!("/v1/experiments/{id}/run"), "{}");
        assert_eq!(status, 200, "{id}: {body}");
        let cli = format!("{}\n", experiments::run_to_json(id, None, &[]).unwrap());
        assert_eq!(body, cli, "{id} body drifted from the CLI");
    }

    // A preset in the body equals its --preset CLI spelling, overrides win.
    let (status, body) = post(
        addr,
        "/v1/experiments/table1/run",
        r#"{"preset": "projected"}"#,
    );
    assert_eq!(status, 200);
    let cli = format!(
        "{}\n",
        experiments::run_to_json("table1", Some("projected"), &[]).unwrap()
    );
    assert_eq!(body, cli);

    let (status, body) = post(
        addr,
        "/v1/experiments/fig12/run",
        r#"{"params": {"nc": 6, "length_um": 200}}"#,
    );
    assert_eq!(status, 200);
    let sets = vec![
        ("nc".to_string(), "6".to_string()),
        ("length_um".to_string(), "200".to_string()),
    ];
    let cli = format!(
        "{}\n",
        experiments::run_to_json("fig12", None, &sets).unwrap()
    );
    assert_eq!(body, cli);

    // CSV matches the CLI's --format csv stream (print!, no extra newline).
    let (status, headers, body) = http(
        addr,
        "POST",
        "/v1/experiments/table1/run",
        r#"{"format": "csv"}"#,
    );
    assert_eq!(status, 200);
    assert!(headers
        .iter()
        .any(|(n, v)| n == "content-type" && v == "text/csv"));
    assert_eq!(body, experiments::run("table1").unwrap().to_csv());

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn concurrent_identical_requests_coalesce_and_hot_repeats_hit_the_cache() {
    // A runner slow enough that parallel identical requests overlap.
    let server = Server::bind_with_runner(config(), |exp, ctx| {
        std::thread::sleep(Duration::from_millis(200));
        exp.run(ctx)
    })
    .unwrap();
    let (addr, handle, thread) = start(server);

    let clients = 6;
    let barrier = Arc::new(Barrier::new(clients));
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let (status, body) =
                        post(addr, "/v1/experiments/table1/run", r#"{"params":{}}"#);
                    assert_eq!(status, 200);
                    body
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "coalesced bodies must be byte-identical");
    }
    let (_, health) = get(addr, "/v1/healthz");
    let runs = counter(&health, "runs");
    assert!(
        runs < clients as u64,
        "coalescing never fired: {runs} runs for {clients} requests ({health})"
    );
    // Every request either ran, attached to an in-flight run, or hit the
    // cache — no request fell through any other path.
    assert_eq!(
        runs + counter(&health, "coalesced") + counter(&health, "cache_hits"),
        clients as u64,
        "{health}"
    );

    // A repeated hot request is served from the LRU without re-running.
    let hits_before = counter(&health, "cache_hits");
    let (status, body) = post(addr, "/v1/experiments/table1/run", r#"{"params":{}}"#);
    assert_eq!(status, 200);
    assert_eq!(body, bodies[0]);
    let (_, health_after) = get(addr, "/v1/healthz");
    assert_eq!(
        counter(&health_after, "runs"),
        runs,
        "hot request re-ran the kernel"
    );
    assert_eq!(counter(&health_after, "cache_hits"), hits_before + 1);

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn parallel_mixed_points_are_deterministic_across_server_instances() {
    let points: Vec<(&str, String)> = vec![
        ("table1", "{}".to_string()),
        ("table1", r#"{"params": {"width_nm": 50}}"#.to_string()),
        (
            "fig05",
            r#"{"params": {"sites": 49, "seed": 7}}"#.to_string(),
        ),
        (
            "fig05",
            r#"{"params": {"sites": 49, "seed": 7}}"#.to_string(),
        ),
        ("fig12", r#"{"preset": "doped-local"}"#.to_string()),
        ("fig01", "{}".to_string()),
    ];
    let mut rounds: Vec<Vec<String>> = Vec::new();
    for _ in 0..2 {
        let (addr, handle, thread) = start(Server::bind(config()).unwrap());
        let barrier = Arc::new(Barrier::new(points.len()));
        let bodies: Vec<String> = std::thread::scope(|scope| {
            let workers: Vec<_> = points
                .iter()
                .map(|(id, body)| {
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        let (status, body) = post(addr, &format!("/v1/experiments/{id}/run"), body);
                        assert_eq!(status, 200, "{id}: {body}");
                        body
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        handle.shutdown();
        thread.join().unwrap();
        rounds.push(bodies);
    }
    assert_eq!(
        rounds[0], rounds[1],
        "served bodies must be identical across server instances"
    );
    // The duplicated fig05 point yields identical bytes within a round;
    // distinct points yield distinct bytes.
    assert_eq!(rounds[0][2], rounds[0][3]);
    assert_ne!(rounds[0][0], rounds[0][1]);
}

#[test]
fn a_full_queue_answers_503_with_retry_after() {
    let server = Server::bind_with_runner(
        Config {
            workers: 1,
            queue_capacity: 1,
            ..config()
        },
        |exp, ctx| {
            std::thread::sleep(Duration::from_millis(400));
            exp.run(ctx)
        },
    )
    .unwrap();
    let (addr, handle, thread) = start(server);

    let clients = 6;
    let barrier = Arc::new(Barrier::new(clients));
    let results: Vec<(u16, Vec<(String, String)>)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    // Distinct parameter points, so nothing coalesces.
                    let body = format!("{{\"params\": {{\"seed\": {}}}}}", 100 + i);
                    let (status, headers, _) =
                        http(addr, "POST", "/v1/experiments/table1/run", &body);
                    (status, headers)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let ok = results.iter().filter(|(s, _)| *s == 200).count();
    let busy: Vec<_> = results.iter().filter(|(s, _)| *s == 503).collect();
    assert!(ok >= 1, "at least the leader must finish");
    assert!(
        !busy.is_empty(),
        "a 1-worker/1-slot server taking 6 parallel requests must shed load: {results:?}"
    );
    for (_, headers) in &busy {
        assert!(
            headers.iter().any(|(n, v)| n == "retry-after" && v == "1"),
            "503 without Retry-After: {headers:?}"
        );
    }
    let (_, health) = get(addr, "/v1/healthz");
    assert!(counter(&health, "rejected") >= busy.len() as u64);

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let server = Server::bind_with_runner(config(), |exp, ctx| {
        std::thread::sleep(Duration::from_millis(300));
        exp.run(ctx)
    })
    .unwrap();
    let (addr, handle, thread) = start(server);

    let client = std::thread::spawn(move || post(addr, "/v1/experiments/fig01/run", "{}"));
    // Let the request reach a worker, then ask the server to stop.
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();
    thread.join().expect("serve() must return after shutdown");
    let (status, body) = client.join().expect("client");
    assert_eq!(status, 200, "in-flight work must drain, got: {body}");
    assert_eq!(
        body,
        format!(
            "{}\n",
            experiments::run_to_json("fig01", None, &[]).unwrap()
        )
    );
    // The listener is really gone.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // A TIME_WAIT accept can still connect; a request must fail then.
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let _ = write!(s, "GET /v1/healthz HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            s.read_to_string(&mut out).map(|n| n == 0).unwrap_or(true)
        }
    );
}

#[test]
fn a_panicking_kernel_answers_500_and_does_not_wedge_the_coalescer() {
    // The runner panics for one specific point and is slow enough that a
    // second identical request attaches to the in-flight leader.
    let server = Server::bind_with_runner(config(), |exp, ctx| {
        std::thread::sleep(Duration::from_millis(150));
        if ctx.u64("seed") == 666 {
            panic!("kernel blew up");
        }
        exp.run(ctx)
    })
    .unwrap();
    let (addr, handle, thread) = start(server);

    let barrier = Arc::new(Barrier::new(2));
    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let (status, body) = post(
                        addr,
                        "/v1/experiments/table1/run",
                        r#"{"params": {"seed": 666}}"#,
                    );
                    assert!(body.contains("panicked"), "{body}");
                    status
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    assert_eq!(statuses, [500, 500], "leader and waiter both get the 500");

    // The flight was retired and the server still serves: the same point
    // recomputes (and panics again) instead of hanging, and healthy
    // points are untouched.
    let (status, _) = post(
        addr,
        "/v1/experiments/table1/run",
        r#"{"params": {"seed": 666}}"#,
    );
    assert_eq!(status, 500);
    let (status, _) = post(addr, "/v1/experiments/table1/run", "{}");
    assert_eq!(status, 200);

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn a_slow_drip_client_is_cut_off_at_the_request_deadline() {
    let server = Server::bind(Config {
        request_deadline: Duration::from_millis(300),
        ..config()
    })
    .unwrap();
    let (addr, handle, thread) = start(server);

    // Send a request head one fragment at a time, slower than the budget.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = std::time::Instant::now();
    let mut cut_off = false;
    for _ in 0..30 {
        if stream.write_all(b"GET /v1/he").is_err() {
            cut_off = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let mut out = String::new();
    let disconnected = cut_off || matches!(stream.read_to_string(&mut out), Ok(0) | Err(_));
    assert!(
        disconnected && out.is_empty(),
        "drip client must be dropped without a response: {out:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "worker was pinned far past the deadline"
    );
    // And the server still answers well-behaved clients afterwards.
    let (status, _) = get(addr, "/v1/healthz");
    assert_eq!(status, 200);

    handle.shutdown();
    thread.join().unwrap();
}

/// Reads one `Content-Length`-framed response off a kept-alive stream.
fn read_framed(reader: &mut std::io::BufReader<TcpStream>) -> (u16, Vec<(String, String)>, String) {
    use std::io::BufRead;
    let mut head = String::new();
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read head") > 0, "EOF");
        if line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
    }
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .expect("content-length");
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).expect("read body");
    (status, headers, String::from_utf8(body).expect("utf-8"))
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let (addr, handle, thread) = start(Server::bind(config()).unwrap());

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = std::io::BufReader::new(stream);

    // Three requests back-to-back on the same connection; the first two
    // are advertised keep-alive, the final Connection: close ends it.
    for round in 0..3 {
        let closing = round == 2;
        let conn = if closing { "close" } else { "keep-alive" };
        write!(
            writer,
            "GET /v1/healthz HTTP/1.1\r\nHost: t\r\nConnection: {conn}\r\n\r\n"
        )
        .expect("send");
        let (status, headers, body) = read_framed(&mut reader);
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"status\":\"ok\""), "{body}");
        let advertised = headers
            .iter()
            .find(|(n, _)| n == "connection")
            .map(|(_, v)| v.as_str())
            .expect("connection header");
        assert_eq!(advertised, if closing { "close" } else { "keep-alive" });
    }
    // After Connection: close the server really hangs up.
    let mut rest = String::new();
    assert_eq!(reader.read_to_string(&mut rest).expect("EOF"), 0);

    // The reuse counter saw the two follow-up requests.
    let (status, _, metrics) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    let reuses = metrics
        .lines()
        .find(|l| l.starts_with("cnt_serve_keepalive_reuses_total "))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("reuse counter");
    assert_eq!(reuses, 2, "{metrics}");

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn http10_closes_by_default_and_keeps_alive_on_request() {
    let (addr, handle, thread) = start(Server::bind(config()).unwrap());

    // Plain HTTP/1.0: one response, then EOF.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(stream, "GET /v1/healthz HTTP/1.0\r\nHost: t\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.contains("Connection: close"), "{raw}");

    // HTTP/1.0 with an explicit keep-alive is honoured.
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    write!(
        writer,
        "GET /v1/healthz HTTP/1.0\r\nHost: t\r\nConnection: keep-alive\r\n\r\n"
    )
    .unwrap();
    let (status, headers, _) = read_framed(&mut reader);
    assert_eq!(status, 200);
    assert!(headers
        .iter()
        .any(|(n, v)| n == "connection" && v == "keep-alive"));
    // A second request still works on the same socket.
    write!(writer, "GET /v1/healthz HTTP/1.0\r\nHost: t\r\n\r\n").unwrap();
    let (status, _, _) = read_framed(&mut reader);
    assert_eq!(status, 200);

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn metrics_scrape_exposes_cache_and_scheduler_counters() {
    let (addr, handle, thread) = start(Server::bind(config()).unwrap());

    // One run = one miss; its repeat = one hit.
    let (status, _) = post(addr, "/v1/experiments/fig01/run", "{}");
    assert_eq!(status, 200);
    let (status, _) = post(addr, "/v1/experiments/fig01/run", "{}");
    assert_eq!(status, 200);

    let (status, headers, metrics) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    assert!(headers
        .iter()
        .any(|(n, v)| n == "content-type" && v.starts_with("text/plain")));
    let sample = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(&format!("cnt_serve_{name} ")))
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no sample {name} in {metrics}"))
    };
    assert_eq!(sample("runs_total"), 1);
    assert_eq!(sample("cache_misses_total"), 1);
    assert_eq!(sample("cache_hits_total"), 1);
    assert_eq!(sample("coalesced_total"), 0);
    assert_eq!(sample("cached_bodies"), 1);
    assert_eq!(sample("workers"), 4);
    assert_eq!(sample("experiments"), experiments::catalog().count() as u64);
    assert!(metrics.contains("# TYPE cnt_serve_requests_total counter"));
    assert!(metrics.contains("# TYPE cnt_serve_cached_bodies gauge"));

    // Wrong method on the metrics route is a 405, unknown route a 404.
    let (status, _, _) = http(addr, "POST", "/v1/metrics", "");
    assert_eq!(status, 405);

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn registry_snapshot_sanity() {
    // The e2e suite leans on these ids; fail loudly if the registry moves.
    for id in ["table1", "fig01", "fig05", "fig12"] {
        assert!(registry().get(id).is_ok(), "{id} missing from registry");
    }
}

#[test]
fn metrics_scrape_is_validator_clean_and_requests_carry_ids() {
    let (addr, handle, thread) = start(Server::bind(config()).unwrap());

    // Drive every response class: a run (200), a missing route (404),
    // and a wrong method (405).
    let (status, headers, _) = http(addr, "POST", "/v1/experiments/table1/run", "{}");
    assert_eq!(status, 200);
    let rid = headers
        .iter()
        .find(|(n, _)| n == "x-request-id")
        .map(|(_, v)| v.clone())
        .expect("200 carries X-Request-Id");
    let (status, headers, _) = http(addr, "GET", "/v1/nosuch", "");
    assert_eq!(status, 404);
    let rid_404 = headers
        .iter()
        .find(|(n, _)| n == "x-request-id")
        .map(|(_, v)| v.clone())
        .expect("404 carries X-Request-Id");
    assert_ne!(rid, rid_404, "request ids are per-request");
    let (status, _, _) = http(addr, "POST", "/v1/metrics", "");
    assert_eq!(status, 405);

    let (status, headers, text) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    assert!(
        headers.iter().any(|(n, _)| n == "x-request-id"),
        "metrics scrape carries X-Request-Id too"
    );

    // The whole exposition — server registry plus the global cnt-obs
    // registry — passes the Prometheus validator.
    cnt_obs::promcheck::validate(&text)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));

    // PR5's series survive byte-compatibly…
    for name in [
        "cnt_serve_requests_total",
        "cnt_serve_runs_total",
        "cnt_serve_cache_hits_total",
        "cnt_serve_cache_misses_total",
        "cnt_serve_coalesced_total",
        "cnt_serve_rejected_total",
        "cnt_serve_keepalive_reuses_total",
        "cnt_serve_cached_bodies",
        "cnt_serve_workers",
        "cnt_serve_queue_capacity",
        "cnt_serve_experiments",
    ] {
        assert!(
            text.contains(&format!("\n{name} ")) || text.starts_with(&format!("{name} ")),
            "legacy sample '{name}' missing:\n{text}"
        );
    }
    // …and the new families are present: per-status counters (the 404
    // and 405 above are counted), latency histograms, labeled
    // per-experiment runs, and the uptime gauge.
    assert!(
        text.contains("cnt_serve_requests_total{status=\"200\"}"),
        "{text}"
    );
    assert!(
        text.contains("cnt_serve_requests_total{status=\"404\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("cnt_serve_requests_total{status=\"405\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("cnt_serve_experiment_runs_total{id=\"table1\"} 1"),
        "{text}"
    );
    for histogram in [
        "cnt_serve_queue_wait_seconds",
        "cnt_serve_request_seconds",
        "cnt_serve_run_seconds",
        "cnt_serve_serialize_seconds",
        "cnt_serve_write_seconds",
    ] {
        assert!(
            text.contains(&format!("# TYPE {histogram} histogram")),
            "{histogram} missing:\n{text}"
        );
        assert!(text.contains(&format!("{histogram}_bucket{{le=\"+Inf\"}}")));
    }
    assert!(text.contains("cnt_serve_uptime_seconds"), "{text}");
    // The run above performed one computation; its histogram count says so.
    assert!(text.contains("cnt_serve_run_seconds_count 1"), "{text}");

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn probes_survive_queue_saturation() {
    // 1 worker, 1 queue slot, slow kernel: run requests shed, but the
    // reserved probe lane answers /v1/healthz and /v1/metrics before
    // queue admission, so operators can still see the overload.
    let server = Server::bind_with_runner(
        Config {
            workers: 1,
            queue_capacity: 1,
            ..config()
        },
        |exp, ctx| {
            std::thread::sleep(Duration::from_millis(600));
            exp.run(ctx)
        },
    )
    .unwrap();
    let (addr, handle, thread) = start(server);

    let clients = 6;
    let barrier = Arc::new(Barrier::new(clients + 1));
    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    // Distinct points, so nothing coalesces.
                    let body = format!("{{\"params\": {{\"seed\": {}}}}}", 200 + i);
                    post(addr, "/v1/experiments/table1/run", &body).0
                })
            })
            .collect();
        barrier.wait();
        // Mid-saturation: the worker is pinned and the queue is full,
        // yet both probes answer 200 from the reserved lane.
        std::thread::sleep(Duration::from_millis(150));
        let (status, health) = get(addr, "/v1/healthz");
        assert_eq!(status, 200, "healthz must bypass admission: {health}");
        assert!(health.starts_with("{\"status\":\"ok\""), "{health}");
        let (status, metrics) = get(addr, "/v1/metrics");
        assert_eq!(status, 200, "metrics must bypass admission");
        assert!(metrics.contains("cnt_serve_requests_total"), "{metrics}");
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let shed = statuses.iter().filter(|s| **s == 503).count();
    assert!(
        shed >= 1,
        "6 parallel slow runs on a 1-worker/1-slot server must shed: {statuses:?}"
    );
    // Probes answered during saturation are not counted as rejections.
    let (_, health) = get(addr, "/v1/healthz");
    assert_eq!(counter(&health, "rejected"), shed as u64, "{health}");

    handle.shutdown();
    thread.join().unwrap();
}

/// Extracts the `"job":"…"` id from a 202 submission body.
fn job_id(body: &str) -> String {
    body.split("\"job\":\"")
        .nth(1)
        .and_then(|tail| tail.split('"').next())
        .unwrap_or_else(|| panic!("no job id in {body}"))
        .to_string()
}

#[test]
fn async_sweep_jobs_run_to_a_byte_identical_result() {
    let (addr, handle, thread) = start(Server::bind(config()).unwrap());

    // Warm the TCP path so the submit latency sample is the route alone.
    let _ = get(addr, "/v1/healthz");
    let body = r#"{"params": {"trials": 32, "cache_dir": ""}}"#;
    let started = std::time::Instant::now();
    let (status, submit) = post(addr, "/v1/sweeps/fig12", body);
    let elapsed = started.elapsed();
    assert_eq!(status, 202, "{submit}");
    assert!(
        elapsed < Duration::from_millis(100),
        "submission must return immediately, took {elapsed:?}"
    );
    assert!(submit.contains("\"status\":\"queued\""), "{submit}");
    let rid = job_id(&submit);
    assert!(submit.contains(&format!("\"poll\":\"/v1/jobs/{rid}\"")));

    // Poll until the job lands; the result route answers 202 + status
    // while in flight and the finished body afterwards.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let result = loop {
        let (status, body) = get(addr, &format!("/v1/jobs/{rid}/result"));
        match status {
            200 => break body,
            202 => {
                assert!(
                    body.contains("queued") || body.contains("running"),
                    "{body}"
                );
                assert!(
                    std::time::Instant::now() < deadline,
                    "job never finished: {body}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("unexpected result status {other}: {body}"),
        }
    };

    // The terminal status carries the full trial progress.
    let (status, polled) = get(addr, &format!("/v1/jobs/{rid}"));
    assert_eq!(status, 200);
    assert!(polled.contains("\"status\":\"done\""), "{polled}");
    assert!(polled.contains("\"experiment\":\"fig12\""), "{polled}");
    let done = counter(&polled, "done");
    assert_eq!(done, counter(&polled, "total"), "{polled}");
    assert!(done >= 1, "progress counters never moved: {polled}");

    // Byte-identity: the job body equals a direct registry sweep at the
    // same point, rendered the way the CLI prints it.
    let sets = vec![
        ("trials".to_string(), "32".to_string()),
        ("cache_dir".to_string(), String::new()),
    ];
    let (_, ctx) = experiments::resolve_context("fig12", None, &sets).unwrap();
    let (_, sweep) = experiments::sweep_variant("fig12").unwrap();
    let direct = sweep.run_sweep(&ctx).unwrap();
    assert_eq!(result, format!("{}\n", direct.report.to_json()));

    // Lifecycle counters made it to the exposition, validator-clean.
    let (_, metrics) = get(addr, "/v1/metrics");
    cnt_obs::promcheck::validate(&metrics)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{metrics}"));
    assert!(
        metrics.contains("cnt_serve_jobs_total{status=\"queued\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("cnt_serve_jobs_total{status=\"done\"} 1"),
        "{metrics}"
    );
    assert!(metrics.contains("cnt_serve_jobs_pending 0"), "{metrics}");

    // Error shapes: unknown job, unknown id, and an id with no sweep.
    let (status, missing) = get(addr, "/v1/jobs/nosuchjob");
    assert_eq!(status, 404);
    assert!(missing.contains("no such job"), "{missing}");
    let (status, _) = get(addr, "/v1/jobs/nosuchjob/result");
    assert_eq!(status, 404);
    let (status, _) = post(addr, "/v1/sweeps/fig99", "{}");
    assert_eq!(status, 404);
    let (status, no_sweep) = post(addr, "/v1/sweeps/table1", "{}");
    assert_eq!(status, 400, "{no_sweep}");

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn a_full_job_table_sheds_with_the_canonical_body() {
    let server = Server::bind(Config {
        jobs_capacity: 0,
        ..config()
    })
    .unwrap();
    let (addr, handle, thread) = start(server);

    let (status, headers, body) = http(addr, "POST", "/v1/sweeps/fig12", "{}");
    assert_eq!(status, 503);
    assert!(
        headers.iter().any(|(n, v)| n == "retry-after" && v == "1"),
        "job-table shed without Retry-After: {headers:?}"
    );
    // Same canonical message shape as the worker-queue shed.
    assert_eq!(
        body,
        "{\"error\":\"server busy: the job table is full, retry shortly\"}\n"
    );

    handle.shutdown();
    thread.join().unwrap();
}

/// Like [`http`] but with extra raw request-header lines (each
/// `Name: value`, no trailing CRLF).
fn http_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra: &[(&str, &str)],
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let extra_lines: String = extra.iter().map(|(n, v)| format!("{n}: {v}\r\n")).collect();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n{extra_lines}Connection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response head");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn responses_carry_trace_ids_and_the_trace_route_assembles_the_tree() {
    let (addr, handle, thread) = start(Server::bind(config()).unwrap());

    // A minted trace: every response advertises X-Trace-Id, and a run's
    // id resolves to a stored tree with the serve.request span.
    let (status, headers, _) = http(addr, "POST", "/v1/experiments/table1/run", "{}");
    assert_eq!(status, 200);
    let minted = header(&headers, "x-trace-id").expect("200 carries X-Trace-Id");
    assert_eq!(minted.len(), 16, "{minted}");
    assert!(minted.chars().all(|c| c.is_ascii_hexdigit()), "{minted}");
    let (status, tree) = get(addr, &format!("/v1/trace/{minted}"));
    assert_eq!(status, 200, "{tree}");
    experiments::format::check_json_stream(&tree).expect("trace tree is valid JSON");
    assert!(tree.contains("\"kind\":\"trace\""), "{tree}");
    assert!(tree.contains("POST /v1/experiments/table1/run"), "{tree}");
    assert!(tree.contains("serve.request"), "{tree}");

    // A propagated trace: the caller's ids are adopted and echoed, and
    // the stored record links to the caller's span as its parent.
    let (status, headers, _) = http_with(
        addr,
        "POST",
        "/v1/experiments/fig01/run",
        &[
            ("X-Trace-Id", "00000000deadbeef"),
            ("X-Parent-Span", "00000000cafebabe"),
        ],
        "{}",
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-trace-id"), Some("00000000deadbeef"));
    let (status, tree) = get(addr, "/v1/trace/00000000deadbeef");
    assert_eq!(status, 200);
    assert!(tree.contains("\"parent\":\"00000000cafebabe\""), "{tree}");
    assert!(tree.contains("POST /v1/experiments/fig01/run"), "{tree}");

    // Error shapes: a malformed id is a 400, an unknown one a 404.
    let (status, bad) = get(addr, "/v1/trace/zzz");
    assert_eq!(status, 400, "{bad}");
    let (status, _) = get(addr, "/v1/trace/0123456789abcdef");
    assert_eq!(status, 404);

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn async_jobs_attach_to_the_submitting_trace() {
    let (addr, handle, thread) = start(Server::bind(config()).unwrap());

    let (status, headers, submit) = http_with(
        addr,
        "POST",
        "/v1/sweeps/fig12",
        &[("X-Trace-Id", "00000000feedc0de")],
        r#"{"params": {"trials": 16, "cache_dir": ""}}"#,
    );
    assert_eq!(status, 202, "{submit}");
    assert_eq!(header(&headers, "x-trace-id"), Some("00000000feedc0de"));
    let rid = job_id(&submit);

    // Wait for the job to land, then read the assembled trace: both the
    // submission's serve.request record and the worker's job record are
    // under the one trace id, and the job's sweep.job spans survived the
    // executor's thread hop.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = get(addr, &format!("/v1/jobs/{rid}"));
        assert_eq!(status, 200);
        if body.contains("\"status\":\"done\"") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job stuck: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
    let (status, tree) = get(addr, "/v1/trace/00000000feedc0de");
    assert_eq!(status, 200);
    experiments::format::check_json_stream(&tree).expect("trace tree is valid JSON");
    assert!(tree.contains("POST /v1/sweeps/fig12"), "{tree}");
    assert!(tree.contains("\"name\":\"job fig12\""), "{tree}");
    assert!(tree.contains("sweep.job"), "{tree}");

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn metrics_history_scrapes_into_rings_and_renders_valid_json() {
    let server = Server::bind(Config {
        history_interval: Duration::from_millis(50),
        ..config()
    })
    .unwrap();
    let (addr, handle, thread) = start(server);

    let (status, _) = post(addr, "/v1/experiments/table1/run", "{}");
    assert_eq!(status, 200);
    // Let the self-scraper take a few samples.
    std::thread::sleep(Duration::from_millis(400));

    let (status, headers, history) = http(addr, "GET", "/v1/metrics/history", "");
    assert_eq!(status, 200);
    assert!(header(&headers, "content-type").is_some_and(|v| v.starts_with("application/json")));
    assert_eq!(history.lines().count(), 1, "one-line document");
    experiments::format::check_json_stream(&history).expect("history is valid JSON");
    assert!(
        history.contains("\"kind\":\"metrics_history\""),
        "{history}"
    );
    // Counter, gauge, and histogram series all ride along, each with a
    // windowed summary.
    assert!(
        history.contains("\"name\":\"cnt_serve_requests_total\""),
        "{history}"
    );
    assert!(
        history.contains("\"name\":\"cnt_serve_cached_bodies\""),
        "{history}"
    );
    assert!(
        history.contains("\"name\":\"cnt_serve_request_seconds\""),
        "{history}"
    );
    assert!(history.contains("\"window\":{"), "{history}");
    assert!(history.contains("\"rate_per_s\":"), "{history}");

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn slo_transitions_from_ok_to_page_under_latency_burn() {
    use cnt_obs::{SloKind, SloSpec};
    // A tight latency objective against a deliberately slow runner: the
    // p90 of cnt_serve_request_seconds blows the 1 ms threshold once the
    // slow runs land in the scraped window.
    let server = Server::bind_with_runner(
        Config {
            history_interval: Duration::from_millis(50),
            slos: vec![SloSpec::new(
                "latency-p90",
                SloKind::LatencyQuantile {
                    metric: "cnt_serve_request_seconds".to_string(),
                    q: 0.9,
                    threshold_s: 0.001,
                },
                30.0,
                60.0,
            )],
            ..config()
        },
        |exp, ctx| {
            std::thread::sleep(Duration::from_millis(250));
            exp.run(ctx)
        },
    )
    .unwrap();
    let (addr, handle, thread) = start(server);

    // Before any traffic there is nothing to burn: the objective is ok.
    let (status, slo) = get(addr, "/v1/slo");
    assert_eq!(status, 200);
    experiments::format::check_json_stream(&slo).expect("slo is valid JSON");
    assert!(slo.contains("\"state\":\"ok\""), "{slo}");
    assert!(slo.contains("\"name\":\"latency-p90\""), "{slo}");

    // Inject the burn: three distinct (uncacheable) slow runs, then let
    // the scraper sample the histogram.
    for seed in [301, 302, 303] {
        let body = format!("{{\"params\": {{\"seed\": {seed}}}}}");
        let (status, _) = post(addr, "/v1/experiments/table1/run", &body);
        assert_eq!(status, 200);
    }
    std::thread::sleep(Duration::from_millis(300));

    let (status, slo) = get(addr, "/v1/slo");
    assert_eq!(status, 200);
    assert!(slo.contains("\"state\":\"page\""), "{slo}");

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn profile_endpoints_fold_request_spans_into_a_cumulative_view() {
    let (addr, handle, thread) = start(Server::bind(config()).unwrap());

    for _ in 0..2 {
        let (status, _) = post(addr, "/v1/experiments/table1/run", "{}");
        assert_eq!(status, 200);
    }

    let (status, profile) = get(addr, "/v1/profile");
    assert_eq!(status, 200);
    experiments::format::check_json_stream(&profile).expect("profile is valid JSON");
    assert!(profile.contains("\"kind\":\"profile\""), "{profile}");
    assert!(profile.contains("\"captures\":2"), "{profile}");
    assert!(profile.contains("serve.request"), "{profile}");

    let (status, headers, folded) = http(addr, "GET", "/v1/profile/folded", "");
    assert_eq!(status, 200);
    assert!(header(&headers, "content-type").is_some_and(|v| v.starts_with("text/plain")));
    assert!(
        folded.lines().any(|l| {
            l.starts_with("serve.request")
                && l.rsplit(' ')
                    .next()
                    .is_some_and(|n| n.parse::<u64>().is_ok())
        }),
        "folded stacks malformed: {folded}"
    );

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn healthz_and_metrics_read_the_same_registry() {
    let (addr, handle, thread) = start(Server::bind(config()).unwrap());

    let (_, _) = post(addr, "/v1/experiments/table1/run", "{}");
    let (_, _) = post(addr, "/v1/experiments/table1/run", "{}"); // LRU hit

    let (_, health) = get(addr, "/v1/healthz");
    let (_, text) = get(addr, "/v1/metrics");
    // One source of truth: the healthz counters and the Prometheus
    // samples are reads of the same atomics.
    assert_eq!(counter(&health, "runs"), 1);
    assert_eq!(counter(&health, "cache_hits"), 1);
    assert!(text.contains("cnt_serve_runs_total 1\n"), "{text}");
    assert!(text.contains("cnt_serve_cache_hits_total 1\n"), "{text}");

    handle.shutdown();
    thread.join().unwrap();
}
