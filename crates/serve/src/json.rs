//! A small JSON *value* parser for request bodies.
//!
//! The workspace has no serde; like `cnt-sweep::json` (the cache decoder)
//! and `experiments::format` (the stream checker) this module covers
//! exactly the subset its caller needs — here, fully generic values, with
//! one twist: **numbers keep their raw source token**. The typed
//! parameter machinery ([`cnt_interconnect::experiments::ParamSpec`])
//! parses overrides from strings against each knob's declared type, so
//! handing it the client's original spelling yields the same accepted
//! values and the same rejection messages as `repro --set key=value`.

/// A parsed JSON value; numbers stay raw.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its source token (`"6"`, `"2.5e3"`, …).
    Number(String),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; member order preserved.
    Object(Vec<(String, JsonValue)>),
}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.message("trailing input after the JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn message(&self, what: &str) -> String {
        format!("invalid JSON at byte {}: {what}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn literal(&mut self, text: &[u8]) -> bool {
        if self.bytes[self.pos..].starts_with(text) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') if self.literal(b"true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.literal(b"false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.literal(b"null") => Ok(JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.message("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.message("expected ':'"));
            }
            self.pos += 1;
            members.push((name, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.message("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.message("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(self.message("expected '\"'"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| self.message(&format!("invalid UTF-8: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.message("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let scalar = match code {
                                // High surrogate: RFC 8259 encodes non-BMP
                                // characters as a \u pair; combine it with
                                // the mandatory low surrogate.
                                0xd800..=0xdbff => {
                                    if !self.literal(b"\\u") {
                                        return Err(self.message("unpaired high surrogate"));
                                    }
                                    let low = self.hex4()?;
                                    if !(0xdc00..=0xdfff).contains(&low) {
                                        return Err(self.message("unpaired high surrogate"));
                                    }
                                    0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                                }
                                0xdc00..=0xdfff => {
                                    return Err(self.message("unpaired low surrogate"))
                                }
                                code => code,
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| self.message("non-scalar \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(
                                self.message(&format!("unknown escape '\\{}'", other as char))
                            )
                        }
                    }
                }
                _ => return Err(self.message("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.message("truncated \\u escape"));
        }
        let hex = core::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.message("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.message("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let leading_zero = self.peek() == Some(b'0');
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.message("expected digits"));
        }
        if leading_zero && digits > 1 {
            return Err(self.message("leading zero"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.message("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.message("expected exponent digits"));
            }
        }
        let raw = core::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number token");
        Ok(JsonValue::Number(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values_and_keeps_raw_numbers() {
        let v = parse(r#"{"params": {"nc": 6, "length_um": 2.5e2}, "format": "json", "flag": true, "none": null, "list": [1, "two"]}"#).unwrap();
        let JsonValue::Object(members) = v else {
            panic!("not an object")
        };
        let params = &members[0];
        assert_eq!(params.0, "params");
        let JsonValue::Object(knobs) = &params.1 else {
            panic!("params not an object")
        };
        assert_eq!(knobs[0], ("nc".to_string(), JsonValue::Number("6".into())));
        assert_eq!(
            knobs[1],
            ("length_um".to_string(), JsonValue::Number("2.5e2".into()))
        );
        assert_eq!(members[1].1, JsonValue::String("json".into()));
        assert_eq!(members[2].1, JsonValue::Bool(true));
        assert_eq!(members[3].1, JsonValue::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "\"open",
            "{\"a\":1} junk",
            "01",
            "1.",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn escapes_unescape() {
        let v = parse(r#""tab\t quote\" slash\/ uA""#).unwrap();
        assert_eq!(v, JsonValue::String("tab\t quote\" slash/ uA".to_string()));
    }

    #[test]
    fn surrogate_pairs_combine_and_lone_surrogates_are_rejected() {
        // U+1F600 as Python's json.dumps (ensure_ascii=True) emits it.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, JsonValue::String("\u{1f600}".to_string()));
        // BMP escapes still work.
        assert_eq!(
            parse(r#""\u00b5m""#).unwrap(),
            JsonValue::String("µm".to_string())
        );
        for bad in [
            r#""\ud83d""#,   // high surrogate at end of string
            r#""\ud83d x""#, // high surrogate followed by plain text
            r#""\ud83dA""#,  // high surrogate followed by non-surrogate
            r#""\ude00""#,   // lone low surrogate
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }
}
