//! A minimal HTTP/1.1 request parser and response writer over blocking
//! streams.
//!
//! Exactly what the `/v1` routes need, nothing more: `Content-Length`
//! bodies only (no chunked transfer) and hard caps on head and body size
//! so a misbehaving client cannot balloon a worker. Connections are
//! persistent by HTTP/1.1 default — the server loop serves requests
//! back-to-back (pipelined bytes included, since they sit in the same
//! buffered reader) until the client sends `Connection: close`, an
//! HTTP/1.0 client omits `Connection: keep-alive`, or the idle timeout
//! expires. Anything outside that subset is answered with a
//! `400`/`405`/`413` by the server loop rather than a hang.

use std::io::{BufRead, Read, Write};
use std::path::PathBuf;

/// Largest accepted request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// A parsed request: method, path, lower-cased headers, raw body.
#[derive(Debug)]
pub struct Request {
    /// The request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target's path component (any `?query` is split off).
    pub path: String,
    /// Whether the request line carried `HTTP/1.1` (vs `HTTP/1.0`).
    pub http11: bool,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The raw body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open: HTTP/1.1
    /// defaults to persistent unless `Connection: close`; HTTP/1.0 is
    /// persistent only with an explicit `Connection: keep-alive`. The
    /// `Connection` header is treated as a comma-separated token list,
    /// case-insensitively, and a `close` token wins for either version
    /// (RFC 7230 §6.1).
    pub fn wants_keep_alive(&self) -> bool {
        let has_token = |token: &str| {
            self.header("connection").is_some_and(|v| {
                v.split(',')
                    .any(|part| part.trim().eq_ignore_ascii_case(token))
            })
        };
        if has_token("close") {
            false
        } else {
            self.http11 || has_token("keep-alive")
        }
    }
}

/// Why a request could not be parsed (each maps to one response).
#[derive(Debug)]
pub enum RequestError {
    /// Syntactically broken request → `400`.
    Malformed(String),
    /// Head or body over the cap → `413`.
    TooLarge(String),
    /// The connection died mid-request → drop it, nothing to answer.
    Io(std::io::Error),
}

/// Reads one request from a buffered stream.
///
/// # Errors
///
/// See [`RequestError`].
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, RequestError> {
    let mut head_bytes = 0usize;
    let mut line = String::new();
    read_crlf_line(reader, &mut line, &mut head_bytes)?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "bad request line '{line}'"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(RequestError::Malformed(format!(
            "unsupported protocol '{version}'"
        )));
    }
    let http11 = version == "HTTP/1.1";
    let method = method.to_string();
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    loop {
        read_crlf_line(reader, &mut line, &mut head_bytes)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("bad header line '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| RequestError::Malformed(format!("bad content-length '{v}'")))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES} byte cap"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(RequestError::Io)?;
    Ok(Request {
        method,
        path,
        http11,
        headers,
        body,
    })
}

/// Reads one `\r\n`-terminated line (tolerating bare `\n`) into `line`,
/// charging its length against the head cap.
fn read_crlf_line(
    reader: &mut impl BufRead,
    line: &mut String,
    head_bytes: &mut usize,
) -> Result<(), RequestError> {
    line.clear();
    let n = reader.read_line(line).map_err(RequestError::Io)?;
    if n == 0 {
        return Err(RequestError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-request",
        )));
    }
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(RequestError::TooLarge(format!(
            "request head exceeds the {MAX_HEAD_BYTES} byte cap"
        )));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(())
}

/// An outgoing response: status, content type, optional `Retry-After`,
/// optional `Location`, optional `X-Request-Id`, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// `Retry-After` seconds (the `503` backpressure hint).
    pub retry_after: Option<u32>,
    /// `Location` header value (the `307` fleet-redirect target).
    pub location: Option<String>,
    /// `X-Request-Id` header value; the server loop stamps one onto
    /// every response it sends (the same id its access log records).
    pub request_id: Option<String>,
    /// `X-Trace-Id` header value; the server loop stamps the request's
    /// distributed-trace id so clients can fetch `/v1/trace/{id}`.
    pub trace_id: Option<String>,
    /// The response body.
    pub body: String,
    /// When set, the body is streamed from this file instead of `body`:
    /// `(path, exact byte length)`. The length (recorded when the spill
    /// file was written) becomes the `Content-Length`, and the writer
    /// copies the file in fixed-size chunks — a multi-MB job result
    /// never materializes in server memory.
    pub file: Option<(PathBuf, u64)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            retry_after: None,
            location: None,
            request_id: None,
            trace_id: None,
            body,
            file: None,
        }
    }

    /// A `200` whose body streams from a spill file of `bytes` bytes.
    pub fn file(content_type: &'static str, path: PathBuf, bytes: u64) -> Self {
        Self {
            content_type,
            file: Some((path, bytes)),
            ..Self::json(200, String::new())
        }
    }

    /// The advertised body length — the spill-file size for file-backed
    /// responses, the in-memory body's length otherwise. This is what the
    /// access log reports as bytes sent.
    pub fn content_length(&self) -> u64 {
        match &self.file {
            Some((_, bytes)) => *bytes,
            None => self.body.len() as u64,
        }
    }

    /// Serializes head and body onto `out` with `Connection: close` (the
    /// single-shot paths: backpressure `503`s, parse-error responses).
    ///
    /// # Errors
    ///
    /// Propagates the stream's I/O error.
    pub fn write_to(&self, out: &mut impl Write) -> std::io::Result<()> {
        self.write_to_with(out, false)
    }

    /// Serializes head and body onto `out`, advertising the connection's
    /// fate: `Connection: keep-alive` when the server will serve another
    /// request on this stream, `Connection: close` otherwise.
    ///
    /// # Errors
    ///
    /// Propagates the stream's I/O error.
    pub fn write_to_with(&self, out: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        // A file-backed body is opened *before* the head is written: if
        // the spill file vanished (cache GC, manual cleanup) the client
        // gets a well-formed 500 instead of a truncated stream.
        let spill = match &self.file {
            Some((path, bytes)) => match std::fs::File::open(path) {
                Ok(file) => Some((file, *bytes)),
                Err(_) => {
                    let gone = Response {
                        request_id: self.request_id.clone(),
                        trace_id: self.trace_id.clone(),
                        ..Response::json(
                            500,
                            "{\"error\":\"job result spill file is gone\"}\n".to_string(),
                        )
                    };
                    return gone.write_to_with(out, keep_alive);
                }
            },
            None => None,
        };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.content_length(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        if let Some(seconds) = self.retry_after {
            head.push_str(&format!("Retry-After: {seconds}\r\n"));
        }
        if let Some(target) = &self.location {
            head.push_str(&format!("Location: {target}\r\n"));
        }
        if let Some(id) = &self.request_id {
            head.push_str(&format!("X-Request-Id: {id}\r\n"));
        }
        if let Some(id) = &self.trace_id {
            head.push_str(&format!("X-Trace-Id: {id}\r\n"));
        }
        head.push_str("\r\n");
        out.write_all(head.as_bytes())?;
        match spill {
            Some((file, bytes)) => {
                // Exactly `bytes` go onto the wire even if the file grew
                // or shrank since the length was recorded — the head
                // already promised that Content-Length. A short file is
                // zero-padded (visible corruption beats a silent hang on
                // the client's blocking read).
                let mut remaining = bytes;
                let mut reader = std::io::BufReader::new(file);
                let mut chunk = [0u8; 64 * 1024];
                while remaining > 0 {
                    let want = chunk.len().min(remaining as usize);
                    let got = reader.read(&mut chunk[..want])?;
                    if got == 0 {
                        out.write_all(&vec![0u8; remaining as usize])?;
                        break;
                    }
                    out.write_all(&chunk[..got])?;
                    remaining -= got as u64;
                }
            }
            None => out.write_all(self.body.as_bytes())?,
        }
        out.flush()
    }
}

/// The reason phrase for every status this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        307 => "Temporary Redirect",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /v1/experiments/fig12/run?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/experiments/fig12/run");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse("GET /v1/healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /x SPDY/9\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(RequestError::Malformed(_))),
                "accepted: {raw:?}"
            );
        }
    }

    #[test]
    fn rejects_oversized_bodies_and_truncated_requests() {
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30);
        assert!(matches!(parse(&huge), Err(RequestError::TooLarge(_))));
        let truncated = "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(matches!(parse(truncated), Err(RequestError::Io(_))));
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let keep = |raw: &str| parse(raw).unwrap().wants_keep_alive();
        // HTTP/1.1: persistent by default, closed on request.
        assert!(keep("GET /v1/healthz HTTP/1.1\r\n\r\n"));
        assert!(!keep(
            "GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
        ));
        assert!(!keep(
            "GET /v1/healthz HTTP/1.1\r\nConnection: CLOSE\r\n\r\n"
        ));
        assert!(!keep(
            "GET /v1/healthz HTTP/1.1\r\nConnection: foo, Close\r\n\r\n"
        ));
        // HTTP/1.0: closed by default, persistent on request.
        assert!(!keep("GET /v1/healthz HTTP/1.0\r\n\r\n"));
        assert!(keep(
            "GET /v1/healthz HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"
        ));
        // close wins over keep-alive for either version (RFC 7230 §6.1).
        assert!(!keep(
            "GET /v1/healthz HTTP/1.0\r\nConnection: keep-alive, close\r\n\r\n"
        ));
        assert!(!keep(
            "GET /v1/healthz HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n"
        ));
        let req = parse("GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.http11);
        assert!(parse("GET /x HTTP/1.1\r\n\r\n").unwrap().http11);
    }

    #[test]
    fn keep_alive_response_advertises_it() {
        let mut out = Vec::new();
        Response::json(200, "{}\n".to_string())
            .write_to_with(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(!text.contains("Connection: close"), "{text}");
    }

    #[test]
    fn response_wire_format_is_exact() {
        let mut out = Vec::new();
        Response::json(200, "{}\n".to_string())
            .write_to(&mut out)
            .unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 3\r\nConnection: close\r\n\r\n{}\n"
        );
        let mut busy = Vec::new();
        Response {
            retry_after: Some(1),
            ..Response::json(503, String::new())
        }
        .write_to(&mut busy)
        .unwrap();
        let text = String::from_utf8(busy).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
    }

    #[test]
    fn redirect_carries_a_location_header() {
        let mut out = Vec::new();
        Response {
            location: Some("http://127.0.0.1:9001/v1/experiments/fig12/run".to_string()),
            ..Response::json(307, String::new())
        }
        .write_to(&mut out)
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 307 Temporary Redirect\r\n"));
        assert!(
            text.contains("Location: http://127.0.0.1:9001/v1/experiments/fig12/run\r\n"),
            "{text}"
        );
    }

    #[test]
    fn file_backed_responses_stream_the_spill_bytes() {
        let dir = std::env::temp_dir().join(format!("cnt-http-spill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("result.body");
        // Bigger than one copy chunk, so the loop takes several passes.
        let payload: String = "0123456789abcdef".repeat(10_000);
        std::fs::write(&path, &payload).unwrap();
        let response = Response::file("text/csv", path.clone(), payload.len() as u64);
        assert_eq!(response.content_length(), payload.len() as u64);
        let mut out = Vec::new();
        response.write_to_with(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{}", &text[..40]);
        assert!(text.contains(&format!("Content-Length: {}\r\n", payload.len())));
        assert!(text.contains("Content-Type: text/csv\r\n"));
        assert!(text.ends_with(&payload), "body must be the file bytes");

        // A vanished spill file degrades to a clean 500, never a
        // truncated or hung stream.
        std::fs::remove_file(&path).unwrap();
        let mut out = Vec::new();
        Response::file("text/csv", path, 13)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 500 "), "{text}");
        assert!(text.contains("spill file is gone"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn request_id_header_is_emitted_when_set() {
        let mut out = Vec::new();
        Response {
            request_id: Some("00c0ffee-000007".to_string()),
            ..Response::json(200, "{}\n".to_string())
        }
        .write_to(&mut out)
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Request-Id: 00c0ffee-000007\r\n"), "{text}");
    }

    #[test]
    fn trace_id_header_is_emitted_when_set() {
        let mut out = Vec::new();
        Response {
            trace_id: Some("00000000deadbeef".to_string()),
            ..Response::json(200, "{}\n".to_string())
        }
        .write_to(&mut out)
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Trace-Id: 00000000deadbeef\r\n"), "{text}");
        // Absent by default: the exact-wire-format test stays valid.
        assert!(Response::json(200, String::new()).trace_id.is_none());
    }
}
