//! An in-memory LRU for rendered run bodies.
//!
//! Keys are the canonical request hash (experiment id + format + the
//! resolved parameter point's
//! [`content_hash`](cnt_interconnect::experiments::Params::content_hash),
//! same FNV-1a family as the on-disk sweep cache), so a hot operating
//! point is served without re-running any kernel. Values are the complete
//! response bodies — byte-identical replay is free by construction.

use std::collections::HashMap;
use std::sync::Arc;

/// A cached run response: content type plus the exact body bytes.
#[derive(Debug, Clone)]
pub struct CachedBody {
    /// The `Content-Type` the body renders as.
    pub content_type: &'static str,
    /// The full response body.
    pub body: Arc<String>,
}

/// A fixed-capacity least-recently-used map from request hash to body.
///
/// Recency is a monotonic touch counter; eviction scans for the minimum,
/// which is exact LRU and plenty at the few-hundred-entry capacities the
/// server runs with. Capacity 0 disables caching entirely.
#[derive(Debug, Default)]
pub struct LruCache {
    capacity: usize,
    tick: u64,
    map: HashMap<u64, (CachedBody, u64)>,
}

impl LruCache {
    /// A cache holding at most `capacity` bodies.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            map: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks a body up, marking it most recently used.
    pub fn get(&mut self, key: u64) -> Option<CachedBody> {
        self.tick += 1;
        let tick = self.tick;
        let (body, touched) = self.map.get_mut(&key)?;
        *touched = tick;
        Some(body.clone())
    }

    /// Inserts (or refreshes) a body, evicting the least recently used
    /// entry when over capacity.
    pub fn put(&mut self, key: u64, value: CachedBody) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        self.map.insert(key, (value, self.tick));
        if self.map.len() > self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, touched))| *touched)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> CachedBody {
        CachedBody {
            content_type: "application/json",
            body: Arc::new(text.to_string()),
        }
    }

    #[test]
    fn get_returns_exactly_what_was_put() {
        let mut cache = LruCache::new(4);
        assert!(cache.get(1).is_none());
        cache.put(1, body("one"));
        assert_eq!(cache.get(1).unwrap().body.as_str(), "one");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.put(1, body("one"));
        cache.put(2, body("two"));
        // Touch 1 so 2 becomes the eviction victim.
        cache.get(1).unwrap();
        cache.put(3, body("three"));
        assert!(cache.get(2).is_none(), "LRU entry must be evicted");
        assert!(cache.get(1).is_some() && cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.put(1, body("one"));
        assert!(cache.get(1).is_none());
        assert!(cache.is_empty());
    }
}
