//! The JSON bodies of the `/v1` API, derived from the experiment
//! registry, plus the `POST …/run` request-body decoder.
//!
//! Every body is hand-rolled through the same escaping helper the report
//! serializer uses ([`format::json_string`]) and ends in a newline, so
//! `curl … | repro check-json` works on every route.

use crate::json::{self, JsonValue};
use cnt_interconnect::experiments::format::{self, OutputFormat};
use cnt_interconnect::experiments::{registry, Experiment, ParamValue};

/// An `{"error": …}` body carrying the canonical error message (the same
/// `Display` text the CLI prints).
pub fn error_json(message: &str) -> String {
    let mut out = String::with_capacity(message.len() + 16);
    out.push_str("{\"error\":");
    format::json_string(message, &mut out);
    out.push_str("}\n");
    out
}

/// The canonical backpressure body: every shed — worker queue or async
/// job table — answers `503` with the same message shape, so clients key
/// a single retry policy off it.
pub fn busy_json(what: &str) -> String {
    error_json(&format!("server busy: the {what} is full, retry shortly"))
}

/// The `GET /v1/experiments` body: the full catalog with parameter
/// surfaces, catalog order.
pub fn catalog_json() -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"experiments\":[");
    for (i, exp) in registry().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_experiment(exp, &mut out);
    }
    out.push_str("]}\n");
    out
}

/// The `GET /v1/experiments/{id}` body, if the id exists — the same data
/// `repro info <id>` prints, as one JSON object.
pub fn experiment_json(id: &str) -> Option<String> {
    let exp = registry().get(id).ok()?;
    let mut out = String::with_capacity(1024);
    push_experiment(exp, &mut out);
    out.push('\n');
    Some(out)
}

fn push_experiment(exp: &dyn Experiment, out: &mut String) {
    out.push_str("{\"id\":");
    format::json_string(exp.id(), out);
    out.push_str(",\"title\":");
    format::json_string(exp.title(), out);
    out.push_str(&format!(
        ",\"sweep\":{},\"extra\":{},\"params\":[",
        exp.sweep().is_some(),
        exp.is_extra()
    ));
    for (i, def) in exp.params().defs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"key\":");
        format::json_string(def.key, out);
        out.push_str(",\"kind\":");
        format::json_string(def.default.kind(), out);
        out.push_str(",\"doc\":");
        format::json_string(def.doc, out);
        out.push_str(",\"default\":");
        push_param_value(&def.default, out);
        match def.default {
            ParamValue::Text(_) => {}
            _ => out.push_str(&format!(",\"min\":{},\"max\":{}", def.min, def.max)),
        }
        out.push('}');
    }
    out.push_str("],\"presets\":[");
    for (i, preset) in exp.params().presets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        format::json_string(preset.name, out);
        out.push_str(",\"doc\":");
        format::json_string(preset.doc, out);
        out.push_str(",\"sets\":{");
        for (j, (key, value)) in preset.sets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            format::json_string(key, out);
            out.push(':');
            push_param_value(value, out);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
}

fn push_param_value(value: &ParamValue, out: &mut String) {
    match value {
        ParamValue::Int(v) => out.push_str(&v.to_string()),
        ParamValue::Float(v) if v.is_finite() => out.push_str(&v.to_string()),
        ParamValue::Float(_) => out.push_str("null"),
        ParamValue::Text(v) => format::json_string(v, out),
    }
}

/// A decoded `POST …/run` body.
#[derive(Debug, Default, PartialEq)]
pub struct RunRequest {
    /// Named preset to expand before the overrides.
    pub preset: Option<String>,
    /// `key = raw-value` overrides, body order. Raw tokens feed the same
    /// typed parser as `--set`, so rejections match the CLI's.
    pub sets: Vec<(String, String)>,
    /// Requested rendering.
    pub format: OutputFormat,
}

/// Decodes a run request. An empty body means "defaults, JSON".
///
/// # Errors
///
/// Returns a client-facing message (→ `400`) on malformed JSON, unknown
/// members, or values of unusable shape.
pub fn parse_run_request(body: &[u8]) -> Result<RunRequest, String> {
    let text = core::str::from_utf8(body).map_err(|e| format!("body is not UTF-8: {e}"))?;
    let mut request = RunRequest {
        format: OutputFormat::Json,
        ..RunRequest::default()
    };
    if text.trim().is_empty() {
        return Ok(request);
    }
    let JsonValue::Object(members) = json::parse(text)? else {
        return Err("request body must be a JSON object".to_string());
    };
    for (name, value) in members {
        match name.as_str() {
            "params" => {
                let JsonValue::Object(knobs) = value else {
                    return Err("\"params\" must be an object of key/value overrides".to_string());
                };
                for (key, v) in knobs {
                    let raw = match v {
                        JsonValue::Number(raw) => raw,
                        JsonValue::String(s) => s,
                        other => {
                            return Err(format!(
                                "parameter \"{key}\" must be a number or string, not {}",
                                kind_name(&other)
                            ))
                        }
                    };
                    request.sets.push((key, raw));
                }
            }
            "preset" => {
                let JsonValue::String(name) = value else {
                    return Err("\"preset\" must be a string".to_string());
                };
                request.preset = Some(name);
            }
            "format" => {
                let JsonValue::String(f) = value else {
                    return Err("\"format\" must be \"json\" or \"csv\"".to_string());
                };
                request.format = match f.as_str() {
                    "json" => OutputFormat::Json,
                    "csv" => OutputFormat::Csv,
                    other => return Err(format!("unknown format \"{other}\" (valid: json csv)")),
                };
            }
            other => {
                return Err(format!(
                    "unknown member \"{other}\" (valid: params preset format)"
                ))
            }
        }
    }
    Ok(request)
}

fn kind_name(value: &JsonValue) -> &'static str {
    match value {
        JsonValue::Null => "null",
        JsonValue::Bool(_) => "a boolean",
        JsonValue::Number(_) => "a number",
        JsonValue::String(_) => "a string",
        JsonValue::Array(_) => "an array",
        JsonValue::Object(_) => "an object",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnt_interconnect::experiments::{self, format::check_json_stream};

    #[test]
    fn catalog_lists_every_id_and_stays_parseable() {
        let body = catalog_json();
        check_json_stream(&body).expect("catalog body must be valid JSON");
        for id in experiments::catalog() {
            assert!(
                body.contains(&format!("{{\"id\":\"{id}\",")),
                "{id} missing"
            );
        }
        assert!(body.ends_with("\n"));
    }

    #[test]
    fn experiment_json_carries_params_and_presets() {
        let body = experiment_json("table1").expect("table1 exists");
        check_json_stream(&body).expect("experiment body must be valid JSON");
        assert!(body.contains("\"key\":\"width_nm\""));
        assert!(body.contains("\"min\":20,\"max\":1000"));
        assert!(body.contains("\"name\":\"projected\""));
        assert!(body.contains("\"width_nm\":20"));
        // Text knobs carry no numeric range.
        assert!(
            body.contains("\"key\":\"cache_dir\",\"kind\":\"string\",") && {
                let tail = body.split("\"key\":\"cache_dir\"").nth(1).unwrap();
                !tail.split('}').next().unwrap().contains("\"min\"")
            }
        );
        assert!(experiment_json("fig99").is_none());
    }

    #[test]
    fn run_requests_decode_with_raw_tokens() {
        let req = parse_run_request(
            br#"{"params": {"nc": 6, "length_um": 2e2, "cache_dir": "/tmp/x"}, "format": "csv", "preset": "doped-local"}"#,
        )
        .unwrap();
        assert_eq!(req.format, OutputFormat::Csv);
        assert_eq!(req.preset.as_deref(), Some("doped-local"));
        assert_eq!(
            req.sets,
            vec![
                ("nc".to_string(), "6".to_string()),
                ("length_um".to_string(), "2e2".to_string()),
                ("cache_dir".to_string(), "/tmp/x".to_string()),
            ]
        );
        // Empty body = defaults.
        let empty = parse_run_request(b"").unwrap();
        assert_eq!(empty.format, OutputFormat::Json);
        assert!(empty.sets.is_empty() && empty.preset.is_none());
    }

    #[test]
    fn run_request_rejections_are_specific() {
        for (body, needle) in [
            (&b"[1,2]"[..], "must be a JSON object"),
            (b"{\"params\": 3}", "must be an object"),
            (b"{\"params\": {\"nc\": true}}", "number or string"),
            (b"{\"format\": \"text\"}", "valid: json csv"),
            (b"{\"preset\": 1}", "must be a string"),
            (b"{\"bogus\": 1}", "unknown member"),
            (b"{\"params\"", "invalid JSON"),
        ] {
            let err = parse_run_request(body).unwrap_err();
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        }
    }

    #[test]
    fn error_bodies_escape_and_terminate() {
        let body = error_json("a \"quoted\" failure");
        assert_eq!(body, "{\"error\":\"a \\\"quoted\\\" failure\"}\n");
    }

    #[test]
    fn shed_bodies_share_one_canonical_shape() {
        assert_eq!(
            busy_json("request queue"),
            "{\"error\":\"server busy: the request queue is full, retry shortly\"}\n"
        );
        assert_eq!(
            busy_json("job table"),
            "{\"error\":\"server busy: the job table is full, retry shortly\"}\n"
        );
    }
}
