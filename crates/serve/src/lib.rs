//! `cnt-serve` — an embedded HTTP experiment server over the `cnt-beol`
//! registry.
//!
//! The one-shot `repro` CLI pays full process startup per invocation and
//! recomputes everything not in the sweep cache. This crate keeps the
//! registry resident behind a small JSON API instead, so hot operating
//! points are served from memory:
//!
//! | route | answer |
//! |---|---|
//! | `GET /v1/healthz` | liveness plus scheduler/cache counters (answered before queue admission) |
//! | `GET /v1/metrics` | Prometheus exposition (also probe-lane exempt from admission) |
//! | `GET /v1/experiments` | the catalog with full parameter surfaces |
//! | `GET /v1/experiments/{id}` | one experiment (what `repro info` prints) |
//! | `POST /v1/experiments/{id}/run` | run at a parameter point; body `{"params": {...}, "preset": "...", "format": "json"\|"csv"}` |
//! | `POST /v1/sweeps/{id}` | enqueue the sweep variant asynchronously; `202` + job id immediately |
//! | `GET /v1/jobs/{rid}` | poll job status (`queued\|running\|done\|failed`) with trial progress |
//! | `GET /v1/jobs/{rid}/result` | the finished body (`202` + status while still in flight) |
//! | `GET /v1/_fleet/cache/{hash}` | internal: this instance's cached body for a request hash |
//! | `GET /v1/metrics/history` | windowed time-series rings fed by the self-scraper thread |
//! | `GET /v1/slo` | burn-rate evaluation of the configured SLOs (`ok`\|`warn`\|`page`) |
//! | `GET /v1/trace/{trace_id}` | the assembled cross-instance span tree for one trace id |
//! | `GET /v1/profile` | cumulative span profile across all traced requests |
//! | `GET /v1/profile/folded` | the same profile as folded stacks (flamegraph input) |
//! | `GET /v1/_fleet/trace/{trace_id}` | internal: this instance's raw trace records |
//!
//! Every response carries `X-Request-Id` and `X-Trace-Id` headers;
//! requests bearing valid `X-Trace-Id`/`X-Parent-Span` headers join the
//! caller's trace instead of minting one, and fleet hops plus async
//! sweep jobs forward them, so one logical request is one trace id
//! across the whole fleet.
//!
//! With `--fleet "a,b,c" --self-index K` the instance joins a static
//! fleet (see [`cnt_fleet`]): run requests consistent-hash-route to the
//! owning shard (proxy or `307` redirect), and local misses try the
//! owner's cache before computing.
//!
//! Run bodies are **byte-identical** to `repro <id> --format json` (or
//! `--format csv`) at the same parameter point — both front ends sit on
//! [`cnt_interconnect::experiments::run_to_json`].
//!
//! Behind the router, a request scheduler reuses the `cnt-sweep`
//! [`WorkerPool`](cnt_sweep::WorkerPool): a bounded queue answers
//! overload with `503` + `Retry-After` instead of unbounded latency,
//! identical in-flight parameter points coalesce onto one computation,
//! and finished bodies land in an LRU cache keyed by the same FNV-1a
//! content-hash family as the on-disk sweep cache
//! ([`Params::content_hash`](cnt_interconnect::experiments::Params::content_hash)).
//! `SIGTERM`/ctrl-c (or a [`ShutdownHandle`]) stops intake and drains
//! in-flight work before the process exits.
//!
//! The server is plain `std::net` — no external dependencies, matching
//! the offline-build constraint the `crates/compat` shims document.
//!
//! # Example
//!
//! ```no_run
//! use cnt_serve::{Config, Server};
//!
//! let server = Server::bind(Config::default())?;
//! eprintln!("serving on http://{}", server.local_addr());
//! server.serve()?; // blocks until shutdown
//! # Ok::<(), cnt_serve::Error>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod http;
pub mod json;
pub mod net;
pub mod server;
pub mod signal;

pub use cache::LruCache;
pub use cnt_fleet as fleet;
pub use cnt_fleet::{FleetConfig, RouteMode};
pub use http::{Request, Response};
pub use server::{AccessLogFormat, Config, Server, ShutdownHandle};

use core::fmt;

/// Errors produced by the serve layer (socket-level trouble; protocol
/// errors are answered in-band as HTTP statuses).
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A socket operation failed.
    Io {
        /// What the server was doing.
        context: &'static str,
        /// The OS error message.
        message: String,
    },
    /// The server configuration is unusable (bad fleet topology).
    Config {
        /// What was wrong.
        message: String,
    },
}

impl Error {
    pub(crate) fn io(context: &'static str, e: std::io::Error) -> Self {
        Error::Io {
            context,
            message: e.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { context, message } => write!(f, "{context}: {message}"),
            Error::Config { message } => write!(f, "bad configuration: {message}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-level result alias.
pub type Result<T> = core::result::Result<T, Error>;
