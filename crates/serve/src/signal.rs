//! Process-signal plumbing for graceful shutdown.
//!
//! The `repro serve` front end installs handlers for `SIGINT` (ctrl-c)
//! and `SIGTERM`; the handlers only flip a process-wide atomic, which the
//! accept loop polls between `accept` attempts (see
//! [`Config::watch_signals`](crate::Config::watch_signals)). No runtime
//! dependency is available offline, so the two libc calls are declared
//! directly — this module is the crate's single `unsafe` exemption, and
//! the handler body is async-signal-safe (one atomic store).
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has arrived since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::TRIGGERED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the `SIGINT`/`SIGTERM` handlers (no-op off Unix). Idempotent.
pub fn install() {
    imp::install();
}
