//! Listener construction with `SO_REUSEADDR`.
//!
//! A SIGKILL'd server leaves its accepted connections in server-side
//! `TIME_WAIT`, and a plain `TcpListener::bind` on the same port then
//! fails with `EADDRINUSE` for up to a minute — exactly the window the
//! fleet prober is trying to heal through. Setting `SO_REUSEADDR`
//! before `bind` (what every production server does) lets the restarted
//! instance take its old port back immediately.
//!
//! `std` exposes no socket-option API, and the offline build has no
//! `libc`/`socket2`, so the four calls are declared directly, following
//! the [`crate::signal`] pattern — this is the crate's second and only
//! other `unsafe` exemption, confined to socket setup before any data
//! flows. Non-IPv4 addresses (and non-Linux targets) fall back to the
//! std bind without the option.
#![allow(unsafe_code)]

use std::net::TcpListener;

#[cfg(target_os = "linux")]
mod imp {
    use std::net::{SocketAddrV4, TcpListener};
    use std::os::fd::FromRawFd;

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const BACKLOG: i32 = 128;

    /// `struct sockaddr_in` (Linux layout; ports and addresses are
    /// big-endian on the wire).
    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub fn bind_reuseaddr(addr: SocketAddrV4) -> std::io::Result<TcpListener> {
        unsafe {
            let fd = socket(AF_INET, SOCK_STREAM, 0);
            if fd < 0 {
                return Err(std::io::Error::last_os_error());
            }
            let fail = |fd: i32| {
                let e = std::io::Error::last_os_error();
                close(fd);
                Err(e)
            };
            let one: i32 = 1;
            let one_len = core::mem::size_of::<i32>() as u32;
            if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, one_len) != 0 {
                return fail(fd);
            }
            let sockaddr = SockaddrIn {
                sin_family: AF_INET as u16,
                sin_port: addr.port().to_be(),
                sin_addr: u32::from(*addr.ip()).to_be(),
                sin_zero: [0; 8],
            };
            let len = core::mem::size_of::<SockaddrIn>() as u32;
            if bind(fd, &sockaddr, len) != 0 {
                return fail(fd);
            }
            if listen(fd, BACKLOG) != 0 {
                return fail(fd);
            }
            // The fd is a bound, listening TCP socket — exactly the
            // state `TcpListener` expects to own.
            Ok(TcpListener::from_raw_fd(fd))
        }
    }
}

/// Binds a listener like [`TcpListener::bind`], additionally setting
/// `SO_REUSEADDR` so a restarted server can rebind its port while the
/// previous incarnation's connections sit in `TIME_WAIT`.
///
/// # Errors
///
/// Any socket/bind/listen failure, as [`std::io::Error`] — the same
/// errors (`EADDRINUSE`, `EACCES`, …) the std bind surfaces.
pub fn bind_listener(addr: &str) -> std::io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    if let Ok(v4) = addr.parse::<std::net::SocketAddrV4>() {
        return imp::bind_reuseaddr(v4);
    }
    TcpListener::bind(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn bound_listener_accepts_and_exchanges_bytes() {
        let listener = bind_listener("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            stream.write_all(b"ping").unwrap();
            let mut buf = [0u8; 4];
            stream.read_exact(&mut buf).unwrap();
            buf
        });
        let (mut conn, _) = listener.accept().unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        conn.write_all(b"pong").unwrap();
        assert_eq!(&client.join().unwrap(), b"pong");
    }

    #[test]
    fn same_port_rebinds_after_an_accepted_connection() {
        // The TIME_WAIT scenario in miniature: accept a connection, shut
        // everything down server-side, and rebind the identical port.
        // Without SO_REUSEADDR this intermittently fails with
        // EADDRINUSE; with it the rebind must always succeed.
        let listener = bind_listener("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            let mut buf = [0u8; 1];
            let _ = stream.read(&mut buf); // wait for server-side close
        });
        let (conn, _) = listener.accept().unwrap();
        drop(conn); // server closes first: the socket enters TIME_WAIT
        drop(listener);
        client.join().unwrap();
        let rebound = bind_listener(&addr.to_string())
            .expect("rebinding the same port must not hit EADDRINUSE");
        assert_eq!(rebound.local_addr().unwrap(), addr);
    }

    #[test]
    fn unparsable_addresses_error_like_std_bind() {
        assert!(bind_listener("not-an-address").is_err());
        assert!(bind_listener("256.0.0.1:80").is_err());
    }
}
